//! Plug-in schedulers head-to-head — the paper's own improvement hint made
//! concrete: "The equal distribution of the requests does not take into
//! account the machines processing power ... A better makespan could be
//! attained by writing a plug-in scheduler."
//!
//! Runs the same 1+100 campaign under four policies, including a custom
//! plug-in defined right here in the example, and compares makespans.
//!
//! Run with: `cargo run --release --example plugin_scheduler`

use cosmogrid::campaign::{fmt_hms, run_campaign, CampaignConfig};
use diet_core::monitor::Estimate;
use diet_core::sched::{MinQueue, RandomSched, RoundRobin, Scheduler, WeightedSpeed};
use std::sync::Arc;

/// A user-written plug-in: weighted round-robin that hands faster machines
/// proportionally more requests, without needing any execution history.
struct SpeedProportional {
    counter: parking_lot::Mutex<f64>,
}

impl SpeedProportional {
    fn new() -> Self {
        SpeedProportional {
            counter: parking_lot::Mutex::new(0.0),
        }
    }
}

impl Scheduler for SpeedProportional {
    fn select(&self, candidates: &[Estimate]) -> usize {
        // Walk a virtual wheel whose sectors are proportional to speed.
        let total: f64 = candidates.iter().map(|c| c.speed_factor).sum();
        let mut c = self.counter.lock();
        *c += total / candidates.len() as f64;
        let mut point = *c % total;
        for (i, e) in candidates.iter().enumerate() {
            point -= e.speed_factor;
            if point <= 0.0 {
                return i;
            }
        }
        candidates.len() - 1
    }

    fn name(&self) -> &'static str {
        "speed_proportional(custom)"
    }
}

fn main() {
    let policies: Vec<Arc<dyn Scheduler>> = vec![
        Arc::new(RoundRobin::new()),
        Arc::new(RandomSched::new(2007)),
        Arc::new(MinQueue),
        Arc::new(WeightedSpeed),
        Arc::new(SpeedProportional::new()),
    ];

    println!("same campaign (1 + 100 simulations, 11 heterogeneous SeDs), five schedulers:\n");
    println!(
        "  {:<28} {:>11} {:>9} {:>10}",
        "scheduler", "makespan", "speedup", "vs paper"
    );
    let paper = 58723.0; // 16h18m43s
    let mut rows = Vec::new();
    for sched in policies {
        let r = run_campaign(CampaignConfig {
            scheduler: sched,
            ..CampaignConfig::default()
        });
        println!(
            "  {:<28} {:>11} {:>8.1}x {:>9.2}x",
            r.scheduler,
            fmt_hms(r.makespan),
            r.speedup(),
            r.makespan / paper
        );
        rows.push((r.scheduler, r.makespan));
    }

    let rr = rows
        .iter()
        .find(|(n, _)| *n == "round_robin")
        .map(|(_, m)| *m)
        .unwrap();
    let best = rows
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!(
        "\nbest: {} — {:.1}% shorter makespan than the default round-robin,\n\
         confirming the paper's conjecture that a plug-in scheduler improves\n\
         on equal distribution over heterogeneous Opterons.",
        best.0,
        (1.0 - best.1 / rr) * 100.0
    );
}
