//! The zoom workflow as an engine-scheduled DAG — the MA-DAG counterpart
//! of `zoom_pipeline.rs`. Instead of the client driving the two-part
//! protocol (pulling the part-1 tarball, extracting the halo catalog,
//! pushing one `ramsesZoom2` per halo), the client submits a one-node
//! workflow whose `zoom_fanout` expander grows the part-2 stages *inside*
//! the middleware when part 1 completes. Intermediate snapshots never
//! cross the client link: the outcome carries status codes and grid refs.
//!
//! Every process ships private telemetry to a collector, so the run ends
//! by printing the stitched workflow trace — one trace id covering the
//! engine's per-node windows across both sites.
//!
//! Run with: `cargo run --release --example dag_zoom`

use cosmogrid::namelist::default_run_namelist;
use cosmogrid::services::cosmology_service_table;
use cosmogrid::workflow::{zoom_fanout_expander, ZoomWorkflow};
use diet_core::deploy::{SedSpec, TcpSiteSpec, TcpTopologySpec, TelemetrySpec};
use diet_core::sched::RoundRobin;
use diet_core::transport::ServerConfig;
use diet_core::{serve_collector_over_tcp, Collector, DietClient};
use obs::Obs;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // A collector process: the LogCentral role, one sink for every
    // component's spans and metrics.
    let collector = Arc::new(Collector::new());
    let col_server =
        serve_collector_over_tcp(collector.clone(), "127.0.0.1:0", ServerConfig::default())
            .expect("bind collector");

    // Two sites, two SeDs each — the miniature Grid'5000 shape.
    let site = |name: &str| TcpSiteSpec {
        name: name.into(),
        seds: (0..2)
            .map(|i| SedSpec {
                label: format!("{name}/{i}"),
                speed_factor: 1.0,
            })
            .collect(),
        children: vec![],
    };
    let spec = TcpTopologySpec {
        ma_name: "ma".into(),
        ma_seds: vec![],
        sites: vec![site("nancy"), site("sophia")],
        admission_limit: None,
        child_timeout_ms: 30_000,
    };
    let d = spec
        .deploy_with_telemetry(
            Arc::new(RoundRobin::new()),
            |_| cosmology_service_table(),
            &TelemetrySpec {
                collector: col_server.local_addr,
                interval: Duration::from_millis(200),
            },
        )
        .expect("deploy 2-site topology");
    // The MA-side engine needs the fan-out hook the workflow names.
    d.dag
        .register_expander("zoom_fanout", zoom_fanout_expander());

    // One zoom pipeline, submitted as a dag and awaited over the wire.
    let mut namelist = default_run_namelist(8, 50.0);
    namelist.set("INIT_PARAMS", "aexp_ini", 0.1);
    namelist.set("OUTPUT_PARAMS", "aout", "0.5, 1.0");
    let workflow = ZoomWorkflow::new(namelist, 8, 50);

    let client = DietClient::initialize_distributed(Arc::new(Obs::new()));
    println!("submitting zoom workflow as a dag ...");
    let report = workflow
        .run_dag(&client, &d.ma_client, Duration::from_secs(300))
        .expect("dag workflow failed");

    println!(
        "dag {} finished in {} ms (ok: {}), part-1 status {}",
        report.dag_id, report.makespan_ms, report.ok, report.part1_status
    );
    for z in &report.zooms {
        println!(
            "  zoom node {:>2} on {:<9} status {} in {:>5} ms (attempts {}, speculated {}) -> {}",
            z.node,
            z.server,
            z.status,
            z.duration_ms,
            z.attempts,
            z.speculated,
            z.tar_id.as_deref().unwrap_or("<no ref>")
        );
    }
    assert!(report.all_succeeded(), "zoom dag did not fully succeed");

    // Ship the telemetry tail, then print the stitched workflow trace:
    // every engine-side node window shares the dag's one trace id.
    assert_eq!(d.flush_telemetry(), 0, "telemetry flushes failed");
    let trace = collector.trace(report.trace_id);
    println!("\nstitched workflow trace {:#018x}:", report.trace_id);
    for s in &trace {
        println!(
            "  {:>10.1} ms  {:<14} {:<12} ({:.1} ms)",
            s.start_ns as f64 / 1e6,
            s.name,
            s.resource,
            (s.end_ns - s.start_ns) as f64 / 1e6
        );
    }
    assert!(
        trace.iter().filter(|s| s.name == "DagNode").count() > report.zooms.len(),
        "expected one DagNode window per workflow node in the stitched trace"
    );

    d.shutdown();
    col_server.stop();
    println!("\nOK: zoom dag ran grid-side; client saw refs and one stitched trace");
}
