//! Quickstart: stand up a tiny DIET hierarchy, register the cosmology
//! services, and run one `ramsesZoom1` call end-to-end — the minimal version
//! of the paper's client/server pair.
//!
//! Run with: `cargo run --release --example quickstart`

use cosmogrid::archive;
use cosmogrid::namelist::default_run_namelist;
use cosmogrid::services::{cosmology_service_table, zoom1_profile};
use diet_core::agent::{AgentNode, MasterAgent};
use diet_core::client::DietClient;
use diet_core::sched::RoundRobin;
use diet_core::sed::{SedConfig, SedHandle};
use std::sync::Arc;

fn main() {
    // --- server side: two SeDs, each registering ramsesZoom1/ramsesZoom2 ---
    let sed_a = SedHandle::spawn(
        SedConfig::new("cluster-a/0", 1.0),
        cosmology_service_table(),
    );
    let sed_b = SedHandle::spawn(
        SedConfig::new("cluster-b/0", 1.1),
        cosmology_service_table(),
    );

    // --- agent hierarchy: one LA per "cluster", one MA on top -------------
    let la_a = AgentNode::leaf("LA-a", vec![sed_a.clone()]);
    let la_b = AgentNode::leaf("LA-b", vec![sed_b.clone()]);
    let ma = MasterAgent::new("MA", vec![la_a, la_b], Arc::new(RoundRobin::new()));
    println!(
        "hierarchy up: {} SeDs, {} declare ramsesZoom1",
        ma.sed_count(),
        ma.solver_count("ramsesZoom1")
    );

    // --- client side: diet_initialize, build the profile, diet_call -------
    let client = DietClient::initialize(ma);
    let mut namelist = default_run_namelist(8, 50.0);
    namelist.set("OUTPUT_PARAMS", "aout", "0.5, 1.0");

    println!("submitting ramsesZoom1 (8^3 particles, 50 Mpc/h box)...");
    let (result, stats) = client
        .call(zoom1_profile(&namelist, 8))
        .expect("ramsesZoom1 call failed");

    // --- read the OUT arguments: error code, then the tarball -------------
    let code = result.get_i32(3).expect("error-code argument");
    println!(
        "solve done on some SeD: status={code}, finding={:.1} ms, solve={:.2} s",
        stats.finding * 1e3,
        stats.solve
    );
    assert_eq!(code, 0, "service reported failure");

    let (name, tar) = result.get_file(2).expect("result tarball");
    let entries = archive::unpack(&tar.clone()).expect("valid tar");
    println!(
        "received {name}: {} bytes, {} entries",
        tar.len(),
        entries.len()
    );
    let catalog = archive::find(&entries, "halos/catalog.txt").expect("halo catalog");
    let text = String::from_utf8_lossy(&catalog.data);
    let n_halos = text.lines().count().saturating_sub(1);
    println!("halo catalog ({n_halos} halos):");
    for line in text.lines().take(6) {
        println!("  {line}");
    }

    sed_a.shutdown();
    sed_b.shutdown();
    println!("done.");
}
