//! Fault tolerance on the live path, end to end: three SeDs served over
//! real TCP sockets, one killed mid-burst. The client's retry engine
//! resubmits through the Master Agent, the heartbeat monitor evicts the
//! dead server, and every request completes.
//!
//!     cargo run --release --example fault_tolerance

use cosmogrid::namelist::default_run_namelist;
use cosmogrid::services::{cosmology_service_table, serve_sed_over_tcp, status, zoom1_profile};
use diet_core::client::{DietClient, RetryPolicy};
use diet_core::sched::RoundRobin;
use diet_core::sed::{SedConfig, SedHandle};
use diet_core::transport::TcpSedPool;
use diet_core::{AgentNode, HeartbeatMonitor, MasterAgent};
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    println!("fault tolerance on the live GridRPC path\n");

    // Three SeDs, each behind its own TCP server (the CORBA role).
    let seds: Vec<Arc<SedHandle>> = ["sed-a", "sed-b", "sed-c"]
        .iter()
        .map(|l| SedHandle::spawn(SedConfig::new(l, 1.0), cosmology_service_table()))
        .collect();
    let servers: Vec<_> = seds
        .iter()
        .map(|s| serve_sed_over_tcp(s.clone()).expect("bind"))
        .collect();
    let pool = TcpSedPool::new();
    for (sed, srv) in seds.iter().zip(&servers) {
        pool.register(&sed.config.label, srv.local_addr);
        println!("  {} serving on {}", sed.config.label, srv.local_addr);
    }

    let ma = MasterAgent::new(
        "MA",
        vec![AgentNode::leaf("LA", seds.clone())],
        Arc::new(RoundRobin::new()),
    );
    let _monitor = HeartbeatMonitor::spawn(
        ma.clone(),
        Duration::from_millis(50),
        Duration::from_millis(250),
        2,
    );
    let client = DietClient::initialize(ma.clone());
    // Real solves run for seconds, so the per-attempt deadline must be
    // solve-scale — the 2 s default suits the instant laptop-scale probes,
    // not a full pipeline run.
    let policy = RetryPolicy {
        attempt_timeout: Duration::from_secs(120),
        ..RetryPolicy::default()
    };

    // sed-b's worker will crash while holding its 2nd request.
    seds[1].faults().kill_at_request(2);
    println!("\n  armed: sed-b crashes on its 2nd request\n");

    let mut nl = default_run_namelist(8, 50.0);
    nl.set("OUTPUT_PARAMS", "aout", "0.5, 1.0");
    let burst = 9;
    let t0 = Instant::now();
    for i in 0..burst {
        let (out, stats) = client
            .call_over_tcp(&pool, zoom1_profile(&nl, 8), &policy)
            .expect("request must survive the crash");
        let history = client.history();
        let (server, _) = history.last().expect("recorded");
        println!(
            "  call {i}: ok on {server} (status {}, retries {})",
            out.get_i32(3).unwrap(),
            stats.retries,
        );
        assert_eq!(out.get_i32(3).unwrap(), status::OK);
    }
    println!(
        "\n  {burst}/{burst} completed in {:.2}s, zero lost; deregistered: {:?}",
        t0.elapsed().as_secs_f64(),
        ma.deregistered(),
    );
    println!(
        "  sed-b alive: {}, undeliverable replies counted: {}",
        seds[1].is_alive(),
        seds[1].reply_failures(),
    );

    // A hostile client advertises a ~4 GiB frame to a surviving server.
    // The length prefix is rejected before any allocation; the server
    // stays up and keeps answering real calls.
    let addr = servers[0].local_addr;
    let mut raw = std::net::TcpStream::connect(addr).expect("connect");
    raw.write_all(&0xFFFF_FFF0u32.to_le_bytes()).expect("write");
    raw.write_all(b"junk").expect("write");
    let mut buf = [0u8; 16];
    let n = raw.read(&mut buf).unwrap_or(0);
    println!("\n  hostile 4 GiB length prefix -> server closed the connection (read {n} bytes)");
    let (out, _) = client
        .call_over_tcp(&pool, zoom1_profile(&nl, 8), &policy)
        .expect("server must survive the hostile frame");
    assert_eq!(out.get_i32(3).unwrap(), status::OK);
    println!("  next legitimate call still succeeds on the same server");

    // Heartbeat eviction needs no client traffic at all: stop sed-c's
    // worker and wait for the monitor to deregister it.
    seds[2].shutdown();
    let t1 = Instant::now();
    while !ma.deregistered().contains(&"sed-c".to_string()) {
        assert!(t1.elapsed() < Duration::from_secs(5), "heartbeat missed");
        std::thread::sleep(Duration::from_millis(10));
    }
    println!(
        "\n  sed-c worker stopped -> heartbeat evicted it in {:.0} ms; {} SeD(s) remain",
        t1.elapsed().as_secs_f64() * 1000.0,
        ma.sed_count(),
    );

    for srv in &servers {
        srv.stop();
    }
    seds[0].shutdown();
    println!("\nevery request survived a mid-burst SeD crash.");
}
