//! The GridRPC standard API surface, end-to-end: name server, configuration
//! file, `grpc_initialize`, function handles, async calls and `grpc_wait_*`
//! — the paper's Section 4.3 ("The client API follows the GridRPC
//! definition: all diet_ functions are 'duplicated' with grpc_ functions").
//!
//! Run with: `cargo run --release --example gridrpc_api`

use cosmogrid::namelist::default_run_namelist;
use cosmogrid::services::{cosmology_service_table, status, zoom1_profile};
use diet_core::agent::{AgentNode, MasterAgent};
use diet_core::gridrpc::grpc_initialize;
use diet_core::naming::NameServer;
use diet_core::sched::WeightedSpeed;
use diet_core::sed::{SedConfig, SedHandle};
use std::sync::Arc;

fn main() {
    // --- server side: two clusters publish the cosmology services ---------
    let seds: Vec<_> = [("fast-cluster/0", 1.15), ("slow-cluster/0", 0.8)]
        .into_iter()
        .map(|(label, speed)| {
            SedHandle::spawn(SedConfig::new(label, speed), cosmology_service_table())
        })
        .collect();
    let las: Vec<_> = seds
        .iter()
        .map(|s| AgentNode::leaf(&format!("LA-{}", s.config.label), vec![s.clone()]))
        .collect();
    let ma = MasterAgent::new("MA-cosmo", las, Arc::new(WeightedSpeed));

    // --- the omniNames role: register the MA, publish the catalog ---------
    let names = NameServer::new();
    names.register(ma);
    println!("name-server catalog:");
    for entry in names.catalog(&["ramsesZoom1", "ramsesZoom2"]) {
        println!("  {} -> {:?}", entry.ma_name, entry.services);
    }

    // --- client side: configuration file + grpc_initialize ----------------
    let config = "# client.cfg\nMAName = MA-cosmo\ntraceLevel = 1\n";
    let session = grpc_initialize(config, &names).expect("grpc_initialize");
    let mut handle = session.function_handle_default("ramsesZoom1");
    println!(
        "\nfunction handle for {:?} created (unbound)",
        handle.service
    );

    // --- async calls + wait_all --------------------------------------------
    let mut nl = default_run_namelist(8, 50.0);
    nl.set("OUTPUT_PARAMS", "aout", "0.5, 1.0");
    let ids: Vec<u64> = (0..2)
        .map(|_| {
            session
                .call_async(&mut handle, zoom1_profile(&nl, 8))
                .expect("grpc_call_async")
        })
        .collect();
    println!(
        "issued {} async calls (ids {ids:?}); handle now bound to {:?}",
        ids.len(),
        handle.server
    );

    for (id, result) in session.wait_all() {
        let (profile, stats) = result.expect("grpc_wait");
        let code = profile.get_i32(3).unwrap();
        assert_eq!(code, status::OK);
        println!(
            "call {id}: status {code}, finding {:.2} ms, solve {:.1} s",
            stats.finding * 1e3,
            stats.solve
        );
    }

    // --- grpc_finalize ------------------------------------------------------
    let history = session.finalize();
    println!("\nsession closed; {} calls in the history:", history.len());
    for (server, stats) in history {
        println!("  {server}: total {:.2} s", stats.total);
    }

    for s in seds {
        s.shutdown();
    }
    println!("done.");
}
