//! The full two-part zoom workflow of the paper's Section 3, end-to-end and
//! for real: `ramsesZoom1` finds dark-matter halos in a low-resolution box,
//! then `ramsesZoom2` re-simulates the most massive halos at higher
//! resolution ("Russian-doll" nested boxes) and post-processes them through
//! the whole GALICS chain (HaloMaker → TreeMaker → GalaxyMaker).
//!
//! Run with: `cargo run --release --example zoom_pipeline`

use cosmogrid::archive;
use cosmogrid::namelist::default_run_namelist;
use cosmogrid::services::{cosmology_service_table, zoom1_profile, zoom2_profile};
use diet_core::agent::{AgentNode, MasterAgent};
use diet_core::client::DietClient;
use diet_core::sched::MinQueue;
use diet_core::sed::{SedConfig, SedHandle};
use std::sync::Arc;

fn main() {
    // Three "clusters" so the zoom requests can run in parallel.
    let seds: Vec<_> = (0..3)
        .map(|i| {
            SedHandle::spawn(
                SedConfig::new(&format!("cluster-{i}/0"), 1.0),
                cosmology_service_table(),
            )
        })
        .collect();
    let las: Vec<_> = seds
        .iter()
        .enumerate()
        .map(|(i, s)| AgentNode::leaf(&format!("LA{i}"), vec![s.clone()]))
        .collect();
    let ma = MasterAgent::new("MA", las, Arc::new(MinQueue));
    let client = DietClient::initialize(ma);

    // ---- part 1: low-resolution box → halo catalog ------------------------
    let mut namelist = default_run_namelist(8, 50.0);
    namelist.set("OUTPUT_PARAMS", "aout", "0.5, 1.0");
    println!("part 1: ramsesZoom1 at 8^3 in a 50 Mpc/h box ...");
    let (r1, s1) = client
        .call(zoom1_profile(&namelist, 8))
        .expect("zoom1 failed");
    assert_eq!(r1.get_i32(3).unwrap(), 0);
    let (_, tar) = r1.get_file(2).unwrap();
    let entries = archive::unpack(&tar.clone()).unwrap();
    let catalog = archive::find(&entries, "halos/catalog.txt").unwrap();
    let text = String::from_utf8_lossy(&catalog.data);

    // Parse the most massive halos out of the catalog (x y z in box units).
    let mut halos: Vec<(f64, [i32; 3])> = text
        .lines()
        .skip(1)
        .filter_map(|l| {
            let f: Vec<&str> = l.split_whitespace().collect();
            let mass: f64 = f.get(2)?.parse().ok()?;
            let pos: Vec<i32> = (3..6)
                .filter_map(|i| f.get(i)?.parse::<f64>().ok())
                .map(|x| (x * 100.0).round() as i32)
                .collect();
            Some((mass, [pos[0], pos[1], pos[2]]))
        })
        .collect();
    halos.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    println!(
        "part 1 done in {:.1}s: {} halos found; re-simulating the top {}",
        s1.solve,
        halos.len(),
        halos.len().min(3)
    );

    // ---- part 2: simultaneous zoom re-simulations -------------------------
    // "Similar zoom simulations are performed in parallel for each entry of
    // the halo catalog."
    let mut handles = Vec::new();
    for (rank, (mass, center)) in halos.iter().take(3).enumerate() {
        println!("  zoom {rank}: halo mass {mass:.2e} M_sun/h at {center:?} (% of box), 2 levels");
        let p = zoom2_profile(&namelist, 8, 50, *center, 2);
        let h = client.async_call(p).expect("zoom2 submit failed");
        println!("    -> mapped to {}", h.server());
        handles.push((rank, h));
    }
    for (rank, h) in handles {
        let server = h.server().to_string();
        let (r2, s2) = h.wait().expect("zoom2 failed");
        assert_eq!(r2.get_i32(8).unwrap(), 0, "zoom {rank} reported failure");
        let (_, tar) = r2.get_file(7).unwrap();
        let entries = archive::unpack(&tar.clone()).unwrap();
        let gal = archive::find(&entries, "galaxies/catalog.txt").unwrap();
        let n_gals = String::from_utf8_lossy(&gal.data)
            .lines()
            .count()
            .saturating_sub(1);
        let tree = archive::find(&entries, "tree/mergertree.txt").unwrap();
        let n_nodes = String::from_utf8_lossy(&tree.data)
            .lines()
            .count()
            .saturating_sub(1);
        println!(
            "  zoom {rank} done on {server}: {:.1}s solve, latency {:.3}s, \
             merger tree {n_nodes} nodes, {n_gals} galaxies",
            s2.solve,
            s2.latency()
        );
    }

    println!(
        "pipeline complete; total middleware overhead across calls: {:.1} ms",
        client
            .history()
            .iter()
            .map(|(_, s)| s.overhead())
            .sum::<f64>()
            * 1e3
    );
    for s in seds {
        s.shutdown();
    }
}
