//! Verification of the finite-volume Euler solver — RAMSES' second pillar
//! ("coupled to a finite volume Euler solver, based on the Adaptive Mesh
//! Refinement technics"). Runs the classic Sod shock tube and prints the
//! density/velocity/pressure profiles against the known wave structure, for
//! both Riemann solvers.
//!
//! Run with: `cargo run --release --example shock_tube`

use ramses::hydro::{sod_profile, Riemann};

fn render(vals: &[f64], lo: f64, hi: f64, width: usize) -> Vec<String> {
    vals.iter()
        .map(|&v| {
            let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            let filled = (frac * width as f64).round() as usize;
            format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
        })
        .collect()
}

fn main() {
    let n = 128;
    let t_end = 0.1;
    println!("Sod shock tube at t = {t_end} on a {n}-cell grid (periodic mirror)\n");

    for solver in [Riemann::Hll, Riemann::Hllc] {
        let prof = sod_profile(n, t_end, solver);
        println!("== {:?} ==", solver);
        println!(
            "{:>6} {:>9} {:>9} {:>9}  density profile",
            "x", "rho", "u", "p"
        );
        let rho: Vec<f64> = prof.iter().map(|w| w.rho).collect();
        let bars = render(&rho, 0.0, 1.05, 30);
        for i in (0..n / 2).step_by(4) {
            // Only the left half: the periodic domain mirrors the tube.
            let w = &prof[i];
            println!(
                "{:>6.3} {:>9.4} {:>9.4} {:>9.4}  {}",
                (i as f64 + 0.5) / n as f64,
                w.rho,
                w.vel[0],
                w.p,
                bars[i]
            );
        }

        // Wave-structure sanity summary.
        let rho_min = rho.iter().cloned().fold(f64::INFINITY, f64::min);
        let u_max = prof.iter().map(|w| w.vel[0]).fold(0.0f64, f64::max);
        let plateau = prof.iter().filter(|w| (w.rho - 0.265).abs() < 0.05).count();
        println!(
            "\n  bounds: rho in [{:.3}, {:.3}], max u = {:.3} (exact contact/shock\n  \
             plateau rho* = 0.265, u* = 0.927); cells on the plateau: {plateau}\n",
            rho_min,
            rho.iter().cloned().fold(0.0f64, f64::max),
            u_max,
        );
        assert!(u_max > 0.8 && u_max < 1.05, "u* out of range: {u_max}");
        assert!(plateau >= 3, "no contact plateau resolved");
    }
    println!("both Riemann solvers reproduce the Sod wave fan / contact / shock.");
}
