//! Replay the paper's Grid'5000 experiment (Section 5) in virtual time:
//! 1 × 128³/100 Mpc·h⁻¹ simulation, then 100 simultaneous zoom
//! sub-simulations over 11 SeDs across 5 sites, under the default
//! round-robin-like scheduling the paper observed.
//!
//! Prints the headline numbers next to the paper's measurements, the
//! Figure 4 Gantt chart, and the per-SeD totals.
//!
//! Run with: `cargo run --release --example grid_campaign`

use cosmogrid::campaign::{fmt_hms, run_campaign, CampaignConfig};

fn main() {
    println!("simulating the Grid'5000 campaign (1 + 100 simulations, 11 SeDs)...\n");
    let r = run_campaign(CampaignConfig::default());

    println!("== headline numbers (paper -> measured) ==");
    println!("  part 1 duration   : 1h15m11s -> {}", fmt_hms(r.part1_s));
    println!(
        "  part 2 mean       : 1h24m01s -> {}",
        fmt_hms(r.part2_mean_s)
    );
    println!("  campaign makespan : 16h18m43s -> {}", fmt_hms(r.makespan));
    println!("  sequential (1 SeD): >141h -> {}", fmt_hms(r.sequential_s));
    println!("  speedup           : ~8.6x -> {:.1}x", r.speedup());
    println!(
        "  finding time mean : 49.8ms -> {:.1}ms",
        r.finding_mean * 1e3
    );
    println!(
        "  overhead/request  : ~70.6ms -> {:.1}ms (total {:.1}s over 101 requests)",
        r.overhead_mean * 1e3,
        r.overhead_mean * 101.0
    );

    println!("\n== figure 4 (left): Gantt of the 100 sub-simulations ==");
    print!("{}", r.part2_gantt().render_ascii(96));

    println!("\n== figure 4 (right): per-SeD distribution ==");
    println!("  {:<22} {:>8} {:>12}", "SeD", "requests", "busy time");
    for (label, requests, busy) in &r.sed_rows {
        println!("  {label:<22} {requests:>8} {:>12}", fmt_hms(*busy));
    }

    println!("\n== figure 5: finding time and latency (samples) ==");
    println!(
        "  {:>7} {:>14} {:>14}",
        "request", "finding (ms)", "latency (s)"
    );
    for idx in [1usize, 5, 11, 12, 25, 50, 75, 100] {
        let (req, f) = r.finding[idx.min(r.finding.len() - 1)];
        let lat = r
            .latency
            .iter()
            .find(|(lr, _)| *lr == req)
            .map(|(_, l)| *l)
            .unwrap_or(0.0);
        println!("  {req:>7} {:>14.1} {lat:>14.1}", f * 1e3);
    }
    println!(
        "\nlatency grows from milliseconds (first 11 requests run at once)\n\
         to hours (late requests wait behind earlier sub-simulations),\n\
         while finding time stays ~constant — the paper's Figure 5 shape."
    );
}
