#!/usr/bin/env sh
# Tier-1 gate: build, test, lint. Run from the repo root.
set -eux

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Determinism regression: the full simulation and solver stack must be
# bitwise-identical at 1 and 4 threads (the tests also sweep widths
# in-process via ThreadPool::install).
RAYON_NUM_THREADS=1 cargo test -q -p ramses --test determinism_threads
RAYON_NUM_THREADS=4 cargo test -q -p ramses --test determinism_threads

# Kernel-scaling smoke: reduced sweep, validates the JSON artifact and the
# cross-thread-count checksums (exits non-zero on mismatch).
cargo run --release -p bench --bin exp_kernel_scaling -- --quick

# Observability smoke: a live traced campaign over TCP (100 requests, one
# mid-run SeD kill) that dumps both exporters and self-checks that every
# request's spans share one trace id across all five phases. The binary
# validates the Chrome trace with bench::validate_json before writing it;
# re-check the written artifacts exist and are non-empty here.
cargo run --release -p bench --bin exp_live_fig5
test -s target/experiments/live_metrics.prom
test -s target/experiments/live_trace.json
grep -q 'diet_client_requests_total' target/experiments/live_metrics.prom
grep -q '"ph":"X"' target/experiments/live_trace.json

# Data-management gate: the store/catalog consistency storm and the live
# SeD-to-SeD transfer + re-ship scenario, at both thread widths; the codec
# property tests cover the new GetData/DataReply/PutData frames.
RAYON_NUM_THREADS=1 cargo test -q -p diet-core --test data_concurrency --test prop_codec
RAYON_NUM_THREADS=4 cargo test -q -p diet-core --test data_concurrency --test prop_codec
RAYON_NUM_THREADS=1 cargo test -q -p cosmogrid --test tcp_data_reuse
RAYON_NUM_THREADS=4 cargo test -q -p cosmogrid --test tcp_data_reuse

# Data-reuse smoke: the same live zoom batch volatile vs persistent; the
# binary asserts byte-identical results and reduced client wire traffic.
cargo run --release -p bench --bin exp_data_reuse -- --quick
test -s target/experiments/data_reuse.csv
grep -q '^reuse,' target/experiments/data_reuse.csv
