#!/usr/bin/env sh
# Tier-1 gate: build, test, lint. Run from the repo root.
set -eux

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
