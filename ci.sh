#!/usr/bin/env sh
# Tier-1 gate, split into named stages so CI (and humans) can run them
# individually:
#
#   ./ci.sh              # run every stage, print per-stage wall-clock times
#   ./ci.sh build test   # run only the named stages, in the given order
#
# Stages: build test lint determinism obs data throughput hierarchy serving
#         telemetry workflow jobserver
set -eu

STAGE_NAMES=""
STAGE_TIMES=""

run_stage() {
    name="$1"
    echo "==> stage: $name"
    start=$(date +%s)
    "stage_$name"
    end=$(date +%s)
    STAGE_NAMES="$STAGE_NAMES $name"
    STAGE_TIMES="$STAGE_TIMES $((end - start))"
}

report() {
    echo "==> stage timings (wall-clock seconds)"
    # shellcheck disable=SC2086 # parallel word lists, splitting intended
    set -- $STAGE_TIMES
    for name in $STAGE_NAMES; do
        printf '    %-12s %ss\n' "$name" "$1"
        shift
    done
    # On GitHub Actions, publish the same table as job-summary markdown.
    if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
        {
            echo "### ci.sh stage timings"
            echo ""
            echo "| stage | wall-clock (s) |"
            echo "| --- | ---: |"
            # shellcheck disable=SC2086
            set -- $STAGE_TIMES
            for name in $STAGE_NAMES; do
                echo "| $name | $1 |"
                shift
            done
        } >> "$GITHUB_STEP_SUMMARY"
    fi
}

stage_build() {
    (set -x; cargo build --release --workspace)
}

stage_test() {
    (set -x; cargo test -q --workspace)
}

stage_lint() {
    (set -x
     cargo fmt --all --check
     cargo clippy --workspace --all-targets -- -D warnings)
    # The workflow file must stay parseable; prefer a real YAML parser when
    # one is around, fall back to a structural sanity grep.
    if command -v python3 >/dev/null 2>&1 && \
       python3 -c 'import yaml' 2>/dev/null; then
        (set -x; python3 -c 'import sys, yaml; yaml.safe_load(open(".github/workflows/ci.yml"))')
    else
        (set -x
         grep -q '^jobs:' .github/workflows/ci.yml
         grep -q 'RAYON_NUM_THREADS' .github/workflows/ci.yml)
    fi
    # This script is part of the gate too: shellcheck when available,
    # otherwise at least a parse check.
    if command -v shellcheck >/dev/null 2>&1; then
        (set -x; shellcheck ci.sh)
    else
        (set -x; sh -n ci.sh)
    fi
    # Drift guard: every stage_* function defined here must be reachable
    # through ALL_STAGES, or `./ci.sh` silently stops running it.
    for fn in $(grep -o '^stage_[a-z_]*' ci.sh | sort -u); do
        name="${fn#stage_}"
        case " $ALL_STAGES " in
            *" $name "*) ;;
            *) echo "ci.sh drift: $fn() is not listed in ALL_STAGES" >&2; exit 1 ;;
        esac
    done
}

stage_determinism() {
    # The full simulation and solver stack must be bitwise-identical at 1
    # and 4 threads (the tests also sweep widths in-process via
    # ThreadPool::install). Plus the kernel-scaling smoke: reduced sweep,
    # validates the JSON artifact and cross-thread-count checksums.
    (set -x
     RAYON_NUM_THREADS=1 cargo test -q -p ramses --test determinism_threads
     RAYON_NUM_THREADS=4 cargo test -q -p ramses --test determinism_threads
     cargo run --release -p bench --bin exp_kernel_scaling -- --quick)
}

stage_obs() {
    # Observability smoke: a live traced campaign over TCP (100 requests,
    # one mid-run SeD kill) that dumps both exporters and self-checks that
    # every request's spans share one trace id across all five phases. The
    # binary validates the Chrome trace with bench::validate_json before
    # writing it; re-check the written artifacts exist and are non-empty.
    (set -x
     cargo run --release -p bench --bin exp_live_fig5
     test -s target/experiments/live_metrics.prom
     test -s target/experiments/live_trace.json
     grep -q 'diet_client_requests_total' target/experiments/live_metrics.prom
     grep -q '"ph":"X"' target/experiments/live_trace.json)
}

stage_data() {
    # Data-management gate: the store/catalog consistency storm and the
    # live SeD-to-SeD transfer + re-ship scenario, at both thread widths;
    # the codec property tests cover GetData/DataReply/PutData frames. Then
    # the data-reuse smoke: the same live zoom batch volatile vs
    # persistent; the binary asserts byte-identical results and reduced
    # client wire traffic.
    (set -x
     RAYON_NUM_THREADS=1 cargo test -q -p diet-core --test data_concurrency --test prop_codec
     RAYON_NUM_THREADS=4 cargo test -q -p diet-core --test data_concurrency --test prop_codec
     RAYON_NUM_THREADS=1 cargo test -q -p cosmogrid --test tcp_data_reuse
     RAYON_NUM_THREADS=4 cargo test -q -p cosmogrid --test tcp_data_reuse
     cargo run --release -p bench --bin exp_data_reuse -- --quick
     test -s target/experiments/data_reuse.csv
     grep -q '^reuse,' target/experiments/data_reuse.csv)
}

stage_throughput() {
    # Serving-model gate: the pipelined soak (64 concurrent callers on one
    # multiplexed connection, mid-run SeD kill, zero lost or mis-correlated
    # replies) at both thread widths, then the closed-loop throughput sweep.
    # The binary self-checks the >=2x mux-vs-baseline speedup at
    # concurrency 64 and that overload drains via Busy + backoff with zero
    # timeouts, and validates its JSON artifact before writing it.
    (set -x
     RAYON_NUM_THREADS=1 cargo test -q -p cosmogrid --test tcp_throughput
     RAYON_NUM_THREADS=4 cargo test -q -p cosmogrid --test tcp_throughput
     cargo run --release -p bench --bin exp_throughput -- --quick
     test -s target/experiments/BENCH_throughput_quick.json
     grep -q '"speedup"' target/experiments/BENCH_throughput_quick.json)
}

stage_hierarchy() {
    # Distributed-tree gate: MAs/LAs/SeDs as separate TCP processes. The
    # test suite covers the 3-level resolve through two remote hops, the
    # interior-LA kill mid-burst (zero lost requests), MA-to-MA federation,
    # heartbeat mark/restore of whole subtrees, and per-agent Busy
    # admission, at both thread widths. The finding-depth bench self-checks
    # that all submits resolve at depths 1/2/3 and validates its artifact.
    (set -x
     RAYON_NUM_THREADS=1 cargo test -q -p diet-core --test hierarchy_tcp
     RAYON_NUM_THREADS=4 cargo test -q -p diet-core --test hierarchy_tcp
     cargo run --release -p bench --bin exp_finding_depth -- --quick
     test -s target/experiments/BENCH_finding_quick.json
     grep -q '"finding_p50_ms"' target/experiments/BENCH_finding_quick.json)
}

stage_serving() {
    # Readiness-driven serving-core gate: the adversarial reactor suite
    # (byte-trickled frames, slow-loris under a single worker, mid-frame
    # disconnect pruning, hostile length prefixes, the pooled server's
    # conn-map regression) at both thread widths, then the quick throughput
    # run whose idle-connection sweep self-checks that foreground rps holds
    # across a held herd and that the process thread count stays flat.
    (set -x
     RAYON_NUM_THREADS=1 cargo test -q -p diet-core --test reactor_adversarial
     RAYON_NUM_THREADS=4 cargo test -q -p diet-core --test reactor_adversarial
     cargo run --release -p bench --bin exp_throughput -- --quick
     test -s target/experiments/BENCH_throughput_quick.json
     grep -q '"idle_sweep"' target/experiments/BENCH_throughput_quick.json)
}

stage_telemetry() {
    # Distributed-telemetry gate: the collector suite (every component a
    # private Obs flushing over the wire; the collector must stitch one
    # cross-process trace per request, merge counters to the per-process
    # sums, and expose its own reactor's instrumentation) at both thread
    # widths, then the quick overhead bench, which self-checks that
    # telemetry-enabled mux throughput stays within its floor of disabled
    # and validates its JSON artifact before writing it.
    (set -x
     RAYON_NUM_THREADS=1 cargo test -q -p diet-core --test telemetry_tcp
     RAYON_NUM_THREADS=4 cargo test -q -p diet-core --test telemetry_tcp
     cargo run --release -p bench --bin exp_telemetry -- --quick
     test -s target/experiments/BENCH_telemetry_quick.json
     grep -q '"stitching"' target/experiments/BENCH_telemetry_quick.json)
}

stage_workflow() {
    # MA-DAG engine gate: the over-the-wire dag suite (SeD-to-SeD-only
    # intermediates, straggler speculation with zero lost dags, event
    # polling + trace stitching, client-disconnect cancellation) and the
    # application-level fan-out tests, at both thread widths, then the
    # quick makespan bench, which self-checks the dag-vs-per-stage speedup
    # floor and that zero intermediate bytes crossed the client link, and
    # validates its JSON artifact before writing it.
    (set -x
     RAYON_NUM_THREADS=1 cargo test -q -p diet-core --test dag_tcp
     RAYON_NUM_THREADS=4 cargo test -q -p diet-core --test dag_tcp
     RAYON_NUM_THREADS=1 cargo test -q -p diet-core --lib dag
     RAYON_NUM_THREADS=4 cargo test -q -p diet-core --lib dag
     RAYON_NUM_THREADS=1 cargo test -q -p cosmogrid --lib workflow
     RAYON_NUM_THREADS=4 cargo test -q -p cosmogrid --lib workflow
     cargo run --release -p bench --bin exp_workflow -- --quick
     test -s target/experiments/BENCH_workflow_quick.json
     grep -q '"speedup"' target/experiments/BENCH_workflow_quick.json)
}

stage_jobserver() {
    # Durable-campaign gate: the WAL/snapshot recovery property suite
    # (byte-level torn-tail truncation, snapshot+tail equivalence) and the
    # over-the-wire jobserver suite (mixed campaigns through the MA
    # hierarchy, idempotent resubmission, dead-SeD requeue, restart with
    # zero recompute) at both thread widths, then the crash-recovery
    # experiment: a separate diet_jobserver process SIGKILLed mid-campaign
    # must restart from its log, recompute nothing already Done, and
    # finish. The binary validates its JSON artifact before writing it.
    (set -x
     RAYON_NUM_THREADS=1 cargo test -q -p diet-core --test jobserver_log --test jobserver_tcp
     RAYON_NUM_THREADS=4 cargo test -q -p diet-core --test jobserver_log --test jobserver_tcp
     RAYON_NUM_THREADS=1 cargo test -q -p diet-core --lib jobserver
     RAYON_NUM_THREADS=4 cargo test -q -p cosmogrid --test tcp_jobserver
     cargo build --release -p diet-core --bin diet_jobserver
     cargo run --release -p bench --bin exp_jobserver -- --quick
     test -s target/experiments/BENCH_jobserver_quick.json
     grep -q '"recomputed": 0' target/experiments/BENCH_jobserver_quick.json
     grep -q '"failed": 0' target/experiments/BENCH_jobserver_quick.json)
}

ALL_STAGES="build test lint determinism obs data throughput hierarchy serving telemetry workflow jobserver"
if [ $# -eq 0 ]; then
    # shellcheck disable=SC2086 # stage list is a word list by design
    set -- $ALL_STAGES
fi
for stage in "$@"; do
    case " $ALL_STAGES " in
        *" $stage "*) run_stage "$stage" ;;
        *) echo "unknown stage: $stage (expected one of: $ALL_STAGES)" >&2; exit 2 ;;
    esac
done
report
