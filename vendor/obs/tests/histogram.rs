//! Histogram correctness: bucket boundary placement, quantile estimates
//! against a known distribution, and saturating overflow behaviour.

use obs::Histogram;

#[test]
fn bucket_boundaries_are_inclusive_upper_bounds() {
    let h = Histogram::with_bounds(vec![1.0, 2.0, 4.0]);
    // Exactly on a bound lands in that bucket (le semantics).
    h.observe(1.0);
    h.observe(2.0);
    h.observe(4.0);
    // Strictly above a bound lands in the next one.
    h.observe(1.000001);
    h.observe(0.0);
    h.observe(-5.0); // below the first bound still counts in bucket 0
    assert_eq!(h.bucket_counts(), vec![3, 2, 1, 0]);
    assert_eq!(h.count(), 6);
}

#[test]
fn quantiles_match_known_uniform_distribution() {
    // 100 samples: 1..=100, with bounds at every integer — quantiles are
    // then exact: p50 = 50, p95 = 95, p99 = 99.
    let bounds: Vec<f64> = (1..=100).map(|i| i as f64).collect();
    let h = Histogram::with_bounds(bounds);
    for i in 1..=100 {
        h.observe(i as f64);
    }
    assert_eq!(h.p50(), 50.0);
    assert_eq!(h.p95(), 95.0);
    assert_eq!(h.p99(), 99.0);
    assert_eq!(h.quantile(1.0), 100.0);
    assert_eq!(h.quantile(0.0), 1.0); // rank clamps to the first sample
}

#[test]
fn quantiles_resolve_to_bucket_upper_bounds() {
    // Coarse buckets: the estimator answers with the upper bound of the
    // bucket containing the rank, never interpolates.
    let h = Histogram::with_bounds(vec![0.001, 0.01, 0.1, 1.0]);
    for _ in 0..90 {
        h.observe(0.0005); // bucket le=0.001
    }
    for _ in 0..10 {
        h.observe(0.05); // bucket le=0.1
    }
    assert_eq!(h.p50(), 0.001);
    assert_eq!(h.quantile(0.90), 0.001);
    assert_eq!(h.p95(), 0.1);
    assert_eq!(h.p99(), 0.1);
}

#[test]
fn overflow_bucket_saturates_quantiles_to_last_finite_bound() {
    let h = Histogram::with_bounds(vec![1.0, 10.0]);
    for _ in 0..4 {
        h.observe(1e9); // way past the last bound: overflow bucket
    }
    h.observe(0.5);
    let counts = h.bucket_counts();
    assert_eq!(counts, vec![1, 0, 4]);
    // Quantiles cannot resolve beyond the histogram range: they saturate
    // to the last finite bound instead of inventing a value.
    assert_eq!(h.p50(), 10.0);
    assert_eq!(h.p99(), 10.0);
    // Sum still sees the true values.
    assert!((h.sum() - (4.0 * 1e9 + 0.5)).abs() < 1.0);
}

#[test]
fn empty_histogram_quantiles_are_zero() {
    let h = Histogram::with_bounds(vec![1.0]);
    assert_eq!(h.p50(), 0.0);
    assert_eq!(h.p99(), 0.0);
    assert_eq!(h.count(), 0);
}

#[test]
fn default_latency_buckets_span_microseconds_to_seconds() {
    let h = Histogram::latency();
    let bounds = h.bounds();
    assert_eq!(bounds[0], 1e-6);
    assert_eq!(*bounds.last().unwrap(), 500.0);
    assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    // A loopback-ish latency and a long solve both land in finite buckets.
    h.observe(350e-6);
    h.observe(42.0);
    let counts = h.bucket_counts();
    assert_eq!(*counts.last().unwrap(), 0);
    assert_eq!(h.count(), 2);
}
