//! Minimal observability toolkit: tracing spans, a metrics registry and two
//! exporters (Prometheus text, Chrome `trace_event` JSON), all std-only.
//!
//! This plays the role DIET's LogService/VizDIET stack played for the paper's
//! evaluation: every live request is decomposed into the same phases the
//! simulator records (`Finding`, `Submission`, `Queued`, `Execution`,
//! `ResultReturn`), so live and simulated campaigns are directly comparable.
//!
//! Design points:
//! - [`trace::Tracer`] is a fixed-capacity ring buffer of completed spans.
//!   Spans carry a `trace_id` (one per logical request, stable across
//!   resubmissions) and a process-unique `span_id` with a parent link.
//! - [`trace::TraceCtx`] is the 16-byte context that crosses process/frame
//!   boundaries; the DIET codec embeds it in `Call` frames.
//! - [`metrics::Registry`] interns counters, gauges and fixed-bucket
//!   histograms by (name, labels); all hot-path updates are lock-free
//!   atomics.
//! - Components each own an [`Obs`]; a deployment that wants one unified
//!   view (e.g. the `exp_live_fig5` bench) injects a single shared
//!   `Arc<Obs>` everywhere.

pub mod export;
pub mod metrics;
pub mod trace;

pub use export::{chrome_trace, render_prometheus_multi};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use trace::{Span, SpanRecord, TraceCtx, Tracer};

/// Default span ring capacity: enough for a few thousand requests at the
/// five-spans-per-request rate of the live path.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// A tracer and a metrics registry bundled together; the unit of injection
/// for every middleware component (client, agent, SeD).
#[derive(Debug)]
pub struct Obs {
    pub tracer: Tracer,
    pub metrics: Registry,
}

impl Obs {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// `capacity` bounds the span ring; metrics are unbounded (they are
    /// aggregates, not logs).
    pub fn with_capacity(capacity: usize) -> Self {
        Obs {
            tracer: Tracer::new(capacity),
            metrics: Registry::new(),
        }
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}
