//! Minimal observability toolkit: tracing spans, a metrics registry and two
//! exporters (Prometheus text, Chrome `trace_event` JSON), all std-only.
//!
//! This plays the role DIET's LogService/VizDIET stack played for the paper's
//! evaluation: every live request is decomposed into the same phases the
//! simulator records (`Finding`, `Submission`, `Queued`, `Execution`,
//! `ResultReturn`), so live and simulated campaigns are directly comparable.
//!
//! Design points:
//! - [`trace::Tracer`] is a fixed-capacity ring buffer of completed spans.
//!   Spans carry a `trace_id` (one per logical request, stable across
//!   resubmissions) and a process-unique `span_id` with a parent link.
//! - [`trace::TraceCtx`] is the 16-byte context that crosses process/frame
//!   boundaries; the DIET codec embeds it in `Call` frames.
//! - [`metrics::Registry`] interns counters, gauges and fixed-bucket
//!   histograms by (name, labels); all hot-path updates are lock-free
//!   atomics.
//! - Components each own an [`Obs`]; a deployment that wants one unified
//!   view (e.g. the `exp_live_fig5` bench) injects a single shared
//!   `Arc<Obs>` everywhere.

pub mod export;
pub mod metrics;
pub mod trace;

pub use export::{chrome_trace, render_prometheus_multi};
pub use metrics::{Counter, DeltaTracker, Gauge, Histogram, Labels, MetricSnapshot, Registry};
pub use trace::{intern_name, Span, SpanRecord, TraceCtx, Tracer};

/// Default span ring capacity: enough for a few thousand requests at the
/// five-spans-per-request rate of the live path.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// A tracer and a metrics registry bundled together; the unit of injection
/// for every middleware component (client, agent, SeD).
#[derive(Debug)]
pub struct Obs {
    pub tracer: Tracer,
    pub metrics: Registry,
}

impl Obs {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// `capacity` bounds the span ring; metrics are unbounded (they are
    /// aggregates, not logs).
    pub fn with_capacity(capacity: usize) -> Self {
        Obs {
            tracer: Tracer::new(capacity),
            metrics: Registry::new(),
        }
    }
}

impl Obs {
    /// Drain spans recorded since the last drain (the flusher's export
    /// step) and account any spans the ring overwrote before they could be
    /// exported in the `diet_obs_spans_dropped_total` counter — so a
    /// truncated trace is visible in the metrics instead of silent.
    pub fn drain_spans(&self) -> Vec<SpanRecord> {
        let spans = self.tracer.drain();
        let lost = self.tracer.lost_unexported();
        let c = self.metrics.counter("diet_obs_spans_dropped_total");
        let reported = c.get();
        if lost > reported {
            c.add(lost - reported);
        }
        spans
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_spans_accounts_unexported_overwrites() {
        let obs = Obs::with_capacity(2);
        for i in 1..=5 {
            obs.tracer.record_window(i, 0, "x", "r", 0, 1);
        }
        let drained = obs.drain_spans();
        assert_eq!(drained.len(), 2, "only the retained tail is exportable");
        assert_eq!(
            obs.metrics.counter_value("diet_obs_spans_dropped_total"),
            3,
            "spans 1..=3 were overwritten before any export"
        );
        // Draining again without new losses must not double-count.
        obs.tracer.record_window(6, 0, "x", "r", 0, 1);
        let _ = obs.drain_spans();
        assert_eq!(obs.metrics.counter_value("diet_obs_spans_dropped_total"), 3);
    }
}
