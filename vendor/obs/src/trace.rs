//! Span/event tracing core: trace ids, RAII span guards, a ring-buffer
//! collector, and the wire-propagated [`TraceCtx`].
//!
//! Timestamps are nanoseconds of monotonic time since the tracer's epoch
//! (its construction instant). Within one process — or one shared
//! [`crate::Obs`] — all spans are therefore on a single consistent axis.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Span ids are process-unique (one counter shared by every tracer) so that
/// spans recorded by different components into a shared ring never collide.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

fn alloc_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Cap on distinct non-built-in span names the process-global intern table
/// will leak; names beyond it collapse to `"span"` so a hostile peer cannot
/// grow memory without bound through [`intern_name`].
const INTERN_CAP: usize = 1024;

/// Intern table for span names that arrive over the wire (a [`SpanRecord`]
/// stores `&'static str`, which a decoded frame cannot provide directly).
static INTERNED: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());

/// Map a wire-decoded span name onto a `&'static str`. The live path's
/// phase names hit the fast match; anything else is leaked once into a
/// bounded process-global table (overflow collapses to `"span"`).
pub fn intern_name(name: &str) -> &'static str {
    match name {
        "Finding" => "Finding",
        "Submission" => "Submission",
        "Queued" => "Queued",
        "Execution" => "Execution",
        "ResultReturn" => "ResultReturn",
        "AgentEstimate" => "AgentEstimate",
        "attempt" => "attempt",
        "request" => "request",
        "span" => "span",
        other => {
            let mut table = INTERNED.lock().unwrap();
            if let Some(s) = table.get(other) {
                return s;
            }
            if table.len() >= INTERN_CAP {
                return "span";
            }
            let leaked: &'static str = Box::leak(other.to_string().into_boxed_str());
            table.insert(other.to_string(), leaked);
            leaked
        }
    }
}

/// Trace context propagated across frame boundaries (16 bytes on the wire:
/// two little-endian u64s in the codec's `Call` frame).
///
/// `trace_id == 0` means "untraced"; receivers skip span recording entirely.
/// One `trace_id` is allocated per *logical* request and survives
/// resubmission — every retry attempt carries the same trace id with its
/// own span ids, which is exactly what lets a trace viewer show a request
/// hopping between SeDs after a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    pub trace_id: u64,
    /// Span the receiver should parent its spans under (0 = root).
    pub parent_span: u64,
}

impl TraceCtx {
    pub fn is_active(&self) -> bool {
        self.trace_id != 0
    }
}

/// A completed span, as stored in the ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub trace_id: u64,
    pub span_id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Phase name; the live path uses the simulator's `TraceKind` names.
    pub name: &'static str,
    /// Where the span ran: "client", "agents", or a SeD label.
    pub resource: String,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl SpanRecord {
    pub fn duration_s(&self) -> f64 {
        (self.end_ns.saturating_sub(self.start_ns)) as f64 * 1e-9
    }
}

struct Ring {
    buf: Vec<SpanRecord>,
    /// Next slot to write once `buf.len() == capacity`.
    next: usize,
    /// Spans ever pushed (monotonic logical index of the next push).
    total: u64,
    /// Logical index up to which spans have been handed out by
    /// [`Tracer::drain`]; everything below it is exported.
    drained: u64,
}

/// Fixed-capacity collector of completed spans. When full, the oldest span
/// is overwritten and `dropped` is incremented — tracing never blocks or
/// grows unboundedly, mirroring LogService's bounded event buffers.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
    next_trace: AtomicU64,
    dropped: AtomicU64,
    /// Overwritten spans that had never been drained — truncated exports.
    lost_unexported: AtomicU64,
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("len", &self.buf.len())
            .finish()
    }
}

impl Tracer {
    pub fn new(capacity: usize) -> Self {
        Tracer {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                next: 0,
                total: 0,
                drained: 0,
            }),
            next_trace: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            lost_unexported: AtomicU64::new(0),
        }
    }

    /// Allocate a fresh trace id (never 0).
    pub fn new_trace(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Nanoseconds of monotonic time since this tracer was created.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Start a live span; recording happens when the guard drops (or
    /// [`Span::end`] is called). `parent == 0` makes a root span.
    pub fn span(&self, trace_id: u64, parent: u64, name: &'static str, resource: &str) -> Span<'_> {
        Span {
            tracer: self,
            trace_id,
            span_id: alloc_span_id(),
            parent,
            name,
            resource: resource.to_string(),
            start_ns: self.now_ns(),
            done: false,
        }
    }

    /// Record a span from explicit start/end timestamps (used when a phase
    /// boundary is only known after the fact, e.g. the send portion of an
    /// attempt reconstructed from the reply's timings). Returns the span id.
    #[allow(clippy::too_many_arguments)]
    pub fn record_window(
        &self,
        trace_id: u64,
        parent: u64,
        name: &'static str,
        resource: &str,
        start_ns: u64,
        end_ns: u64,
    ) -> u64 {
        let span_id = alloc_span_id();
        self.push(SpanRecord {
            trace_id,
            span_id,
            parent,
            name,
            resource: resource.to_string(),
            start_ns,
            end_ns: end_ns.max(start_ns),
        });
        span_id
    }

    fn push(&self, rec: SpanRecord) {
        let mut ring = self.ring.lock().unwrap();
        if ring.buf.len() < self.capacity {
            ring.buf.push(rec);
        } else {
            // The overwritten span's logical index is the oldest retained
            // one; if the drain cursor never reached it, an exporter has
            // permanently lost it — count that separately from plain
            // overwrites so truncated traces are detectable.
            let overwritten = ring.total - self.capacity as u64;
            if overwritten >= ring.drained {
                self.lost_unexported.fetch_add(1, Ordering::Relaxed);
            }
            let next = ring.next;
            ring.buf[next] = rec;
            ring.next = (next + 1) % self.capacity;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.total += 1;
    }

    /// Append a span recorded by *another* process (a wire-shipped record):
    /// ids and timestamps are preserved verbatim — they are only meaningful
    /// relative to the originating process, which is why stitched views key
    /// on `trace_id`, never on span ids or clocks.
    pub fn ingest(&self, rec: SpanRecord) {
        self.push(rec);
    }

    /// All retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let ring = self.ring.lock().unwrap();
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.next..]);
        out.extend_from_slice(&ring.buf[..ring.next]);
        out
    }

    /// Spans pushed since the previous `drain`, oldest first, advancing the
    /// drain cursor — the flusher's incremental export. Spans the ring
    /// overwrote before they could be drained are gone; they are accounted
    /// in [`Tracer::lost_unexported`].
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut ring = self.ring.lock().unwrap();
        let len = ring.buf.len() as u64;
        let oldest = ring.total - len;
        let start = ring.drained.max(oldest);
        let take = (ring.total - start) as usize;
        let mut out = Vec::with_capacity(take);
        // Map logical index `start` onto its ring position and walk forward.
        let mut pos = if len < self.capacity as u64 {
            (start - oldest) as usize
        } else {
            (ring.next + (start - oldest) as usize) % self.capacity
        };
        for _ in 0..take {
            out.push(ring.buf[pos].clone());
            pos = (pos + 1) % self.capacity.max(1);
        }
        ring.drained = ring.total;
        out
    }

    /// Spans overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Overwritten spans that had never been handed out by
    /// [`Tracer::drain`] — the count of spans an exporter can never see.
    pub fn lost_unexported(&self) -> u64 {
        self.lost_unexported.load(Ordering::Relaxed)
    }

    pub fn clear(&self) {
        let mut ring = self.ring.lock().unwrap();
        ring.buf.clear();
        ring.next = 0;
        // Everything ever pushed counts as consumed: a fresh drain after
        // clear starts from the next push, not from resurrected indices.
        let total = ring.total;
        ring.drained = total;
    }
}

/// RAII guard for a live span: records on drop. Obtain the context to
/// propagate downstream with [`Span::ctx`].
#[must_use = "a span records when dropped; binding to _ drops it immediately"]
pub struct Span<'a> {
    tracer: &'a Tracer,
    trace_id: u64,
    span_id: u64,
    parent: u64,
    name: &'static str,
    resource: String,
    start_ns: u64,
    done: bool,
}

impl Span<'_> {
    pub fn id(&self) -> u64 {
        self.span_id
    }

    /// Context that parents downstream spans under this one.
    pub fn ctx(&self) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            parent_span: self.span_id,
        }
    }

    /// End the span now (equivalent to dropping it).
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        self.tracer.push(SpanRecord {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent: self.parent,
            name: self.name,
            resource: std::mem::take(&mut self.resource),
            start_ns: self.start_ns,
            end_ns: self.tracer.now_ns(),
        });
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_with_parent_links() {
        let t = Tracer::new(16);
        let trace = t.new_trace();
        let root = t.span(trace, 0, "request", "client");
        let root_id = root.id();
        {
            let child = t.span(trace, root.id(), "Finding", "agents");
            assert_ne!(child.id(), root.id());
            assert_eq!(child.ctx().trace_id, trace);
        }
        root.end();
        let spans = t.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "Finding");
        assert_eq!(spans[0].parent, root_id);
        assert_eq!(spans[1].name, "request");
        assert!(spans[1].end_ns >= spans[1].start_ns);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let t = Tracer::new(4);
        for _ in 0..10 {
            let trace = t.new_trace();
            t.span(trace, 0, "x", "r").end();
        }
        let spans = t.snapshot();
        assert_eq!(spans.len(), 4);
        assert_eq!(t.dropped(), 6);
        // Oldest-first: the survivors are the last four traces (7..=10).
        assert_eq!(spans[0].trace_id, 7);
        assert_eq!(spans[3].trace_id, 10);
    }

    #[test]
    fn trace_ids_start_at_one_and_zero_is_inactive() {
        let t = Tracer::new(4);
        assert_eq!(t.new_trace(), 1);
        assert!(!TraceCtx::default().is_active());
        assert!(TraceCtx {
            trace_id: 1,
            parent_span: 0
        }
        .is_active());
    }

    #[test]
    fn record_window_clamps_inverted_ranges() {
        let t = Tracer::new(4);
        t.record_window(1, 0, "w", "r", 100, 50);
        let s = t.snapshot();
        assert_eq!(s[0].start_ns, 100);
        assert_eq!(s[0].end_ns, 100);
        assert_eq!(s[0].duration_s(), 0.0);
    }

    #[test]
    fn drain_is_incremental_and_oldest_first() {
        let t = Tracer::new(8);
        t.record_window(1, 0, "a", "r", 0, 1);
        t.record_window(2, 0, "b", "r", 1, 2);
        let first = t.drain();
        assert_eq!(
            first.iter().map(|s| s.trace_id).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(t.drain().is_empty(), "second drain must start after 2");
        t.record_window(3, 0, "c", "r", 2, 3);
        let second = t.drain();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].trace_id, 3);
        // snapshot still sees everything retained.
        assert_eq!(t.snapshot().len(), 3);
    }

    #[test]
    fn overwrites_of_undrained_spans_are_lost_unexported() {
        let t = Tracer::new(4);
        for i in 1..=4 {
            t.record_window(i, 0, "x", "r", 0, 1);
        }
        assert_eq!(t.drain().len(), 4);
        assert_eq!(t.lost_unexported(), 0);
        // Four more fit exactly: they overwrite only already-drained spans.
        for i in 5..=8 {
            t.record_window(i, 0, "x", "r", 0, 1);
        }
        assert_eq!(t.dropped(), 4);
        assert_eq!(t.lost_unexported(), 0);
        // Two beyond capacity without a drain: spans 5 and 6 are gone
        // before any exporter saw them.
        for i in 9..=10 {
            t.record_window(i, 0, "x", "r", 0, 1);
        }
        assert_eq!(t.lost_unexported(), 2);
        let drained = t.drain();
        assert_eq!(
            drained.iter().map(|s| s.trace_id).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
    }

    #[test]
    fn drain_after_wrap_starts_at_oldest_retained() {
        let t = Tracer::new(3);
        for i in 1..=7 {
            t.record_window(i, 0, "x", "r", 0, 1);
        }
        let drained = t.drain();
        assert_eq!(
            drained.iter().map(|s| s.trace_id).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
        assert_eq!(t.lost_unexported(), 4);
    }

    #[test]
    fn ingest_preserves_foreign_ids_verbatim() {
        let t = Tracer::new(4);
        t.ingest(SpanRecord {
            trace_id: 42,
            span_id: 9_999,
            parent: 123,
            name: intern_name("Execution"),
            resource: "remote/s0".into(),
            start_ns: 5,
            end_ns: 10,
        });
        let s = t.snapshot();
        assert_eq!(s[0].span_id, 9_999);
        assert_eq!(s[0].parent, 123);
        assert_eq!(s[0].name, "Execution");
    }

    #[test]
    fn intern_name_is_stable_for_known_and_unknown_names() {
        assert_eq!(intern_name("Finding"), "Finding");
        let a = intern_name("custom-phase");
        let b = intern_name("custom-phase");
        assert_eq!(a, b);
        // Pointer-identical: the same leak is reused, not re-leaked.
        assert!(std::ptr::eq(a.as_ptr(), b.as_ptr()));
    }
}
