//! Metrics registry: atomic counters/gauges and fixed-bucket histograms
//! with quantile estimation, interned by (name, labels).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge storing an `f64` in atomic bits.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram. `bounds` are ascending bucket upper bounds; an
/// implicit overflow (`+Inf`) bucket catches everything above the last
/// bound, so `observe` never loses a sample (saturating behaviour).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` slots; the last is the overflow bucket.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Default latency buckets: 1-2.5-5 decades from 1 µs to 500 s — wide
    /// enough for both loopback TCP latencies and real solve times.
    pub fn latency() -> Self {
        // Literals, not computed powers: `2.5 * 10f64.powi(-6)` lands one
        // ulp off `2.5e-6` and renders as 0.0000024999999999999998 in the
        // `le` labels.
        Self::with_bounds(vec![
            1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
            2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
        ])
    }

    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // f64 sum via CAS loop on the bit pattern (std has no AtomicF64).
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Quantile estimate, `q` in [0, 1]: the upper bound of the first
    /// bucket whose cumulative count reaches `q * count`. Samples in the
    /// overflow bucket saturate to the last finite bound (a histogram
    /// cannot resolve beyond its range). Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    *self.bounds.last().unwrap()
                };
            }
        }
        *self.bounds.last().unwrap()
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Sorted label pairs; part of the interning key.
pub type Labels = Vec<(String, String)>;

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Read-only view of one metric at snapshot time (used by the exporters).
#[derive(Debug, Clone)]
pub enum MetricSnapshot {
    Counter(u64),
    Gauge(f64),
    Histogram {
        bounds: Vec<f64>,
        counts: Vec<u64>,
        sum: f64,
        count: u64,
    },
}

/// Interning registry. Handle lookups take a short-lived lock; updates on
/// the returned handles are pure atomics, so the hot path never contends.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<(String, Labels), Metric>>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> (String, Labels) {
    let mut l: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Histogram with the default latency buckets.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_with_bounds(name, labels, Histogram::latency().bounds.clone())
    }

    pub fn histogram_with_bounds(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: Vec<f64>,
    ) -> Arc<Histogram> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::with_bounds(bounds))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Sum of a counter across every label set it was registered under
    /// (convenience for assertions and reports).
    pub fn counter_value(&self, name: &str) -> u64 {
        let map = self.inner.lock().unwrap();
        map.iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, m)| match m {
                Metric::Counter(c) => c.get(),
                _ => 0,
            })
            .sum()
    }

    /// Point-in-time view of every metric, sorted by (name, labels).
    pub fn snapshot(&self) -> Vec<(String, Labels, MetricSnapshot)> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .map(|((name, labels), m)| {
                let snap = match m {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Metric::Histogram(h) => MetricSnapshot::Histogram {
                        bounds: h.bounds.clone(),
                        counts: h.bucket_counts(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                };
                (name.clone(), labels.clone(), snap)
            })
            .collect()
    }

    /// Prometheus text exposition of this registry alone; see
    /// [`crate::export::render_prometheus_multi`] to merge several.
    pub fn render_prometheus(&self) -> String {
        crate::export::render_prometheus_multi(&[self])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_intern_by_name_and_labels() {
        let r = Registry::new();
        r.counter("hits").add(2);
        r.counter("hits").inc();
        assert_eq!(r.counter("hits").get(), 3);
        r.counter_with("hits", &[("sed", "a")]).inc();
        assert_eq!(r.counter_with("hits", &[("sed", "a")]).get(), 1);
        assert_eq!(r.counter_value("hits"), 4);
        r.gauge("depth").set(2.5);
        assert_eq!(r.gauge("depth").get(), 2.5);
    }

    #[test]
    fn histogram_sum_and_count_track_observations() {
        let h = Histogram::with_bounds(vec![1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(10.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 12.0).abs() < 1e-12);
        assert_eq!(h.bucket_counts(), vec![1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("x").inc();
        let _ = r.gauge("x");
    }
}
