//! Metrics registry: atomic counters/gauges and fixed-bucket histograms
//! with quantile estimation, interned by (name, labels).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge storing an `f64` in atomic bits.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram. `bounds` are ascending bucket upper bounds; an
/// implicit overflow (`+Inf`) bucket catches everything above the last
/// bound, so `observe` never loses a sample (saturating behaviour).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` slots; the last is the overflow bucket.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Default latency buckets: 1-2.5-5 decades from 1 µs to 500 s — wide
    /// enough for both loopback TCP latencies and real solve times.
    pub fn latency() -> Self {
        // Literals, not computed powers: `2.5 * 10f64.powi(-6)` lands one
        // ulp off `2.5e-6` and renders as 0.0000024999999999999998 in the
        // `le` labels.
        Self::with_bounds(vec![
            1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
            2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
        ])
    }

    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // f64 sum via CAS loop on the bit pattern (std has no AtomicF64).
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Quantile estimate, `q` in [0, 1]: the upper bound of the first
    /// bucket whose cumulative count reaches `q * count`. Samples in the
    /// overflow bucket saturate to the last finite bound (a histogram
    /// cannot resolve beyond its range). Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    *self.bounds.last().unwrap()
                };
            }
        }
        *self.bounds.last().unwrap()
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merge a batch of per-bucket count deltas (last entry = overflow) and
    /// a sum delta into this histogram — the collector-side half of delta
    /// shipping. Bucket layouts must match; Err carries a description.
    pub fn absorb(&self, counts: &[u64], sum: f64) -> Result<(), String> {
        if counts.len() != self.counts.len() {
            return Err(format!(
                "histogram bucket mismatch: {} deltas vs {} buckets",
                counts.len(),
                self.counts.len()
            ));
        }
        let mut added = 0u64;
        for (slot, &d) in self.counts.iter().zip(counts) {
            slot.fetch_add(d, Ordering::Relaxed);
            added += d;
        }
        self.count.fetch_add(added, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + sum).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        Ok(())
    }
}

/// Sorted label pairs; part of the interning key.
pub type Labels = Vec<(String, String)>;

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Read-only view of one metric at snapshot time (used by the exporters).
///
/// Doubles as the unit of *delta shipping* (see
/// [`Registry::delta_since`]): a `Counter` delta carries the increment
/// since the last flush, a `Histogram` delta carries per-bucket count
/// increments and the sum increment, and a `Gauge` always carries its
/// current value (gauges are last-write-wins, not accumulated).
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    Counter(u64),
    Gauge(f64),
    Histogram {
        bounds: Vec<f64>,
        counts: Vec<u64>,
        sum: f64,
        count: u64,
    },
}

/// Interning registry. Handle lookups take a short-lived lock; updates on
/// the returned handles are pure atomics, so the hot path never contends.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<(String, Labels), Metric>>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> (String, Labels) {
    let mut l: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Histogram with the default latency buckets.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_with_bounds(name, labels, Histogram::latency().bounds.clone())
    }

    pub fn histogram_with_bounds(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: Vec<f64>,
    ) -> Arc<Histogram> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::with_bounds(bounds))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Sum of a counter across every label set it was registered under
    /// (convenience for assertions and reports).
    pub fn counter_value(&self, name: &str) -> u64 {
        let map = self.inner.lock().unwrap();
        map.iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, m)| match m {
                Metric::Counter(c) => c.get(),
                _ => 0,
            })
            .sum()
    }

    /// Point-in-time view of every metric, sorted by (name, labels).
    pub fn snapshot(&self) -> Vec<(String, Labels, MetricSnapshot)> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .map(|((name, labels), m)| {
                let snap = match m {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Metric::Histogram(h) => MetricSnapshot::Histogram {
                        bounds: h.bounds.clone(),
                        counts: h.bucket_counts(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                };
                (name.clone(), labels.clone(), snap)
            })
            .collect()
    }

    /// Prometheus text exposition of this registry alone; see
    /// [`crate::export::render_prometheus_multi`] to merge several.
    pub fn render_prometheus(&self) -> String {
        crate::export::render_prometheus_multi(&[self])
    }

    /// Apply one shipped metric (a delta or a gauge value) to this
    /// registry — the collector's merge step. Counters and histogram
    /// buckets *add* (so merged totals equal the sum over processes);
    /// gauges *overwrite* (last flush wins). A histogram whose bucket
    /// layout disagrees with an existing registration is rejected.
    pub fn apply(&self, name: &str, labels: &Labels, snap: &MetricSnapshot) -> Result<(), String> {
        let lref: Vec<(&str, &str)> = labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        match snap {
            MetricSnapshot::Counter(d) => {
                self.counter_with(name, &lref).add(*d);
                Ok(())
            }
            MetricSnapshot::Gauge(v) => {
                self.gauge_with(name, &lref).set(*v);
                Ok(())
            }
            MetricSnapshot::Histogram {
                bounds,
                counts,
                sum,
                ..
            } => {
                let h = self.histogram_with_bounds(name, &lref, bounds.clone());
                if h.bounds() != bounds.as_slice() {
                    return Err(format!(
                        "histogram {name}: bounds mismatch across processes"
                    ));
                }
                h.absorb(counts, *sum)
            }
        }
    }

    /// Everything that changed since `tracker` last saw this registry, as
    /// shippable deltas: counters and histograms as increments (entries
    /// with no change are omitted), gauges always at current value. The
    /// tracker is advanced, so repeated calls ship each increment once.
    pub fn delta_since(&self, tracker: &mut DeltaTracker) -> Vec<(String, Labels, MetricSnapshot)> {
        let mut out = Vec::new();
        for (name, labels, snap) in self.snapshot() {
            let k = (name.clone(), labels.clone());
            match snap {
                MetricSnapshot::Counter(cur) => {
                    let last = match tracker.last.get(&k) {
                        Some(MetricSnapshot::Counter(v)) => *v,
                        _ => 0,
                    };
                    if cur > last {
                        out.push((name, labels, MetricSnapshot::Counter(cur - last)));
                    }
                    tracker.last.insert(k, MetricSnapshot::Counter(cur));
                }
                MetricSnapshot::Gauge(v) => {
                    out.push((name, labels, MetricSnapshot::Gauge(v)));
                    tracker.last.insert(k, MetricSnapshot::Gauge(v));
                }
                MetricSnapshot::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    let (last_counts, last_sum, last_count) = match tracker.last.get(&k) {
                        Some(MetricSnapshot::Histogram {
                            counts: lc,
                            sum: ls,
                            count: ln,
                            ..
                        }) => (lc.clone(), *ls, *ln),
                        _ => (vec![0; counts.len()], 0.0, 0),
                    };
                    if count > last_count {
                        let dcounts: Vec<u64> = counts
                            .iter()
                            .zip(&last_counts)
                            .map(|(c, l)| c.saturating_sub(*l))
                            .collect();
                        out.push((
                            name,
                            labels,
                            MetricSnapshot::Histogram {
                                bounds: bounds.clone(),
                                counts: dcounts,
                                sum: sum - last_sum,
                                count: count - last_count,
                            },
                        ));
                    }
                    tracker.last.insert(
                        k,
                        MetricSnapshot::Histogram {
                            bounds,
                            counts,
                            sum,
                            count,
                        },
                    );
                }
            }
        }
        out
    }
}

/// Per-flusher memory of the last shipped cumulative values, so
/// [`Registry::delta_since`] ships every increment exactly once.
#[derive(Debug, Default)]
pub struct DeltaTracker {
    last: BTreeMap<(String, Labels), MetricSnapshot>,
}

impl DeltaTracker {
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_intern_by_name_and_labels() {
        let r = Registry::new();
        r.counter("hits").add(2);
        r.counter("hits").inc();
        assert_eq!(r.counter("hits").get(), 3);
        r.counter_with("hits", &[("sed", "a")]).inc();
        assert_eq!(r.counter_with("hits", &[("sed", "a")]).get(), 1);
        assert_eq!(r.counter_value("hits"), 4);
        r.gauge("depth").set(2.5);
        assert_eq!(r.gauge("depth").get(), 2.5);
    }

    #[test]
    fn histogram_sum_and_count_track_observations() {
        let h = Histogram::with_bounds(vec![1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(10.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 12.0).abs() < 1e-12);
        assert_eq!(h.bucket_counts(), vec![1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("x").inc();
        let _ = r.gauge("x");
    }

    #[test]
    fn delta_since_ships_each_increment_exactly_once() {
        let r = Registry::new();
        let mut t = DeltaTracker::new();
        r.counter("reqs").add(3);
        r.gauge("depth").set(2.0);
        r.histogram_with_bounds("lat", &[], vec![1.0, 2.0])
            .observe(0.5);

        let d1 = r.delta_since(&mut t);
        assert!(d1
            .iter()
            .any(|(n, _, s)| n == "reqs" && *s == MetricSnapshot::Counter(3)));
        assert!(d1
            .iter()
            .any(|(n, _, s)| n == "lat"
                && matches!(s, MetricSnapshot::Histogram { count: 1, counts, .. } if counts == &vec![1, 0, 0])));

        // Nothing changed: counters/histograms go quiet, gauges re-ship.
        let d2 = r.delta_since(&mut t);
        assert!(d2.iter().all(|(n, _, _)| n == "depth"));

        r.counter("reqs").add(2);
        let d3 = r.delta_since(&mut t);
        assert!(d3
            .iter()
            .any(|(n, _, s)| n == "reqs" && *s == MetricSnapshot::Counter(2)));
    }

    #[test]
    fn apply_merges_deltas_into_process_sums() {
        // Two "processes" flush into one collector registry; merged values
        // must equal the per-process sums (counters/histograms) or the last
        // write (gauges).
        let a = Registry::new();
        let b = Registry::new();
        let merged = Registry::new();
        a.counter_with("solves", &[("sed", "s0")]).add(4);
        b.counter_with("solves", &[("sed", "s1")]).add(6);
        a.gauge("queue").set(1.0);
        b.gauge("queue").set(7.0);
        a.histogram_with_bounds("lat", &[], vec![1.0, 2.0])
            .observe(0.5);
        b.histogram_with_bounds("lat", &[], vec![1.0, 2.0])
            .observe(1.5);
        b.histogram_with_bounds("lat", &[], vec![1.0, 2.0])
            .observe(9.0);

        for r in [&a, &b] {
            let mut t = DeltaTracker::new();
            for (name, labels, snap) in r.delta_since(&mut t) {
                merged.apply(&name, &labels, &snap).unwrap();
            }
        }
        assert_eq!(merged.counter_value("solves"), 10);
        assert_eq!(merged.gauge("queue").get(), 7.0);
        let h = merged.histogram_with_bounds("lat", &[], vec![1.0, 2.0]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket_counts(), vec![1, 1, 1]);
        assert!((h.sum() - 11.0).abs() < 1e-12);

        // A layout disagreement is an explicit error, not a silent merge.
        let bad = MetricSnapshot::Histogram {
            bounds: vec![5.0],
            counts: vec![1, 0],
            sum: 1.0,
            count: 1,
        };
        assert!(merged.apply("lat", &Labels::new(), &bad).is_err());
    }
}
