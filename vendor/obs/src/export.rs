//! Exporters: Prometheus text exposition and Chrome `trace_event` JSON.

use crate::metrics::{Labels, MetricSnapshot, Registry};
use crate::trace::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write;

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn label_str(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Merge several registries into one Prometheus text dump, grouped by
/// metric name (each SeD/agent/client keeps its own registry; label sets
/// distinguish them in the merged view).
pub fn render_prometheus_multi(registries: &[&Registry]) -> String {
    let mut by_name: BTreeMap<String, Vec<(Labels, MetricSnapshot)>> = BTreeMap::new();
    for reg in registries {
        for (name, labels, snap) in reg.snapshot() {
            by_name.entry(name).or_default().push((labels, snap));
        }
    }
    let mut out = String::new();
    for (name, entries) in &by_name {
        let kind = match entries[0].1 {
            MetricSnapshot::Counter(_) => "counter",
            MetricSnapshot::Gauge(_) => "gauge",
            MetricSnapshot::Histogram { .. } => "histogram",
        };
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for (labels, snap) in entries {
            match snap {
                MetricSnapshot::Counter(v) => {
                    let _ = writeln!(out, "{name}{} {v}", label_str(labels, None));
                }
                MetricSnapshot::Gauge(v) => {
                    let _ = writeln!(out, "{name}{} {}", label_str(labels, None), fmt_f64(*v));
                }
                MetricSnapshot::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cum += c;
                        let le = if i < bounds.len() {
                            fmt_f64(bounds[i])
                        } else {
                            "+Inf".to_string()
                        };
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cum}",
                            label_str(labels, Some(("le", &le)))
                        );
                    }
                    let ls = label_str(labels, None);
                    let _ = writeln!(out, "{name}_sum{ls} {}", fmt_f64(*sum));
                    let _ = writeln!(out, "{name}_count{ls} {count}");
                }
            }
        }
    }
    out
}

/// Render spans as Chrome `trace_event` JSON (open in `chrome://tracing`
/// or Perfetto). Each distinct resource becomes a named "thread"; spans are
/// complete (`ph: "X"`) events with microsecond timestamps, and trace/span
/// ids ride in `args` so a request can be followed across resources.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut tids: BTreeMap<&str, usize> = BTreeMap::new();
    for s in spans {
        let next = tids.len();
        tids.entry(s.resource.as_str()).or_insert(next);
    }
    let mut events = Vec::with_capacity(spans.len() + tids.len());
    for (resource, tid) in &tids {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            escape_json(resource)
        ));
    }
    for s in spans {
        let tid = tids[s.resource.as_str()];
        let ts = s.start_ns as f64 / 1e3;
        let dur = s.end_ns.saturating_sub(s.start_ns) as f64 / 1e3;
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"diet\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":{{\"trace\":{},\"span\":{},\"parent\":{}}}}}",
            escape_json(s.name),
            s.trace_id,
            s.span_id,
            s.parent
        ));
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    #[test]
    fn prometheus_merges_registries_and_renders_histograms() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter_with("requests_total", &[("who", "client")])
            .add(5);
        b.counter_with("requests_total", &[("who", "sed")]).add(7);
        let h = a.histogram_with_bounds("lat_seconds", &[], vec![0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let txt = render_prometheus_multi(&[&a, &b]);
        assert!(txt.contains("# TYPE requests_total counter"));
        assert!(txt.contains("requests_total{who=\"client\"} 5"));
        assert!(txt.contains("requests_total{who=\"sed\"} 7"));
        assert!(txt.contains("lat_seconds_bucket{le=\"0.1\"} 1"));
        assert!(txt.contains("lat_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(txt.contains("lat_seconds_count 3"));
        // Exactly one TYPE line per metric name even when merged.
        assert_eq!(txt.matches("# TYPE requests_total").count(), 1);
    }

    #[test]
    fn chrome_trace_emits_thread_names_and_events() {
        let t = Tracer::new(8);
        let trace = t.new_trace();
        t.span(trace, 0, "Finding", "agents").end();
        t.span(trace, 0, "Execution", "sed/0").end();
        let json = chrome_trace(&t.snapshot());
        assert!(json.contains("\"name\":\"Finding\""));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"name\":\"sed/0\""));
        assert!(json.contains(&format!("\"trace\":{trace}")));
    }
}
