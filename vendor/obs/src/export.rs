//! Exporters: Prometheus text exposition and Chrome `trace_event` JSON.

use crate::metrics::{Labels, MetricSnapshot, Registry};
use crate::trace::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write;

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn label_str(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Merge several registries into one Prometheus text dump, grouped by
/// metric name (each SeD/agent/client keeps its own registry; label sets
/// distinguish them in the merged view).
pub fn render_prometheus_multi(registries: &[&Registry]) -> String {
    let mut by_name: BTreeMap<String, Vec<(Labels, MetricSnapshot)>> = BTreeMap::new();
    for reg in registries {
        for (name, labels, snap) in reg.snapshot() {
            by_name.entry(name).or_default().push((labels, snap));
        }
    }
    let mut out = String::new();
    for (name, entries) in &by_name {
        let kind = match entries[0].1 {
            MetricSnapshot::Counter(_) => "counter",
            MetricSnapshot::Gauge(_) => "gauge",
            MetricSnapshot::Histogram { .. } => "histogram",
        };
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for (labels, snap) in entries {
            match snap {
                MetricSnapshot::Counter(v) => {
                    let _ = writeln!(out, "{name}{} {v}", label_str(labels, None));
                }
                MetricSnapshot::Gauge(v) => {
                    let _ = writeln!(out, "{name}{} {}", label_str(labels, None), fmt_f64(*v));
                }
                MetricSnapshot::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cum += c;
                        let le = if i < bounds.len() {
                            fmt_f64(bounds[i])
                        } else {
                            "+Inf".to_string()
                        };
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cum}",
                            label_str(labels, Some(("le", &le)))
                        );
                    }
                    let ls = label_str(labels, None);
                    let _ = writeln!(out, "{name}_sum{ls} {}", fmt_f64(*sum));
                    let _ = writeln!(out, "{name}_count{ls} {count}");
                }
            }
        }
    }
    out
}

/// Render spans as Chrome `trace_event` JSON (open in `chrome://tracing`
/// or Perfetto). Each distinct resource becomes a named "thread"; spans are
/// complete (`ph: "X"`) events with microsecond timestamps, and trace/span
/// ids ride in `args` so a request can be followed across resources.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut tids: BTreeMap<&str, usize> = BTreeMap::new();
    for s in spans {
        let next = tids.len();
        tids.entry(s.resource.as_str()).or_insert(next);
    }
    let mut events = Vec::with_capacity(spans.len() + tids.len());
    for (resource, tid) in &tids {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            escape_json(resource)
        ));
    }
    for s in spans {
        let tid = tids[s.resource.as_str()];
        let ts = s.start_ns as f64 / 1e3;
        let dur = s.end_ns.saturating_sub(s.start_ns) as f64 / 1e3;
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"diet\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":{{\"trace\":{},\"span\":{},\"parent\":{}}}}}",
            escape_json(s.name),
            s.trace_id,
            s.span_id,
            s.parent
        ));
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    #[test]
    fn prometheus_merges_registries_and_renders_histograms() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter_with("requests_total", &[("who", "client")])
            .add(5);
        b.counter_with("requests_total", &[("who", "sed")]).add(7);
        let h = a.histogram_with_bounds("lat_seconds", &[], vec![0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let txt = render_prometheus_multi(&[&a, &b]);
        assert!(txt.contains("# TYPE requests_total counter"));
        assert!(txt.contains("requests_total{who=\"client\"} 5"));
        assert!(txt.contains("requests_total{who=\"sed\"} 7"));
        assert!(txt.contains("lat_seconds_bucket{le=\"0.1\"} 1"));
        assert!(txt.contains("lat_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(txt.contains("lat_seconds_count 3"));
        // Exactly one TYPE line per metric name even when merged.
        assert_eq!(txt.matches("# TYPE requests_total").count(), 1);
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let r = Registry::new();
        r.counter_with("weird_total", &[("who", "a\\b\"c\nd")])
            .inc();
        let txt = render_prometheus_multi(&[&r]);
        // Backslash, quote and newline must all be escaped, in that order
        // of precedence (escaping the backslash first must not corrupt the
        // later escapes).
        assert!(
            txt.contains("weird_total{who=\"a\\\\b\\\"c\\nd\"} 1"),
            "escaped label missing from:\n{txt}"
        );
        assert!(!txt.contains('\r'));
        // The raw newline inside the value must not split the sample line.
        let sample_lines: Vec<&str> = txt.lines().filter(|l| l.contains("weird_total{")).collect();
        assert_eq!(sample_lines.len(), 1);
    }

    #[test]
    fn prometheus_output_is_deterministic_regardless_of_registration_order() {
        let forward = Registry::new();
        forward.counter_with("a_total", &[("x", "1")]).inc();
        forward.gauge("b_gauge").set(2.0);
        forward.counter_with("c_total", &[("x", "2")]).add(3);
        let reverse = Registry::new();
        reverse.counter_with("c_total", &[("x", "2")]).add(3);
        reverse.gauge("b_gauge").set(2.0);
        reverse.counter_with("a_total", &[("x", "1")]).inc();
        let t1 = render_prometheus_multi(&[&forward]);
        let t2 = render_prometheus_multi(&[&reverse]);
        assert_eq!(t1, t2, "output must not depend on registration order");
        let pos = |needle: &str| {
            t1.find(needle)
                .unwrap_or_else(|| panic!("missing {needle}"))
        };
        assert!(pos("# TYPE a_total") < pos("# TYPE b_gauge"));
        assert!(pos("# TYPE b_gauge") < pos("# TYPE c_total"));
    }

    #[test]
    fn histogram_quantiles_hold_under_concurrent_recording() {
        let r = std::sync::Arc::new(Registry::new());
        let h = r.histogram_with_bounds("work_seconds", &[], vec![1.0, 2.0, 4.0, 8.0, 16.0]);
        // 4 threads x 250 observations with a known distribution:
        // totals 500 @ le=1, 460 @ le=4, 32 @ le=8, 8 @ le=16.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for _ in 0..125 {
                        h.observe(0.5);
                    }
                    for _ in 0..115 {
                        h.observe(3.0);
                    }
                    for _ in 0..8 {
                        h.observe(7.0);
                    }
                    for _ in 0..2 {
                        h.observe(15.0);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.p50(), 1.0);
        assert_eq!(h.p95(), 4.0);
        assert_eq!(h.p99(), 8.0);
        // sum = 4 * (125*0.5 + 115*3 + 8*7 + 2*15) = 1974, exactly
        // representable so no observation may be lost to a race.
        assert_eq!(h.sum(), 1974.0);
        let txt = render_prometheus_multi(&[&r]);
        assert!(txt.contains("work_seconds_bucket{le=\"1.0\"} 500"));
        assert!(txt.contains("work_seconds_bucket{le=\"4.0\"} 960"));
        assert!(txt.contains("work_seconds_bucket{le=\"8.0\"} 992"));
        assert!(txt.contains("work_seconds_bucket{le=\"+Inf\"} 1000"));
        assert!(txt.contains("work_seconds_count 1000"));
    }

    #[test]
    fn chrome_trace_emits_thread_names_and_events() {
        let t = Tracer::new(8);
        let trace = t.new_trace();
        t.span(trace, 0, "Finding", "agents").end();
        t.span(trace, 0, "Execution", "sed/0").end();
        let json = chrome_trace(&t.snapshot());
        assert!(json.contains("\"name\":\"Finding\""));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"name\":\"sed/0\""));
        assert!(json.contains(&format!("\"trace\":{trace}")));
    }
}
