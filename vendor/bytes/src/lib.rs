//! Minimal offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an `Arc`-backed immutable byte slice with O(1) clone and
//! sub-slicing; [`BytesMut`] is a growable buffer that freezes into
//! [`Bytes`]. The [`Buf`]/[`BufMut`] traits cover the little-endian
//! accessors this workspace's codecs use.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Immutable, reference-counted byte slice.
///
/// Backed by `Arc<Vec<u8>>` (not `Arc<[u8]>`) so `Bytes::from(vec)` and
/// `BytesMut::freeze` take ownership of the vector's allocation in O(1)
/// instead of copying into a fresh slice allocation — the property the
/// zero-copy receive path relies on when it freezes a connection's read
/// buffer and hands out frame slices.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-slice sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    /// O(1): adopts the vector's allocation without copying.
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            start: 0,
            end,
            data: Arc::new(v),
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 64 {
            write!(f, "… ({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.inner.extend_from_slice(s);
    }

    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Read-side accessor trait: consuming little-endian reads.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn chunk(&self) -> &[u8];

    fn copy_to_bytes(&mut self, n: usize) -> Bytes;

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_i32_le(&mut self) -> i32
    where
        Self: Sized,
    {
        i32::from_le_bytes(self.take_array())
    }

    fn get_u32_le(&mut self) -> u32
    where
        Self: Sized,
    {
        u32::from_le_bytes(self.take_array())
    }

    fn get_i64_le(&mut self) -> i64
    where
        Self: Sized,
    {
        i64::from_le_bytes(self.take_array())
    }

    fn get_u64_le(&mut self) -> u64
    where
        Self: Sized,
    {
        u64::from_le_bytes(self.take_array())
    }

    fn get_f64_le(&mut self) -> f64
    where
        Self: Sized,
    {
        f64::from_le_bytes(self.take_array())
    }

    #[doc(hidden)]
    fn take_array<const N: usize>(&mut self) -> [u8; N]
    where
        Self: Sized,
    {
        let mut out = [0u8; N];
        out.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let out = self.slice(0..n);
        self.advance(n);
        out
    }
}

/// Write-side accessor trait: appending little-endian writes.
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.inner.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

/// An immutable UTF-8 string backed by [`Bytes`]: a `String` analog whose
/// clone is a refcount bump and whose construction from a decoded wire
/// frame is an O(1) slice of the receive buffer (UTF-8 validity is checked
/// once, at construction).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct ByteStr {
    bytes: Bytes,
}

impl ByteStr {
    pub fn new() -> Self {
        ByteStr::default()
    }

    /// Wrap already-received bytes without copying. Errors on invalid
    /// UTF-8; the bytes are returned untouched inside the error.
    pub fn from_utf8(bytes: Bytes) -> Result<Self, std::str::Utf8Error> {
        std::str::from_utf8(&bytes)?;
        Ok(ByteStr { bytes })
    }

    pub fn as_str(&self) -> &str {
        // Validity was established at construction; re-checking on every
        // access would put a UTF-8 scan on the hot path.
        unsafe { std::str::from_utf8_unchecked(&self.bytes) }
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The backing [`Bytes`] (shares storage).
    pub fn into_bytes(self) -> Bytes {
        self.bytes
    }

    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl Deref for ByteStr {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for ByteStr {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl From<String> for ByteStr {
    fn from(s: String) -> Self {
        ByteStr {
            bytes: Bytes::from(s.into_bytes()),
        }
    }
}

impl From<&str> for ByteStr {
    fn from(s: &str) -> Self {
        ByteStr {
            bytes: Bytes::from(s.as_bytes().to_vec()),
        }
    }
}

impl From<ByteStr> for String {
    fn from(s: ByteStr) -> Self {
        s.as_str().to_string()
    }
}

impl PartialEq<str> for ByteStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for ByteStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for ByteStr {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl std::fmt::Display for ByteStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::fmt::Debug for ByteStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_accessors() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_i64_le(-42);
        b.put_f64_le(1.5);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5);
        let s2 = s.slice(1..2);
        assert_eq!(&s2[..], &[3]);
    }

    #[test]
    fn copy_to_bytes_consumes() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.copy_to_bytes(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4]);
    }

    #[test]
    fn from_vec_is_zero_copy() {
        let v = vec![7u8; 128];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_slice().as_ptr(), ptr, "Vec allocation must be adopted");
        let s = b.slice(10..20);
        assert_eq!(s.as_slice().as_ptr(), unsafe { ptr.add(10) });
    }

    #[test]
    fn bytestr_validates_and_shares() {
        let b = Bytes::from(b"hello world".to_vec());
        let s = ByteStr::from_utf8(b.slice(0..5)).unwrap();
        assert_eq!(s, "hello");
        assert_eq!(s.len(), 5);
        assert_eq!(&*s, "hello");
        assert!(ByteStr::from_utf8(Bytes::from(vec![0xFF, 0xFE])).is_err());
        let owned: ByteStr = "grid".into();
        assert_eq!(String::from(owned.clone()), "grid");
        assert_eq!(owned, String::from("grid"));
        assert_eq!(format!("{owned}/{owned:?}"), "grid/\"grid\"");
    }
}
