//! Minimal offline stand-in for `serde_derive`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (no serializer
//! crate is linked), so the derives expand to nothing: the annotated type
//! compiles unchanged and the trait impls are never needed.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
