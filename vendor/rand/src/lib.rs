//! Minimal offline stand-in for the `rand` crate (0.10-style API).
//!
//! Provides `StdRng` (xoshiro256** seeded through splitmix64), the
//! `SeedableRng`/`RngCore`/`Rng`/`RngExt` traits, and `random::<T>()` for
//! the primitive types this workspace draws. Deterministic per seed.

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Marker-plus-convenience trait kept for API compatibility.
pub trait Rng: RngCore {}

impl<R: RngCore> Rng for R {}

/// Extension methods (`rng.random::<T>()`).
pub trait RngExt: RngCore {
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Uniform value in `[lo, hi)`.
    fn random_range(&mut self, range: std::ops::Range<f64>) -> f64
    where
        Self: Sized,
    {
        range.start + f64::random(self) * (range.end - range.start)
    }
}

impl<R: RngCore> RngExt for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from an RNG.
pub trait Random {
    fn random<R: RngCore>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Random for f32 {
    fn random<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Random for u64 {
    fn random<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Random for i64 {
    fn random<R: RngCore>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Random for i32 {
    fn random<R: RngCore>(rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Random for u8 {
    fn random<R: RngCore>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Random for usize {
    fn random<R: RngCore>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — fast, high-quality, deterministic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            StdRng {
                s: [
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
