//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Provides the `channel` module subset this workspace uses: MPMC
//! bounded/unbounded channels with blocking, timed, and non-blocking
//! receives, and disconnection detection on both ends.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    pub struct Sender<T>(Arc<Shared<T>>);

    pub struct Receiver<T>(Arc<Shared<T>>);

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if self.0.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match self.0.cap {
                    Some(cap) if q.len() >= cap => {
                        q = self
                            .0
                            .not_full
                            .wait_timeout(q, Duration::from_millis(50))
                            .unwrap_or_else(|e| e.into_inner())
                            .0;
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            self.0.not_empty.notify_one();
            Ok(())
        }

        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.0.cap {
                if q.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            q.push_back(value);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .0
                    .not_empty
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let wait = (deadline - now).min(Duration::from_millis(50));
                q = self
                    .0
                    .not_empty
                    .wait_timeout(q, wait)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if self.0.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.0.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.0.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn disconnect_is_detected() {
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert!(tx.send(1).is_err());
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<i32>();
            let r = rx.recv_timeout(Duration::from_millis(10));
            assert_eq!(r, Err(RecvTimeoutError::Timeout));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = bounded(2);
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
