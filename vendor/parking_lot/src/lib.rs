//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps the std synchronisation primitives and ignores poisoning, which is
//! the subset of parking_lot semantics this workspace relies on (locks that
//! never return `Result` and survive panicking holders).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
