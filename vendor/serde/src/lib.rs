//! Minimal offline stand-in for `serde`.
//!
//! Exposes `Serialize`/`Deserialize` as both marker traits and no-op derive
//! macros (the two share a name across the type and macro namespaces, as in
//! real serde). No serializer backend exists in this workspace, so the
//! traits carry no methods.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use crate::Serialize;
}
