//! Minimal offline stand-in for the `criterion` crate.
//!
//! Each `bench_function` runs its body a handful of times and prints a
//! rough per-iteration wall time — a smoke run that keeps `cargo bench`
//! working without the statistics machinery.

use std::time::Instant;

const WARMUP_ITERS: u32 = 1;
const MEASURE_ITERS: u32 = 5;

/// Per-benchmark timing harness handed to the closure.
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            std::hint::black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / MEASURE_ITERS as f64;
    }
}

fn report(name: &str, nanos: f64) {
    if nanos >= 1e9 {
        println!("bench {name:<50} {:>10.3} s/iter", nanos / 1e9);
    } else if nanos >= 1e6 {
        println!("bench {name:<50} {:>10.3} ms/iter", nanos / 1e6);
    } else if nanos >= 1e3 {
        println!("bench {name:<50} {:>10.3} us/iter", nanos / 1e3);
    } else {
        println!("bench {name:<50} {:>10.0} ns/iter", nanos);
    }
}

/// Top-level driver; one per `criterion_group!`.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        report(name.as_ref(), b.nanos_per_iter);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            prefix: name.into(),
        }
    }
}

/// Named group; benchmarks report as `group/name`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.prefix, name.as_ref()),
            b.nanos_per_iter,
        );
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(&mut self) {}
}

/// Re-export for code that imports `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
