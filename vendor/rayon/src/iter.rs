//! Indexed parallel-iterator facade.
//!
//! Everything the workspace drives through `par_iter`/`into_par_iter` is an
//! *indexed* source: a length plus the ability to visit the items of any
//! index sub-range in order. Terminal operations split `[0, len)` into the
//! deterministic chunk partition of [`crate::pool::run_chunked`], fold each
//! chunk sequentially, and recombine per-chunk results in ascending chunk
//! order — so `collect` preserves order exactly and `fold`/`reduce`/`sum`
//! are bitwise-identical at any thread count.
//!
//! Semantics audited against real rayon (divergences of the old sequential
//! stub, now fixed):
//!
//! * `fold(identity, op)` calls `identity()` once per chunk (rayon: once per
//!   split leaf) and yields one accumulator per chunk — callers must treat
//!   the accumulator count as unspecified, exactly as with real rayon. The
//!   old stub produced a single accumulator, which masked identity-reuse
//!   bugs at call sites.
//! * `enumerate()` yields *global* indices and is only available on exact-
//!   length pipelines (the [`ExactLen`] marker) — rayon likewise gates it on
//!   `IndexedParallelIterator`, so `filter().enumerate()` does not compile.
//! * `collect()` preserves source order even for `filter` pipelines (chunk
//!   order + in-chunk order), matching rayon's order guarantee.
//! * Closures must be `Fn + Sync` (not `FnMut`): they really do run
//!   concurrently now.

use crate::pool::run_chunked;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};

/// A splittable data source: a length plus in-order traversal of any index
/// sub-range.
#[allow(clippy::len_without_is_empty)]
pub trait IndexedSource: Sync {
    type Item: Send;

    fn len(&self) -> usize;

    /// Fold the items at indices `[start, end)`, in order, into `acc`.
    ///
    /// # Safety
    /// For sources that hand out `&mut` items or move items out by value,
    /// every index must be visited **at most once** across all calls. The
    /// terminal drivers uphold this by handing each chunk to exactly one
    /// executor.
    unsafe fn fold_range<A>(
        &self,
        start: usize,
        end: usize,
        acc: A,
        f: impl FnMut(A, Self::Item) -> A,
    ) -> A;
}

/// Marker: `len()` is the exact item count (no filtering), so global item
/// indices are meaningful. Required by [`ParIter::enumerate`].
pub trait ExactLen {}

/// The parallel iterator: a source plus chunk-size hints. The hints feed the
/// deterministic partition, so they affect performance *and* (for floating-
/// point reductions) the fixed combine order — but never vary with the
/// thread count.
pub struct ParIter<S> {
    src: S,
    min_len: usize,
    max_len: usize,
}

impl<S: IndexedSource> ParIter<S> {
    pub fn new(src: S) -> Self {
        ParIter {
            src,
            min_len: 0,
            max_len: 0,
        }
    }

    pub fn with_min_len(mut self, len: usize) -> Self {
        self.min_len = len;
        self
    }

    pub fn with_max_len(mut self, len: usize) -> Self {
        self.max_len = len;
        self
    }

    pub fn map<O, F>(self, f: F) -> ParIter<Map<S, F>>
    where
        F: Fn(S::Item) -> O + Sync,
        O: Send,
    {
        let hints = (self.min_len, self.max_len);
        ParIter {
            src: Map { src: self.src, f },
            min_len: hints.0,
            max_len: hints.1,
        }
    }

    pub fn filter<P>(self, p: P) -> ParIter<Filter<S, P>>
    where
        P: Fn(&S::Item) -> bool + Sync,
    {
        let hints = (self.min_len, self.max_len);
        ParIter {
            src: Filter { src: self.src, p },
            min_len: hints.0,
            max_len: hints.1,
        }
    }

    /// Pair each item with its global index. Only exact-length pipelines.
    pub fn enumerate(self) -> ParIter<Enumerate<S>>
    where
        S: ExactLen,
    {
        let hints = (self.min_len, self.max_len);
        ParIter {
            src: Enumerate { src: self.src },
            min_len: hints.0,
            max_len: hints.1,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync,
    {
        let src = self.src;
        run_chunked(src.len(), self.min_len, self.max_len, |a, b| {
            // SAFETY: run_chunked hands each chunk range to exactly one call.
            unsafe { src.fold_range(a, b, (), |(), x| f(x)) }
        });
    }

    /// Collect in source order: per-chunk vectors concatenated in ascending
    /// chunk order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<S::Item>,
    {
        let src = self.src;
        let chunks = run_chunked(src.len(), self.min_len, self.max_len, |a, b| {
            // SAFETY: as in for_each.
            unsafe {
                src.fold_range(a, b, Vec::new(), |mut v, x| {
                    v.push(x);
                    v
                })
            }
        });
        chunks.into_iter().flatten().collect()
    }

    /// Rayon's two-closure fold: one accumulator per chunk (identity called
    /// per chunk), yielded as a new parallel iterator in chunk order. Chain
    /// with [`ParIter::reduce`].
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<VecSource<T>>
    where
        T: Send,
        ID: Fn() -> T + Sync,
        F: Fn(T, S::Item) -> T + Sync,
    {
        let src = self.src;
        let accs = run_chunked(src.len(), self.min_len, self.max_len, |a, b| {
            // SAFETY: as in for_each.
            unsafe { src.fold_range(a, b, identity(), &fold_op) }
        });
        ParIter::new(VecSource::new(accs))
    }

    /// Rayon's identity-based reduce: chunks reduce independently, then the
    /// per-chunk results combine left-to-right in ascending chunk order
    /// (deterministic at any thread count). Returns `identity()` when empty.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> S::Item
    where
        ID: Fn() -> S::Item + Sync,
        OP: Fn(S::Item, S::Item) -> S::Item + Sync,
    {
        let src = self.src;
        let chunks = run_chunked(src.len(), self.min_len, self.max_len, |a, b| {
            // SAFETY: as in for_each.
            unsafe { src.fold_range(a, b, identity(), &op) }
        });
        chunks.into_iter().fold(identity(), &op)
    }

    /// Parallel sum with rayon's bounds (`Out` must sum both items and
    /// partial sums). Partial sums combine in ascending chunk order.
    pub fn sum<Out>(self) -> Out
    where
        Out: std::iter::Sum<S::Item> + std::iter::Sum<Out> + Send,
    {
        let src = self.src;
        let partials = run_chunked(src.len(), self.min_len, self.max_len, |a, b| {
            // SAFETY: as in for_each.
            let items = unsafe {
                src.fold_range(a, b, Vec::new(), |mut v, x| {
                    v.push(x);
                    v
                })
            };
            items.into_iter().sum::<Out>()
        });
        partials.into_iter().sum()
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

pub struct Map<S, F> {
    src: S,
    f: F,
}

impl<S, F, O> IndexedSource for Map<S, F>
where
    S: IndexedSource,
    F: Fn(S::Item) -> O + Sync,
    O: Send,
{
    type Item = O;

    fn len(&self) -> usize {
        self.src.len()
    }

    unsafe fn fold_range<A>(
        &self,
        start: usize,
        end: usize,
        acc: A,
        mut f: impl FnMut(A, O) -> A,
    ) -> A {
        self.src
            .fold_range(start, end, acc, |a, x| f(a, (self.f)(x)))
    }
}

impl<S: ExactLen, F> ExactLen for Map<S, F> {}

pub struct Filter<S, P> {
    src: S,
    p: P,
}

impl<S, P> IndexedSource for Filter<S, P>
where
    S: IndexedSource,
    P: Fn(&S::Item) -> bool + Sync,
{
    type Item = S::Item;

    /// Upper bound; chunks partition the *underlying* indices.
    fn len(&self) -> usize {
        self.src.len()
    }

    unsafe fn fold_range<A>(
        &self,
        start: usize,
        end: usize,
        acc: A,
        mut f: impl FnMut(A, S::Item) -> A,
    ) -> A {
        self.src.fold_range(
            start,
            end,
            acc,
            |a, x| {
                if (self.p)(&x) {
                    f(a, x)
                } else {
                    a
                }
            },
        )
    }
}

pub struct Enumerate<S> {
    src: S,
}

impl<S> IndexedSource for Enumerate<S>
where
    S: IndexedSource + ExactLen,
{
    type Item = (usize, S::Item);

    fn len(&self) -> usize {
        self.src.len()
    }

    unsafe fn fold_range<A>(
        &self,
        start: usize,
        end: usize,
        acc: A,
        mut f: impl FnMut(A, (usize, S::Item)) -> A,
    ) -> A {
        let mut idx = start;
        self.src.fold_range(start, end, acc, |a, x| {
            let r = f(a, (idx, x));
            idx += 1;
            r
        })
    }
}

impl<S: ExactLen> ExactLen for Enumerate<S> {}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedSource for SliceSource<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn fold_range<A>(
        &self,
        start: usize,
        end: usize,
        acc: A,
        f: impl FnMut(A, &'a T) -> A,
    ) -> A {
        self.slice[start..end].iter().fold(acc, f)
    }
}

impl<T> ExactLen for SliceSource<'_, T> {}

pub struct SliceMutSource<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: workers only touch disjoint index ranges (fold_range contract).
unsafe impl<T: Send> Send for SliceMutSource<'_, T> {}
unsafe impl<T: Send> Sync for SliceMutSource<'_, T> {}

impl<'a, T: Send> IndexedSource for SliceMutSource<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn fold_range<A>(
        &self,
        start: usize,
        end: usize,
        mut acc: A,
        mut f: impl FnMut(A, &'a mut T) -> A,
    ) -> A {
        for i in start..end {
            // SAFETY: caller guarantees [start, end) is visited only here.
            acc = f(acc, &mut *self.ptr.add(i));
        }
        acc
    }
}

impl<T> ExactLen for SliceMutSource<'_, T> {}

/// Mutable chunks of fixed size `chunk` (the trailing remainder is included
/// for `par_chunks_mut`, excluded for `par_chunks_exact_mut`).
pub struct ChunksMutSource<'a, T> {
    ptr: *mut T,
    total: usize,
    chunk: usize,
    n_chunks: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: as for SliceMutSource — chunk ranges are disjoint.
unsafe impl<T: Send> Send for ChunksMutSource<'_, T> {}
unsafe impl<T: Send> Sync for ChunksMutSource<'_, T> {}

impl<'a, T: Send> IndexedSource for ChunksMutSource<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.n_chunks
    }

    unsafe fn fold_range<A>(
        &self,
        start: usize,
        end: usize,
        mut acc: A,
        mut f: impl FnMut(A, &'a mut [T]) -> A,
    ) -> A {
        for c in start..end {
            let lo = c * self.chunk;
            let len = self.chunk.min(self.total - lo);
            // SAFETY: chunk c spans [lo, lo+len), disjoint from every other
            // chunk; caller guarantees each chunk index is visited once.
            acc = f(acc, std::slice::from_raw_parts_mut(self.ptr.add(lo), len));
        }
        acc
    }
}

impl<T> ExactLen for ChunksMutSource<'_, T> {}

/// Owns a `Vec` and moves items out by value, one index at a time.
pub struct VecSource<T> {
    ptr: *mut T,
    len: usize,
    cap: usize,
    /// Set once a terminal starts draining; afterwards `Drop` only frees the
    /// buffer (items were moved out; a mid-drive panic leaks the tail, which
    /// is safe).
    started: AtomicBool,
}

// SAFETY: items are moved out of disjoint index ranges.
unsafe impl<T: Send> Send for VecSource<T> {}
unsafe impl<T: Send> Sync for VecSource<T> {}

impl<T> VecSource<T> {
    pub fn new(v: Vec<T>) -> Self {
        let mut v = std::mem::ManuallyDrop::new(v);
        VecSource {
            ptr: v.as_mut_ptr(),
            len: v.len(),
            cap: v.capacity(),
            started: AtomicBool::new(false),
        }
    }
}

impl<T: Send> IndexedSource for VecSource<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn fold_range<A>(
        &self,
        start: usize,
        end: usize,
        mut acc: A,
        mut f: impl FnMut(A, T) -> A,
    ) -> A {
        self.started.store(true, Ordering::Release);
        for i in start..end {
            // SAFETY: each index is read at most once (fold_range contract),
            // so this move out of the buffer is unique.
            acc = f(acc, std::ptr::read(self.ptr.add(i)));
        }
        acc
    }
}

impl<T> ExactLen for VecSource<T> {}

impl<T> Drop for VecSource<T> {
    fn drop(&mut self) {
        let drained = self.started.load(Ordering::Acquire);
        let live = if drained { 0 } else { self.len };
        // SAFETY: reconstructs the original allocation; `live` items are
        // still owned by the buffer (none were moved out unless drained).
        unsafe {
            drop(Vec::from_raw_parts(self.ptr, live, self.cap));
        }
    }
}

pub struct RangeSource<T> {
    start: T,
    len: usize,
}

macro_rules! int_range_source {
    ($($t:ty),*) => {$(
        impl IndexedSource for RangeSource<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                self.len
            }

            unsafe fn fold_range<A>(
                &self,
                start: usize,
                end: usize,
                mut acc: A,
                mut f: impl FnMut(A, $t) -> A,
            ) -> A {
                for i in start..end {
                    acc = f(acc, self.start + i as $t);
                }
                acc
            }
        }

        impl ExactLen for RangeSource<$t> {}

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Source = RangeSource<$t>;

            fn into_par_iter(self) -> ParIter<RangeSource<$t>> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                ParIter::new(RangeSource {
                    start: self.start,
                    len,
                })
            }
        }
    )*};
}

int_range_source!(usize, u32, u64, i32, i64);

/// `into_par_iter()` entry point (ranges, owned vectors).
pub trait IntoParallelIterator {
    type Source: IndexedSource;

    fn into_par_iter(self) -> ParIter<Self::Source>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Source = VecSource<T>;

    fn into_par_iter(self) -> ParIter<VecSource<T>> {
        ParIter::new(VecSource::new(self))
    }
}

/// Slice-side entry points (`Vec` reaches these through deref).
pub trait ParallelSliceOps<T> {
    fn par_iter(&self) -> ParIter<SliceSource<'_, T>>
    where
        T: Sync;
    fn par_iter_mut(&mut self) -> ParIter<SliceMutSource<'_, T>>
    where
        T: Send;
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutSource<'_, T>>
    where
        T: Send;
    fn par_chunks_exact_mut(&mut self, size: usize) -> ParIter<ChunksMutSource<'_, T>>
    where
        T: Send;
}

impl<T> ParallelSliceOps<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceSource<'_, T>>
    where
        T: Sync,
    {
        ParIter::new(SliceSource { slice: self })
    }

    fn par_iter_mut(&mut self) -> ParIter<SliceMutSource<'_, T>>
    where
        T: Send,
    {
        ParIter::new(SliceMutSource {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        })
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutSource<'_, T>>
    where
        T: Send,
    {
        assert!(size > 0, "chunk size must be non-zero");
        ParIter::new(ChunksMutSource {
            ptr: self.as_mut_ptr(),
            total: self.len(),
            chunk: size,
            n_chunks: self.len().div_ceil(size),
            _marker: PhantomData,
        })
    }

    fn par_chunks_exact_mut(&mut self, size: usize) -> ParIter<ChunksMutSource<'_, T>>
    where
        T: Send,
    {
        assert!(size > 0, "chunk size must be non-zero");
        ParIter::new(ChunksMutSource {
            ptr: self.as_mut_ptr(),
            total: self.len() - self.len() % size,
            chunk: size,
            n_chunks: self.len() / size,
            _marker: PhantomData,
        })
    }
}
