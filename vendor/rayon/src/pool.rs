//! The global thread pool behind the parallel-iterator facade.
//!
//! Design (std-only):
//!
//! * A registry of detached worker threads, spawned lazily and parked on a
//!   condvar. `RAYON_NUM_THREADS` (read once) or the machine's available
//!   parallelism sets the default width; [`ThreadPool::install`] overrides it
//!   per call (the workers themselves are shared — a pool handle is just a
//!   requested width).
//! * One parallel region runs at a time (`broadcast_lock`); the calling
//!   thread always participates, so `install(1)` and nested parallelism run
//!   perfectly inline.
//! * Work distribution is a chunk-index race: the region's closure pulls
//!   chunk indices from an atomic counter until none remain.
//! * **Determinism**: the chunk partition in [`run_chunked`] is a function of
//!   `(len, min_len, max_len)` ONLY — never of the thread count — and chunk
//!   results are recombined in ascending chunk order. Any reduction built on
//!   it is therefore bitwise-identical at 1, 2, 4, … threads.
//!
//! Lifetime safety: a broadcast erases the job closure to `'static`, which is
//! sound because `broadcast` does not return (or unwind) until every worker
//! that claimed the job has finished running it.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Upper bound on chunks per parallel region. Part of the deterministic
/// partition function — never derived from the thread count.
pub(crate) const DEFAULT_MAX_CHUNKS: usize = 64;

thread_local! {
    /// True while this thread executes inside a parallel region (worker, or
    /// caller participating in its own broadcast). Nested parallel calls run
    /// inline — with the same chunk partition, hence the same results.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
    /// Per-thread width override installed by [`ThreadPool::install`]
    /// (0 = no override).
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

type Job = &'static (dyn Fn() + Sync);

struct JobState {
    /// Bumped once per broadcast; workers use it to detect new work.
    seq: u64,
    job: Option<Job>,
    /// Workers still allowed to claim the current job.
    claims_left: usize,
    /// Workers that claimed the job and have not finished it.
    running: usize,
    /// First panic payload raised by a worker while running the job.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Registry {
    state: Mutex<JobState>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Serialises broadcasts: one parallel region at a time.
    broadcast_lock: Mutex<()>,
    spawn_lock: Mutex<()>,
    spawned: AtomicUsize,
    default_threads: usize,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| {
        let default_threads = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Registry {
            state: Mutex::new(JobState {
                seq: 0,
                job: None,
                claims_left: 0,
                running: 0,
                panic: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            broadcast_lock: Mutex::new(()),
            spawn_lock: Mutex::new(()),
            spawned: AtomicUsize::new(0),
            default_threads,
        }
    })
}

impl Registry {
    /// Spawn detached workers until at least `want` exist.
    fn ensure_workers(&'static self, want: usize) {
        if self.spawned.load(Ordering::Acquire) >= want {
            return;
        }
        let _g = self.spawn_lock.lock().unwrap();
        let cur = self.spawned.load(Ordering::Acquire);
        for i in cur..want {
            std::thread::Builder::new()
                .name(format!("rayon-worker-{i}"))
                .spawn(move || worker_loop(self))
                .expect("failed to spawn rayon worker thread");
        }
        self.spawned.store(want.max(cur), Ordering::Release);
    }
}

fn worker_loop(reg: &'static Registry) {
    IN_PARALLEL.with(|c| c.set(true));
    let mut seen = 0u64;
    loop {
        let job: Job;
        {
            let mut st = reg.state.lock().unwrap();
            loop {
                if st.seq != seen {
                    seen = st.seq;
                    if st.claims_left > 0 {
                        st.claims_left -= 1;
                        job = st.job.expect("announced job missing");
                        break;
                    }
                    // This broadcast needs fewer helpers than exist; keep
                    // waiting for the next one.
                }
                st = reg.work_cv.wait(st).unwrap();
            }
        }
        let result = catch_unwind(AssertUnwindSafe(job));
        let mut st = reg.state.lock().unwrap();
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.running -= 1;
        if st.running == 0 {
            reg.done_cv.notify_all();
        }
    }
}

/// Run `f` on `helpers` worker threads concurrently with the calling thread.
/// Blocks until every claimed run of `f` has finished (even if one panics —
/// the payload is re-raised here after the region quiesces).
pub(crate) fn broadcast(helpers: usize, f: &(dyn Fn() + Sync)) {
    if helpers == 0 {
        f();
        return;
    }
    let reg = registry();
    reg.ensure_workers(helpers);
    let serial = reg.broadcast_lock.lock().unwrap();
    // SAFETY: `f` outlives its use — this function waits for `running == 0`
    // (every claimed execution finished) before returning or unwinding.
    let job: Job = unsafe { std::mem::transmute::<&(dyn Fn() + Sync), Job>(f) };
    {
        let mut st = reg.state.lock().unwrap();
        st.seq += 1;
        st.job = Some(job);
        st.claims_left = helpers;
        st.running = helpers;
        reg.work_cv.notify_all();
    }
    IN_PARALLEL.with(|c| c.set(true));
    let mine = catch_unwind(AssertUnwindSafe(f));
    IN_PARALLEL.with(|c| c.set(false));
    let worker_panic = {
        let mut st = reg.state.lock().unwrap();
        while st.running > 0 {
            st = reg.done_cv.wait(st).unwrap();
        }
        st.job = None;
        st.panic.take()
    };
    drop(serial);
    if let Err(payload) = mine {
        resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

/// Deterministic chunk partition: `(chunk_size, n_chunks)` from the length
/// and the caller's min/max hints alone.
pub(crate) fn partition(len: usize, min_len: usize, max_len: usize) -> (usize, usize) {
    let mut size = len.div_ceil(DEFAULT_MAX_CHUNKS).max(min_len).max(1);
    if max_len > 0 && max_len < size {
        size = max_len.max(1);
    }
    (size, len.div_ceil(size))
}

fn in_parallel() -> bool {
    IN_PARALLEL.with(|c| c.get())
}

fn effective_threads() -> usize {
    let over = THREAD_OVERRIDE.with(|c| c.get());
    if over > 0 {
        over
    } else {
        registry().default_threads
    }
}

/// Number of threads a parallel region started now would use.
pub fn current_num_threads() -> usize {
    effective_threads().max(1)
}

/// Split `[0, len)` into deterministic chunks and run `chunk_fn(start, end)`
/// over them on the pool, returning the per-chunk results **in ascending
/// chunk order** regardless of which thread computed what.
pub(crate) fn run_chunked<R: Send>(
    len: usize,
    min_len: usize,
    max_len: usize,
    chunk_fn: impl Fn(usize, usize) -> R + Sync,
) -> Vec<R> {
    if len == 0 {
        return Vec::new();
    }
    let (size, n_chunks) = partition(len, min_len, max_len);
    let threads = if in_parallel() {
        1
    } else {
        effective_threads()
    };
    let helpers = threads.saturating_sub(1).min(n_chunks.saturating_sub(1));
    if helpers == 0 {
        // Inline path: identical chunk partition and combine order, so the
        // results are bitwise-identical to any multi-threaded run.
        return (0..n_chunks)
            .map(|c| chunk_fn(c * size, ((c + 1) * size).min(len)))
            .collect();
    }
    let counter = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n_chunks));
    let work = || loop {
        let c = counter.fetch_add(1, Ordering::Relaxed);
        if c >= n_chunks {
            break;
        }
        let r = chunk_fn(c * size, ((c + 1) * size).min(len));
        results.lock().unwrap().push((c, r));
    };
    broadcast(helpers, &work);
    let mut v = results.into_inner().unwrap();
    v.sort_unstable_by_key(|&(c, _)| c);
    v.into_iter().map(|(_, r)| r).collect()
}

/// Error type mirroring rayon's builder API (construction cannot fail here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Request a specific width; 0 means "use the global default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle requesting a parallelism width. Workers are shared globally; the
/// handle only scopes how many of them a region may use.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's width as the thread-count override.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let prev = THREAD_OVERRIDE.with(|c| c.get());
        let _restore = Restore(prev);
        THREAD_OVERRIDE.with(|c| c.set(self.num_threads));
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }
}
