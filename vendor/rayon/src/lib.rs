//! Minimal offline stand-in for the `rayon` crate.
//!
//! Exposes the parallel-iterator API surface this workspace uses —
//! `par_iter`, `par_iter_mut`, `into_par_iter`, `par_chunks_exact_mut`, and
//! the `fold`/`reduce`/`map`/`for_each`/`collect` adapters — executed
//! sequentially. Numerically identical results, no thread pool.

/// Wrapper that carries rayon's adapter semantics over a std iterator.
pub struct ParIter<I>(pub I);

impl<I: Iterator> ParIter<I> {
    pub fn map<O, F>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> O,
    {
        ParIter(self.0.map(f))
    }

    pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParIter(self.0.filter(f))
    }

    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.0.for_each(f)
    }

    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.0.collect()
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.0.sum()
    }

    /// Rayon's two-closure fold: yields per-"thread" accumulators — exactly
    /// one here. Chain with [`ParIter::reduce`] as in real rayon.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        let acc = self.0.fold(identity(), fold_op);
        ParIter(std::iter::once(acc))
    }

    /// Rayon's identity-based reduce.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }

    pub fn with_max_len(self, _len: usize) -> Self {
        self
    }
}

/// `into_par_iter()` for anything iterable (ranges, vectors, ...).
pub trait IntoParallelIterator {
    type Iter: Iterator;

    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Iter = T::IntoIter;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// Slice-side entry points (`Vec` reaches these through deref).
pub trait ParallelSliceOps<T> {
    fn par_iter<'a>(&'a self) -> ParIter<std::slice::Iter<'a, T>>;
    fn par_iter_mut<'a>(&'a mut self) -> ParIter<std::slice::IterMut<'a, T>>;
    fn par_chunks_mut<'a>(&'a mut self, size: usize) -> ParIter<std::slice::ChunksMut<'a, T>>;
    fn par_chunks_exact_mut<'a>(
        &'a mut self,
        size: usize,
    ) -> ParIter<std::slice::ChunksExactMut<'a, T>>;
}

impl<T> ParallelSliceOps<T> for [T] {
    fn par_iter<'a>(&'a self) -> ParIter<std::slice::Iter<'a, T>> {
        ParIter(self.iter())
    }

    fn par_iter_mut<'a>(&'a mut self) -> ParIter<std::slice::IterMut<'a, T>> {
        ParIter(self.iter_mut())
    }

    fn par_chunks_mut<'a>(&'a mut self, size: usize) -> ParIter<std::slice::ChunksMut<'a, T>> {
        ParIter(self.chunks_mut(size))
    }

    fn par_chunks_exact_mut<'a>(
        &'a mut self,
        size: usize,
    ) -> ParIter<std::slice::ChunksExactMut<'a, T>> {
        ParIter(self.chunks_exact_mut(size))
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSliceOps};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn fold_reduce_matches_sequential() {
        let total = (0..100usize)
            .into_par_iter()
            .fold(|| 0usize, |acc, x| acc + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    #[test]
    fn slice_adapters() {
        let mut v = vec![1, 2, 3, 4];
        v.par_iter_mut().for_each(|x| *x *= 2);
        assert_eq!(v, vec![2, 4, 6, 8]);
        let doubled: Vec<i32> = v.par_iter().map(|x| x + 1).collect();
        assert_eq!(doubled, vec![3, 5, 7, 9]);
        v.par_chunks_exact_mut(2).for_each(|c| c.swap(0, 1));
        assert_eq!(v, vec![4, 2, 8, 6]);
    }

    #[test]
    fn reduce_with_identity() {
        let m = [1.0f64, 5.0, 3.0]
            .par_iter()
            .map(|x| *x)
            .reduce(|| 0.0, f64::max);
        assert_eq!(m, 5.0);
    }
}
