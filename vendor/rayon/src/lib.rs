//! Offline stand-in for the `rayon` crate — with a **real** thread pool.
//!
//! Exposes the parallel-iterator API surface this workspace uses —
//! `par_iter`, `par_iter_mut`, `into_par_iter`, `par_chunks_mut`,
//! `par_chunks_exact_mut`, and the `map`/`filter`/`enumerate`/`for_each`/
//! `collect`/`sum`/`fold`/`reduce` adapters — executed concurrently on a
//! global pool of std threads ([`pool`]), plus the `ThreadPoolBuilder` /
//! `ThreadPool::install` API for scoping a parallelism width.
//!
//! `RAYON_NUM_THREADS` (read once, at first use) or the machine's available
//! parallelism sets the default width.
//!
//! **Determinism guarantee** (stronger than real rayon): every operation,
//! including floating-point `fold`/`reduce`/`sum`, produces bitwise-identical
//! results at any thread count, because work is split by a chunk partition
//! that depends only on the input length (and `with_min_len`/`with_max_len`
//! hints) and per-chunk results recombine in a fixed order. See
//! [`iter`] for the audited semantics relative to real rayon.

pub mod iter;
pub mod pool;

pub use iter::{IntoParallelIterator, ParIter, ParallelSliceOps};
pub use pool::{current_num_threads, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParIter, ParallelSliceOps};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn fold_reduce_matches_sequential() {
        let total = (0..100usize)
            .into_par_iter()
            .fold(|| 0usize, |acc, x| acc + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    #[test]
    fn slice_adapters() {
        let mut v = vec![1, 2, 3, 4];
        v.par_iter_mut().for_each(|x| *x *= 2);
        assert_eq!(v, vec![2, 4, 6, 8]);
        let doubled: Vec<i32> = v.par_iter().map(|x| x + 1).collect();
        assert_eq!(doubled, vec![3, 5, 7, 9]);
        v.par_chunks_exact_mut(2).for_each(|c| c.swap(0, 1));
        assert_eq!(v, vec![4, 2, 8, 6]);
    }

    #[test]
    fn reduce_with_identity() {
        let m = [1.0f64, 5.0, 3.0]
            .par_iter()
            .map(|x| *x)
            .reduce(|| 0.0, f64::max);
        assert_eq!(m, 5.0);
    }
}
