//! Adapter-semantics audit against real rayon, exercised at real parallelism.
//!
//! These tests pin the behaviours call sites rely on now that execution is
//! genuinely concurrent: `collect` order, `enumerate` global indices,
//! per-chunk `fold` identities, and bitwise-identical floating-point
//! reductions at every thread count.

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use std::sync::atomic::{AtomicUsize, Ordering};

fn at_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .unwrap()
        .install(f)
}

#[test]
fn collect_preserves_order_under_parallelism() {
    for threads in [1, 2, 4, 8] {
        let v: Vec<usize> = at_threads(threads, || {
            (0..10_000usize).into_par_iter().map(|i| i * 3).collect()
        });
        assert_eq!(v.len(), 10_000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 3, "order broken at {threads} threads");
        }
    }
}

#[test]
fn enumerate_yields_global_indices() {
    for threads in [1, 4] {
        at_threads(threads, || {
            let mut v = vec![0u64; 5000];
            v.par_iter_mut()
                .enumerate()
                .for_each(|(i, x)| *x = i as u64);
            for (i, x) in v.iter().enumerate() {
                assert_eq!(*x, i as u64);
            }
        });
    }
}

#[test]
fn fold_identity_is_fresh_per_chunk() {
    // Each chunk must get its own accumulator: if the identity value were
    // reused across chunks the histogram would double-count.
    let calls = AtomicUsize::new(0);
    let hist = at_threads(4, || {
        (0..4096usize)
            .into_par_iter()
            .fold(
                || {
                    calls.fetch_add(1, Ordering::Relaxed);
                    vec![0u64; 4]
                },
                |mut acc, i| {
                    acc[i % 4] += 1;
                    acc
                },
            )
            .reduce(
                || vec![0u64; 4],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += *y;
                    }
                    a
                },
            )
    });
    assert_eq!(hist, vec![1024; 4]);
    assert!(calls.load(Ordering::Relaxed) >= 1, "identity never called");
}

#[test]
fn float_reductions_bitwise_identical_across_thread_counts() {
    let data: Vec<f64> = (0..100_000)
        .map(|i| ((i * 2654435761u64 % 1000) as f64 - 500.0) * 1e-3)
        .collect();
    let run = |threads| {
        at_threads(threads, || {
            data.par_iter()
                .fold(|| 0.0f64, |a, x| a + x * x)
                .reduce(|| 0.0, |a, b| a + b)
        })
    };
    let base = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            base.to_bits(),
            run(threads).to_bits(),
            "nondeterministic sum at {threads} threads"
        );
    }
}

#[test]
fn filter_collect_keeps_source_order() {
    let v: Vec<usize> = at_threads(4, || {
        (0..10_000usize)
            .into_par_iter()
            .filter(|x| x % 7 == 0)
            .collect()
    });
    let expect: Vec<usize> = (0..10_000).filter(|x| x % 7 == 0).collect();
    assert_eq!(v, expect);
}

#[test]
fn reduce_on_empty_returns_identity() {
    let r = at_threads(4, || {
        (0..0usize).into_par_iter().reduce(|| 42, |a, b| a + b)
    });
    assert_eq!(r, 42);
}

#[test]
fn par_chunks_mut_covers_remainder() {
    let mut v = vec![1u32; 10];
    at_threads(4, || {
        v.par_chunks_mut(4).for_each(|c| {
            for x in c {
                *x += 1;
            }
        });
    });
    assert!(v.iter().all(|&x| x == 2), "remainder chunk skipped: {v:?}");
}

#[test]
fn par_chunks_exact_mut_skips_remainder() {
    let mut v = [1u32; 10];
    at_threads(4, || {
        v.par_chunks_exact_mut(4).for_each(|c| {
            for x in c {
                *x += 1;
            }
        });
    });
    assert_eq!(&v[..8], &[2; 8]);
    assert_eq!(&v[8..], &[1; 2], "exact chunks must skip the remainder");
}

#[test]
fn sum_matches_sequential_for_integers() {
    let v: Vec<u64> = (0..10_000).collect();
    let total: u64 = at_threads(4, || v.par_iter().map(|x| *x).sum());
    assert_eq!(total, 9999 * 10_000 / 2);
}

#[test]
fn install_overrides_thread_count() {
    let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
    let inside = pool.install(rayon::current_num_threads);
    assert_eq!(inside, 3);
}

#[test]
fn nested_parallelism_runs_inline_without_deadlock() {
    let total = at_threads(4, || {
        (0..64usize)
            .into_par_iter()
            .map(|i| {
                // Nested region: must not deadlock, must stay deterministic.
                (0..100usize)
                    .into_par_iter()
                    .map(|j| i * j)
                    .reduce(|| 0, |a, b| a + b)
            })
            .reduce(|| 0, |a, b| a + b)
    });
    let expect: usize = (0..64)
        .map(|i| (0..100).map(|j| i * j).sum::<usize>())
        .sum();
    assert_eq!(total, expect);
}

#[test]
fn worker_panic_propagates_to_caller() {
    let caught = std::panic::catch_unwind(|| {
        at_threads(4, || {
            (0..1000usize).into_par_iter().for_each(|i| {
                if i == 777 {
                    panic!("boom at {i}");
                }
            });
        })
    });
    assert!(caught.is_err(), "panic in a parallel task must propagate");
    // The pool must still be usable afterwards.
    let v: Vec<usize> = at_threads(4, || (0..100usize).into_par_iter().collect());
    assert_eq!(v.len(), 100);
}

#[test]
fn into_par_iter_vec_moves_items() {
    let v: Vec<String> = (0..500).map(|i| format!("s{i}")).collect();
    let lens = at_threads(4, || {
        v.into_par_iter()
            .map(|s| s.len())
            .reduce(|| 0, |a, b| a + b)
    });
    let expect: usize = (0..500).map(|i| format!("s{i}").len()).sum();
    assert_eq!(lens, expect);
}
