//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`/`boxed`, range and
//! regex-subset string strategies, tuples, `prop::collection::{vec,
//! btree_map}`, `prop::option::of`, `any::<T>()`, and the `proptest!`,
//! `prop_assert*`, `prop_assume!`, `prop_oneof!` macros. Generation is
//! deterministic per case index; failing inputs are re-run verbatim on the
//! next `cargo test`, but there is no shrinking.

use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 stream used for value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Test-case plumbing
// ---------------------------------------------------------------------------

/// Outcome of one generated case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure — aborts the whole property.
    Fail(String),
    /// `prop_assume!` rejection — the case is discarded and regenerated.
    Reject(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives one property: generates `config.cases` accepted inputs and runs the
/// body on each. Panics (failing the `#[test]`) on the first `Fail`.
pub fn run_proptest<S: Strategy>(
    config: &ProptestConfig,
    strategy: &S,
    test: impl Fn(S::Value) -> TestCaseResult,
) {
    let mut stream = TestRng::new(0x0C05_F0C0_5F0C_05F0);
    let mut accepted = 0u32;
    let mut rejects = 0u64;
    while accepted < config.cases {
        let case_seed = stream.next_u64();
        let mut rng = TestRng::new(case_seed);
        let value = strategy.generate(&mut rng);
        match test(value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects < 65_536,
                    "proptest: too many rejected cases ({rejects}) — weaken prop_assume!"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case #{accepted} (seed {case_seed:#x}) {msg}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values. Object-safe: combinators require `Sized`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `strategy.prop_flat_map(f)`.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

/// `any::<T>()` — full-domain generation for primitives.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        ((rng.unit_f64() - 0.5) * 2e6) as f32
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// String strategies: regex subset
// ---------------------------------------------------------------------------

// Pattern grammar: a sequence of atoms, each optionally quantified.
//   atom       := '[' class ']' | '.' | literal-char
//   class      := (char | char '-' char)+      ('-' first/last is literal)
//   quantifier := '*' | '{n}' | '{m,n}'        (default exactly one)
// '.' and '*' draw from printable ASCII; '*' means 0..=8 repetitions.

struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                    + i;
                let body = &chars[i + 1..close];
                i = close + 1;
                let mut set = Vec::new();
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        for c in body[j]..=body[j + 2] {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(body[j]);
                        j += 1;
                    }
                }
                set
            }
            '.' => {
                i += 1;
                (0x20u8..=0x7E).map(|b| b as char).collect()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n: usize = spec.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

// ---------------------------------------------------------------------------
// Collections and Option
// ---------------------------------------------------------------------------

/// Size arguments accepted by collection strategies: `n` or `lo..hi`.
pub trait IntoSizeRange {
    fn bounds(&self) -> (usize, usize); // inclusive lo, exclusive hi
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty collection size range");
        (self.start, self.end)
    }
}

pub mod collection {
    use super::{IntoSizeRange, Strategy, TestRng};
    use std::collections::BTreeMap;

    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { elem, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        val: V,
        lo: usize,
        hi: usize,
    }

    pub fn btree_map<K, V>(key: K, val: V, size: impl IntoSizeRange) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        let (lo, hi) = size.bounds();
        BTreeMapStrategy { key, val, lo, hi }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
            let mut out = BTreeMap::new();
            // Key collisions shrink the map below target; retry a bounded
            // number of times, then accept whatever landed.
            for _ in 0..target.max(1) * 16 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.val.generate(rng));
            }
            out
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, like upstream's default.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`",
                l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`",
                l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            $crate::run_proptest(&__config, &__strategy, |__values| {
                let ($($arg,)+) = __values;
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

// ---------------------------------------------------------------------------
// Prelude
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let s = "[a-z]{1,20}".generate(&mut rng);
            assert!((1..=20).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = "[a-zA-Z][a-zA-Z0-9_]{0,30}".generate(&mut rng);
            assert!(t.chars().next().unwrap().is_ascii_alphabetic());

            let u = "[a-z./_-]{0,40}".generate(&mut rng);
            assert!(u
                .chars()
                .all(|c| c.is_ascii_lowercase() || "./_-".contains(c)));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..1000 {
            let x = (-5i32..7).generate(&mut rng);
            assert!((-5..7).contains(&x));
            let f = (-1e300f64..1e300).generate(&mut rng);
            assert!(f.is_finite() && (-1e300..1e300).contains(&f));
        }
    }

    #[test]
    fn collection_sizes() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..100 {
            let v = prop::collection::vec(0u8..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let exact = prop::collection::vec(any::<u8>(), 16usize).generate(&mut rng);
            assert_eq!(exact.len(), 16);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro machinery itself: patterns, tuples, assume, asserts.
        #[test]
        fn macro_roundtrip(a in 1u32..100, (x, y) in (0.0f64..1.0, 0.0f64..1.0), s in "[a-z]{2,4}") {
            prop_assume!(a != 13);
            prop_assert!((1..100).contains(&a));
            prop_assert!((0.0..1.0).contains(&x), "x out of range: {x}");
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert_ne!(y, 2.0);
        }

        #[test]
        fn oneof_covers_arms(v in prop_oneof![Just(0u8), Just(1u8), 2u8..5]) {
            prop_assert!(v < 5);
        }
    }
}
