//! Soak test for the pipelined, multiplexed serving path: ≥64 concurrent
//! callers share one multiplexed connection per SeD, a SeD is killed in the
//! middle of the run, and every caller must still get *its own* reply —
//! zero lost requests, zero mis-correlated replies.
//!
//! Run at `RAYON_NUM_THREADS=1` and `4` by the CI matrix; the serving path
//! itself is plain OS threads, so the sweep guards against width-dependent
//! scheduling assumptions leaking into the transport.

use cosmogrid::services::serve_sed_over_tcp;
use diet_core::agent::{AgentNode, HeartbeatMonitor, MasterAgent};
use diet_core::client::{DietClient, RetryPolicy};
use diet_core::data::{DietValue, Persistence};
use diet_core::profile::{ArgTag, Profile, ProfileDesc};
use diet_core::sched::RoundRobin;
use diet_core::sed::{SedConfig, SedHandle, ServiceTable, SolveFn};
use diet_core::transport::TcpSedPool;
use std::sync::Arc;
use std::time::Duration;

const CALLERS: usize = 64;
const CALLS_PER_CALLER: usize = 2;

/// An injective transform of the input: if replies were ever routed to the
/// wrong waiter, the caller's output check below would catch it.
fn expected(x: i32) -> i32 {
    x.wrapping_mul(31).wrapping_add(7)
}

/// `mark31`: OUT(1) = 31·IN(0) + 7, instant turnaround. The full path —
/// codec, socket, admission, SeD queue, solve, correlated reply — is
/// exercised while keeping the solve itself negligible, so the test
/// saturates the *serving* layer, not the simulator.
fn mark_table() -> ServiceTable {
    let mut d = ProfileDesc::alloc("mark31", 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    d.set_arg(1, ArgTag::Scalar).unwrap();
    let solve: SolveFn = Arc::new(|p: &mut Profile| {
        let x = p.get_i32(0)?;
        p.set(1, DietValue::ScalarI32(expected(x)), Persistence::Volatile)?;
        Ok(0)
    });
    let mut t = ServiceTable::init(1);
    t.add(d, solve).unwrap();
    t
}

fn mark_profile(x: i32) -> Profile {
    let mut d = ProfileDesc::alloc("mark31", 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    d.set_arg(1, ArgTag::Scalar).unwrap();
    let mut p = Profile::alloc(&d);
    p.set(0, DietValue::ScalarI32(x), Persistence::Volatile)
        .unwrap();
    p
}

#[test]
fn pipelined_soak_with_mid_run_kill_loses_and_miscorrelates_nothing() {
    // Two SeDs behind real TCP servers; one dies mid-run.
    let seds: Vec<Arc<SedHandle>> = (0..2)
        .map(|i| SedHandle::spawn(SedConfig::new(&format!("tp/{i}"), 1.0), mark_table()))
        .collect();
    let servers: Vec<_> = seds
        .iter()
        .map(|s| serve_sed_over_tcp(s.clone()).expect("bind"))
        .collect();

    let pool = Arc::new(TcpSedPool::new());
    for (sed, srv) in seds.iter().zip(&servers) {
        pool.register(&sed.config.label, srv.local_addr);
    }

    let la = AgentNode::leaf("LA", seds.clone());
    let ma = MasterAgent::new("MA", vec![la], Arc::new(RoundRobin::new()));
    let monitor = HeartbeatMonitor::spawn(
        ma.clone(),
        Duration::from_millis(25),
        Duration::from_millis(200),
        2,
    );
    let client = Arc::new(DietClient::initialize(ma.clone()));

    // The victim's worker crashes while holding its 20th request. The
    // serving loop severs the connection, which poisons every waiter
    // multiplexed onto it — all of them must resubmit and still succeed.
    let victim = seds[1].clone();
    victim.faults().kill_at_request(20);

    let policy = RetryPolicy {
        attempt_timeout: Duration::from_secs(20),
        max_retries: 4,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        jitter: 0.5,
    };

    let handles: Vec<_> = (0..CALLERS)
        .map(|i| {
            let client = client.clone();
            let pool = pool.clone();
            std::thread::spawn(move || {
                for j in 0..CALLS_PER_CALLER {
                    let x = (i * CALLS_PER_CALLER + j) as i32;
                    let (out, _) = client
                        .call_over_tcp(&pool, mark_profile(x), &policy)
                        .unwrap_or_else(|e| panic!("caller {i} call {j} lost: {e}"));
                    // Correlation: the reply must be the one computed from
                    // OUR input, not any of the other 127 in flight.
                    assert_eq!(
                        out.get_i32(1).unwrap(),
                        expected(x),
                        "caller {i} call {j} got someone else's reply"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let total = CALLERS * CALLS_PER_CALLER;
    assert_eq!(client.history().len(), total);
    let cm = client.metrics();
    assert_eq!(cm.counter_value("diet_client_requests_total"), total as u64);
    assert_eq!(cm.counter_value("diet_client_failures_total"), 0);

    // Pipelining evidence: the callers shared per-label multiplexed
    // connections instead of dialing per request. Budget: one dial per
    // label plus a handful of redials after the crash severed tp/1's
    // connection (concurrent callers may race to redial a dead mux).
    assert!(
        pool.dials() <= 8,
        "expected shared mux connections, saw {} dials for {total} requests",
        pool.dials()
    );
    // And the surviving connection really carried many requests at once.
    let peak = seds
        .iter()
        .map(|s| pool.peak_inflight(&s.config.label))
        .max()
        .unwrap();
    assert!(
        peak >= 4,
        "expected >=4 overlapping in-flight requests on one connection, saw {peak}"
    );

    // The dead SeD was noticed and routed around.
    assert!(ma.deregistered().contains(&"tp/1".to_string()));
    assert!(!victim.is_alive());

    monitor.stop();
    for srv in &servers {
        srv.stop();
    }
    seds[0].shutdown();
}

#[test]
fn overload_yields_busy_backoff_not_timeouts() {
    // One SeD with a tiny admission limit and a per-request stall: a burst
    // of concurrent callers must overrun the queue. Overrun requests get an
    // explicit `Busy` and back off (with jitter) until the queue drains —
    // nobody times out, nobody is lost, and the healthy-but-loaded SeD is
    // never treated as failed.
    let sed = SedHandle::spawn(
        SedConfig::new("ov/0", 1.0).with_admission_limit(4),
        mark_table(),
    );
    sed.faults().set_stall(Duration::from_millis(5));
    let server = serve_sed_over_tcp(sed.clone()).expect("bind");
    let pool = Arc::new(TcpSedPool::new());
    pool.register("ov/0", server.local_addr);

    let la = AgentNode::leaf("LA", vec![sed.clone()]);
    let ma = MasterAgent::new("MA", vec![la], Arc::new(RoundRobin::new()));
    let client = Arc::new(DietClient::initialize(ma.clone()));

    let policy = RetryPolicy {
        attempt_timeout: Duration::from_secs(20),
        max_retries: 12,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(200),
        jitter: 0.5,
    };

    let handles: Vec<_> = (0..32)
        .map(|i| {
            let client = client.clone();
            let pool = pool.clone();
            std::thread::spawn(move || {
                let (out, _) = client
                    .call_over_tcp(&pool, mark_profile(i), &policy)
                    .unwrap_or_else(|e| panic!("caller {i} lost under overload: {e}"));
                assert_eq!(out.get_i32(1).unwrap(), expected(i));
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let cm = client.metrics();
    // 32 callers against an admission limit of 4: overload was real and the
    // explicit Busy path carried it, with zero timeouts and zero failures.
    assert!(
        cm.counter_value("diet_client_busy_total") >= 1,
        "overload never produced a Busy rejection"
    );
    assert_eq!(cm.counter_value("diet_client_failures_total"), 0);
    assert_eq!(cm.counter_value("diet_client_requests_total"), 32);
    // Busy is backpressure, not failure: the SeD was never blamed for it.
    assert!(ma.deregistered().is_empty());
    assert!(sed.is_alive());
    // And the SeD-side admission counter agrees that it pushed back.
    assert!(sed.obs().metrics.counter_value("diet_sed_busy_total") >= 1);

    server.stop();
    sed.shutdown();
}
