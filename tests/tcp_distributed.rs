//! Distributed integration: a SeD served over real TCP sockets — the role
//! CORBA played in the original DIET. A server thread wraps a live
//! `SedHandle` behind the framed TCP transport; the client speaks the wire
//! protocol (`Call` / `CallReply`) through `TcpTransport`.

use cosmogrid::namelist::default_run_namelist;
use cosmogrid::services::{cosmology_service_table, serve_sed_over_tcp, status, zoom1_profile};
use diet_core::codec::Message;
use diet_core::sed::{SedConfig, SedHandle};
use diet_core::transport::{Duplex, TcpServer, TcpTransport};
use std::sync::Arc;

/// Expose a SeD over TCP: each connection can stream multiple calls.
fn serve_sed(sed: Arc<SedHandle>) -> TcpServer {
    serve_sed_over_tcp(sed).expect("bind")
}

#[test]
fn zoom1_call_over_tcp() {
    let sed = SedHandle::spawn(SedConfig::new("tcp/0", 1.0), cosmology_service_table());
    let server = serve_sed(sed.clone());

    let client = TcpTransport::connect(server.local_addr).unwrap();
    client.send(&Message::Ping).unwrap();
    assert_eq!(client.recv().unwrap(), Message::Pong);

    let mut nl = default_run_namelist(8, 50.0);
    nl.set("OUTPUT_PARAMS", "aout", "0.5, 1.0");
    let profile = zoom1_profile(&nl, 8);
    client
        .send(&Message::Call {
            request_id: 77,
            ctx: diet_core::TraceCtx::default(),
            profile,
        })
        .unwrap();

    match client.recv().unwrap() {
        Message::CallReply {
            request_id, result, ..
        } => {
            assert_eq!(request_id, 77);
            let p = result.expect("solve should succeed");
            assert_eq!(p.get_i32(3).unwrap(), status::OK);
            let (_, tar) = p.get_file(2).unwrap();
            // The tarball made a full round trip over the socket.
            let entries = cosmogrid::archive::unpack(&tar.clone()).unwrap();
            assert!(cosmogrid::archive::find(&entries, "halos/catalog.txt").is_some());
        }
        other => panic!("unexpected reply {other:?}"),
    }

    client.send(&Message::Shutdown).unwrap();
    sed.shutdown();
}

#[test]
fn tcp_errors_are_reported_not_fatal() {
    let sed = SedHandle::spawn(SedConfig::new("tcp/1", 1.0), cosmology_service_table());
    let server = serve_sed(sed.clone());
    let client = TcpTransport::connect(server.local_addr).unwrap();

    // A profile for a service the SeD does not declare.
    let d = diet_core::profile::ProfileDesc::alloc("ghost", -1, -1, 0);
    let p = diet_core::profile::Profile::alloc(&d);
    client
        .send(&Message::Call {
            request_id: 1,
            ctx: diet_core::TraceCtx::default(),
            profile: p,
        })
        .unwrap();
    match client.recv().unwrap() {
        Message::CallReply { result, .. } => {
            let err = result.expect_err("ghost service must fail");
            assert!(
                err.contains("ghost"),
                "error should name the service: {err}"
            );
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // The connection is still usable afterwards.
    client.send(&Message::Ping).unwrap();
    assert_eq!(client.recv().unwrap(), Message::Pong);
    client.send(&Message::Shutdown).unwrap();
    sed.shutdown();
}

#[test]
fn multiple_tcp_clients_share_one_sed() {
    let sed = SedHandle::spawn(SedConfig::new("tcp/2", 1.0), cosmology_service_table());
    let server = serve_sed(sed.clone());
    let addr = server.local_addr;

    let handles: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || {
                let client = TcpTransport::connect(addr).unwrap();
                // Invalid resolution → instant round trip, still exercises the
                // full path (codec, socket, SeD queue, solve, reply).
                let mut nl = default_run_namelist(8, 50.0);
                nl.set("OUTPUT_PARAMS", "aout", "0.5");
                let profile = zoom1_profile(&nl, 7);
                client
                    .send(&Message::Call {
                        request_id: i,
                        ctx: diet_core::TraceCtx::default(),
                        profile,
                    })
                    .unwrap();
                match client.recv().unwrap() {
                    Message::CallReply {
                        request_id, result, ..
                    } => {
                        assert_eq!(request_id, i);
                        let p = result.unwrap();
                        assert_eq!(p.get_i32(3).unwrap(), status::BAD_RESOLUTION);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(sed.completed(), 3);
    sed.shutdown();
}
