//! Live analogue of experiment E9 (failure recovery): a SeD is killed in
//! the middle of a request burst running over real TCP sockets, and the
//! fault-tolerant client path — resubmission through the Master Agent,
//! failure reporting, heartbeat-driven deregistration — must drain the
//! burst with zero lost requests.
//!
//! The paper ran its campaigns on Grid'5000, where "nodes died mid-run";
//! this test reproduces that failure mode end to end: codec, socket,
//! SeD worker, retry engine.

use cosmogrid::namelist::default_run_namelist;
use cosmogrid::services::{cosmology_service_table, serve_sed_over_tcp, status, zoom1_profile};
use diet_core::agent::{AgentNode, HeartbeatMonitor, MasterAgent};
use diet_core::client::{DietClient, RetryPolicy};
use diet_core::sched::RoundRobin;
use diet_core::sed::{SedConfig, SedHandle};
use diet_core::transport::TcpSedPool;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BURST: usize = 30;

/// A burst of instant-turnaround requests: an invalid resolution makes the
/// solve return `BAD_RESOLUTION` immediately while still exercising the
/// full path (codec, socket, SeD queue, solve, reply).
fn quick_profile() -> diet_core::profile::Profile {
    let mut nl = default_run_namelist(8, 50.0);
    nl.set("OUTPUT_PARAMS", "aout", "0.5");
    zoom1_profile(&nl, 7)
}

#[test]
fn sed_killed_mid_burst_over_tcp_loses_no_requests() {
    // Three SeDs, each behind its own real TCP server.
    let seds: Vec<Arc<SedHandle>> = (0..3)
        .map(|i| {
            SedHandle::spawn(
                SedConfig::new(&format!("ft/{i}"), 1.0),
                cosmology_service_table(),
            )
        })
        .collect();
    let servers: Vec<_> = seds
        .iter()
        .map(|s| serve_sed_over_tcp(s.clone()).expect("bind"))
        .collect();

    let pool = TcpSedPool::new();
    for (sed, srv) in seds.iter().zip(&servers) {
        pool.register(&sed.config.label, srv.local_addr);
    }

    let la = AgentNode::leaf("LA", seds.clone());
    let ma = MasterAgent::new("MA", vec![la], Arc::new(RoundRobin::new()));
    let monitor = HeartbeatMonitor::spawn(
        ma.clone(),
        Duration::from_millis(25),
        Duration::from_millis(200),
        2,
    );
    let client = DietClient::initialize(ma.clone());

    // The victim's worker crashes while holding its 4th request: the
    // serving loop severs the connection without a reply, so the client
    // sees a transport fault mid-burst.
    let victim = &seds[1];
    victim.faults().kill_at_request(4);

    let policy = RetryPolicy {
        attempt_timeout: Duration::from_secs(10),
        max_retries: 3,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        ..RetryPolicy::default()
    };

    let mut total_retries = 0u32;
    for i in 0..BURST {
        let (out, stats) = client
            .call_over_tcp(&pool, quick_profile(), &policy)
            .unwrap_or_else(|e| panic!("request {i} lost: {e}"));
        assert_eq!(out.get_i32(3).unwrap(), status::BAD_RESOLUTION);
        total_retries += stats.retries;
    }

    // Zero lost requests, and at least one of them had to be resubmitted
    // through the MA after the crash.
    assert_eq!(client.history().len(), BURST);
    assert!(
        total_retries >= 1,
        "the killed SeD should have forced at least one resubmission"
    );

    // The client's registry agrees with the per-call stats: every request
    // counted, every resubmission counted, none failed.
    let cm = client.metrics();
    assert_eq!(cm.counter_value("diet_client_requests_total"), BURST as u64);
    assert_eq!(
        cm.counter_value("diet_client_resubmissions_total"),
        total_retries as u64
    );
    assert_eq!(cm.counter_value("diet_client_failures_total"), 0);

    // The dead SeD was deregistered, and the undeliverable reply was
    // counted rather than swallowed.
    assert_eq!(ma.deregistered(), vec!["ft/1".to_string()]);
    assert_eq!(ma.sed_count(), 2);
    assert!(
        victim.reply_failures() >= 1,
        "serving loop must record the reply it could not deliver"
    );
    assert!(!victim.is_alive());

    // Work after the crash kept flowing to the survivors.
    assert_eq!(
        seds[0].completed() + seds[2].completed(),
        BURST as u64 - victim.completed()
    );

    // Liveness alone — no client traffic — must also evict a dead server:
    // shut down a survivor's worker and wait for the heartbeat monitor to
    // notice the missed pings and deregister it.
    seds[2].shutdown();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !ma.deregistered().contains(&"ft/2".to_string()) {
        assert!(
            Instant::now() < deadline,
            "heartbeat monitor never deregistered the shut-down SeD"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(ma.sed_count(), 1);

    // The MA-side registry mirrors what the assertions above observed
    // structurally: two SeDs gone (crash + heartbeat), at least one
    // eviction driven purely by missed beats, and a live beat counter.
    let mm = ma.metrics();
    assert_eq!(mm.counter_value("diet_ma_sed_deregistered_total"), 2);
    assert!(mm.counter_value("diet_heartbeat_evictions_total") >= 1);
    assert!(mm.counter_value("diet_heartbeat_misses_total") >= 2);
    assert!(mm.counter_value("diet_heartbeat_beats_total") > 0);
    assert!(mm.counter_value("diet_ma_failure_reports_total") >= 1);

    monitor.stop();
    for srv in &servers {
        srv.stop();
    }
    seds[0].shutdown();
}

#[test]
fn tcp_timeout_resubmits_to_another_server() {
    // Two SeDs; one stalls far past the attempt deadline. The client's
    // per-attempt timeout must fire and the request must land on the
    // healthy server — no lost request, exactly one retry.
    let slow = SedHandle::spawn(SedConfig::new("tt/slow", 1.0), cosmology_service_table());
    let fast = SedHandle::spawn(SedConfig::new("tt/fast", 1.0), cosmology_service_table());
    slow.faults().set_stall(Duration::from_secs(5));

    let srv_slow = serve_sed_over_tcp(slow.clone()).expect("bind");
    let srv_fast = serve_sed_over_tcp(fast.clone()).expect("bind");
    let pool = TcpSedPool::new();
    pool.register("tt/slow", srv_slow.local_addr);
    pool.register("tt/fast", srv_fast.local_addr);

    let la = AgentNode::leaf("LA", vec![slow.clone(), fast.clone()]);
    let ma = MasterAgent::new("MA", vec![la], Arc::new(RoundRobin::new()));
    let client = DietClient::initialize(ma.clone());

    let policy = RetryPolicy {
        attempt_timeout: Duration::from_millis(150),
        max_retries: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(5),
        ..RetryPolicy::default()
    };

    let (out, stats) = client
        .call_over_tcp(&pool, quick_profile(), &policy)
        .expect("request must survive the stalled server");
    assert_eq!(out.get_i32(3).unwrap(), status::BAD_RESOLUTION);
    // Whichever server was tried first, the call finished; if the stalled
    // one was tried first, exactly one resubmission happened.
    assert!(stats.retries <= 1);

    let (_, stats2) = client
        .call_over_tcp(&pool, quick_profile(), &policy)
        .expect("second request must also survive");
    assert!(
        stats.retries + stats2.retries >= 1,
        "one of the two calls must have hit the stalled server and retried"
    );

    srv_slow.stop();
    srv_fast.stop();
    slow.shutdown();
    fast.shutdown();
}
