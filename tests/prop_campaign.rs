//! Property tests on the campaign simulator: scheduling invariants that must
//! hold for any request count, any scheduler, and any failure injection.

use cosmogrid::campaign::{run_campaign, CampaignConfig, SedFailure};
use diet_core::sched::{MinQueue, RandomSched, RoundRobin, Scheduler, WeightedSpeed};
use gridsim::platform::Grid5000;
use gridsim::workload::{TaskKind, WorkloadModel};
use proptest::prelude::*;
use std::sync::Arc;

fn scheduler_for(tag: u8, seed: u64) -> Arc<dyn Scheduler> {
    match tag % 4 {
        0 => Arc::new(RoundRobin::new()),
        1 => Arc::new(RandomSched::new(seed.max(1))),
        2 => Arc::new(MinQueue),
        _ => Arc::new(WeightedSpeed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every request executes exactly once, whatever the
    /// scheduler; makespan respects the work-conservation lower bound
    /// (total work / total speed) and the single-task upper bound
    /// (sequential on the slowest SeD).
    #[test]
    fn campaign_conserves_requests(n_zoom in 1u32..40, tag in 0u8..4, seed in 1u64..500) {
        let r = run_campaign(CampaignConfig {
            n_zoom,
            scheduler: scheduler_for(tag, seed),
            ..CampaignConfig::default()
        });
        let executed: usize = r.sed_rows.iter().map(|(_, c, _)| *c).sum();
        prop_assert_eq!(executed, n_zoom as usize);

        // Work-conservation lower bound.
        let platform = Grid5000::paper_deployment();
        let w = WorkloadModel::default();
        let total_work: f64 = (0..n_zoom)
            .map(|h| w.reference_duration(TaskKind::ZoomPart2 { halo_index: h }))
            .sum();
        let total_speed: f64 = platform
            .sed_ids()
            .iter()
            .map(|&id| platform.sed_speed(id))
            .sum();
        let lower = r.part1_s + total_work / total_speed;
        prop_assert!(
            r.makespan >= lower * 0.99,
            "makespan {} below work bound {}",
            r.makespan,
            lower
        );

        // Upper bound: strictly better than running everything on the
        // slowest SeD sequentially (for n_zoom > 11 where queueing matters,
        // and trivially for small n).
        let slowest = platform
            .sed_ids()
            .iter()
            .map(|&id| platform.sed_speed(id))
            .fold(f64::INFINITY, f64::min);
        let upper = r.part1_s + total_work / slowest + 3600.0;
        prop_assert!(r.makespan <= upper, "makespan {} above {}", r.makespan, upper);
    }

    /// Finding times stay in the calibrated band for every request.
    #[test]
    fn finding_band_holds(n_zoom in 1u32..30, tag in 0u8..4) {
        let r = run_campaign(CampaignConfig {
            n_zoom,
            scheduler: scheduler_for(tag, 7),
            ..CampaignConfig::default()
        });
        prop_assert_eq!(r.finding.len(), n_zoom as usize + 1);
        for (_, f) in &r.finding {
            prop_assert!(*f > 0.03 && *f < 0.07, "finding {f} out of band");
        }
    }

    /// Fault injection never loses work: for any victim and failure time,
    /// all requests complete.
    #[test]
    fn failure_never_loses_requests(
        n_zoom in 5u32..30,
        victim in 0usize..11,
        at_hours in 0.5f64..10.0,
    ) {
        let platform = Grid5000::paper_deployment();
        let label = platform.sed_label(platform.sed_ids()[victim]);
        let r = run_campaign(CampaignConfig {
            n_zoom,
            failure: Some(SedFailure {
                label_contains: label,
                at: at_hours * 3600.0,
            }),
            ..CampaignConfig::default()
        });
        let executed: usize = r.sed_rows.iter().map(|(_, c, _)| *c).sum();
        prop_assert_eq!(executed, n_zoom as usize);
    }

    /// Determinism holds across schedulers and sizes: same config, same
    /// bit-exact outcome.
    #[test]
    fn determinism(n_zoom in 1u32..25, tag in 0u8..4, seed in 1u64..100) {
        let mk = || run_campaign(CampaignConfig {
            n_zoom,
            scheduler: scheduler_for(tag, seed),
            ..CampaignConfig::default()
        });
        let a = mk();
        let b = mk();
        prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        prop_assert_eq!(a.sed_rows, b.sed_rows);
    }
}
