//! Property tests for the application-layer formats: tar archives and
//! RAMSES namelists round-trip arbitrary content and reject corruption.

use bytes::Bytes;
use cosmogrid::archive::{self, Entry};
use cosmogrid::namelist::Namelist;
use proptest::prelude::*;

fn arb_entries() -> impl Strategy<Value = Vec<Entry>> {
    prop::collection::vec(
        (
            "[a-zA-Z0-9_][a-zA-Z0-9_./-]{0,60}",
            prop::collection::vec(any::<u8>(), 0..2048),
        ),
        0..8,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            // Prefix with the index so names are unique (tar allows dups but
            // equality comparison is simplest on unique names).
            .map(|(i, (name, data))| Entry {
                name: format!("{i}_{name}"),
                data: Bytes::from(data),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// pack → unpack is the identity for arbitrary entry sets.
    #[test]
    fn tar_roundtrip(entries in arb_entries()) {
        let tar = archive::pack(&entries).unwrap();
        prop_assert_eq!(tar.len() % 512, 0);
        let back = archive::unpack(&tar).unwrap();
        prop_assert_eq!(back, entries);
    }

    /// Unpacking arbitrary bytes never panics.
    #[test]
    fn tar_unpack_never_panics(raw in prop::collection::vec(any::<u8>(), 0..4096)) {
        let _ = archive::unpack(&Bytes::from(raw));
    }

    /// Flipping any byte of the first entry's header or contents is detected
    /// (checksum / framing error, or content inequality — never a silent
    /// wrong answer). Flips in inter-entry padding are content-neutral by
    /// design and excluded.
    #[test]
    fn tar_bitflips_never_silent(entries in arb_entries(), flip in 0usize..4096, bit in 0u8..8) {
        prop_assume!(!entries.is_empty());
        let tar = archive::pack(&entries).unwrap();
        let meaningful = 512 + entries[0].data.len();
        let pos = flip % meaningful;
        let mut v = tar.to_vec();
        v[pos] ^= 1 << bit;
        match archive::unpack(&Bytes::from(v)) {
            Err(_) => {}
            Ok(back) => {
                prop_assert_ne!(back, entries);
            }
        }
    }
}

fn arb_namelist() -> impl Strategy<Value = Namelist> {
    prop::collection::btree_map(
        "[A-Z][A-Z_]{0,12}",
        prop::collection::btree_map(
            "[a-z][a-z_]{0,12}",
            // Values: namelist-safe tokens (no '!', '=', newlines).
            "[a-zA-Z0-9_.+-]{1,16}",
            1..6,
        ),
        0..5,
    )
    .prop_map(|groups| Namelist { groups })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// render → parse is the identity for arbitrary namelists.
    #[test]
    fn namelist_roundtrip(nl in arb_namelist()) {
        let text = nl.render();
        let back = Namelist::parse(&text).unwrap();
        prop_assert_eq!(back, nl);
    }

    /// Parsing arbitrary text never panics.
    #[test]
    fn namelist_parse_never_panics(text in ".{0,500}") {
        let _ = Namelist::parse(&text);
    }

    /// Numeric accessors either parse or report a typed error.
    #[test]
    fn namelist_accessors_total(value in "[a-zA-Z0-9_.+-]{1,12}") {
        let mut nl = Namelist::default();
        nl.set("G", "k", &value);
        let _ = nl.get_f64("G", "k");
        let _ = nl.get_i64("G", "k");
        let _ = nl.get_bool("G", "k");
        let _ = nl.get_f64_list("G", "k");
        // And the value is retrievable verbatim.
        prop_assert_eq!(nl.get("G", "k"), Some(value.as_str()));
    }
}
