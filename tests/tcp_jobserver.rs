//! The live zoom campaign run through the durable jobserver: part 1
//! called directly (the halo catalog plans the fan-out), part 2 submitted
//! as a crash-recoverable campaign that the jobserver drives through the
//! MA hierarchy over real sockets.

use cosmogrid::namelist::default_run_namelist;
use cosmogrid::services::cosmology_service_table;
use cosmogrid::workflow::ZoomWorkflow;
use diet_core::deploy::TcpTopologySpec;
use diet_core::jobserver::{
    serve_jobserver_over_tcp, JobClient, JobServer, JobServerConfig, TaskState,
};
use diet_core::sched::RoundRobin;
use diet_core::transport::ServerConfig;
use diet_core::{DietClient, Obs, RetryPolicy};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "diet-livejob-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        attempt_timeout: Duration::from_secs(30),
        max_retries: 3,
        backoff_base: Duration::from_millis(20),
        backoff_cap: Duration::from_millis(200),
        jitter: 0.5,
    }
}

#[test]
fn live_zoom_campaign_through_jobserver() {
    // Three real SeDs behind an MA, everything over TCP.
    let d = TcpTopologySpec::chain(1, 3)
        .deploy(Arc::new(RoundRobin::new()), |_| cosmology_service_table())
        .unwrap();

    let dir = tmpdir("zoom");
    let mut cfg = JobServerConfig::new(&dir);
    cfg.workers = 3;
    cfg.retry.attempt_timeout = Duration::from_secs(30);
    let obs = Arc::new(Obs::new());
    let js = JobServer::spawn(cfg, d.ma_client.clone(), d.pool.clone(), obs.clone()).unwrap();
    let server =
        serve_jobserver_over_tcp(js.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let job = JobClient::connect(server.local_addr);

    let client = DietClient::initialize_distributed(Arc::new(Obs::new()));
    let mut nl = default_run_namelist(8, 50.0);
    nl.set("OUTPUT_PARAMS", "aout", "0.5, 1.0");
    let workflow = ZoomWorkflow {
        nb_box: 2,
        max_zooms: 3,
        ..ZoomWorkflow::new(nl, 8, 50)
    };

    let report = workflow
        .run_via_jobserver(
            &client,
            &d.ma_client,
            &d.pool,
            &policy(),
            &job,
            "zoom-live",
            Duration::from_millis(25),
            Duration::from_secs(120),
        )
        .expect("live campaign failed");

    // Part 1 found halos; the campaign ran one zoom per selected halo.
    assert!(report.halos_found >= 1, "no halos from part 1");
    let n = report.halos_found.min(3) as u64;
    assert!(
        report.all_succeeded(),
        "campaign: {:?}",
        report.campaign.summary
    );
    assert_eq!(report.campaign.summary.total, n);
    assert_eq!(report.campaign.summary.done, n);
    assert!(report.part1.solve > 0.0);

    // Completions carry real SeD labels and per-task solve times; the
    // sed_rows view (the live Figure 4-right analogue) accounts for all.
    let rows = report.campaign.sed_rows();
    assert_eq!(rows.iter().map(|(_, c, _)| *c).sum::<usize>(), n as usize);
    for (label, _, _) in &rows {
        assert!(label.starts_with("d1/"), "unexpected SeD {label}");
    }
    assert!(report
        .campaign
        .events
        .iter()
        .any(|e| e.state == TaskState::Done && e.ms > 0));

    // Re-running under the same campaign name (a restarted client)
    // re-attaches to the finished campaign: same id, nothing recomputed.
    let done_before = obs.metrics.counter("diet_jobserver_tasks_done_total").get();
    let again = workflow
        .run_via_jobserver(
            &client,
            &d.ma_client,
            &d.pool,
            &policy(),
            &job,
            "zoom-live",
            Duration::from_millis(25),
            Duration::from_secs(30),
        )
        .expect("re-attach failed");
    assert_eq!(again.campaign.campaign_id, report.campaign.campaign_id);
    assert_eq!(again.campaign.summary.done, n);
    assert_eq!(
        obs.metrics.counter("diet_jobserver_tasks_done_total").get(),
        done_before,
        "re-attaching recomputed finished zooms"
    );

    js.shutdown();
    server.kill();
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
