//! Trace-context propagation across the wire and across failures: one
//! trace id must follow a request from the client through MA finding, the
//! TCP data path, the SeD queue/solve, and the reply — and *survive a
//! resubmission*, so the original attempt and the retried attempt are two
//! span trees under the same trace.
//!
//! This is the live analogue of following one request id through a
//! LogService feed while a Grid'5000 node dies mid-run.

use cosmogrid::namelist::default_run_namelist;
use cosmogrid::services::{cosmology_service_table, serve_sed_over_tcp, status, zoom1_profile};
use diet_core::agent::{AgentNode, MasterAgent};
use diet_core::client::{CallStats, DietClient, RetryPolicy};
use diet_core::sched::RoundRobin;
use diet_core::sed::{SedConfig, SedHandle};
use diet_core::transport::TcpSedPool;
use diet_core::Obs;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

fn quick_profile() -> diet_core::profile::Profile {
    let mut nl = default_run_namelist(8, 50.0);
    nl.set("OUTPUT_PARAMS", "aout", "0.5");
    zoom1_profile(&nl, 7)
}

#[test]
fn resubmitted_request_keeps_its_trace_id_across_the_wire() {
    // One shared observability sink so the client's spans and both SeDs'
    // spans land in the same ring buffer.
    let shared = Arc::new(Obs::new());

    let seds: Vec<Arc<SedHandle>> = (0..2)
        .map(|i| {
            SedHandle::spawn_with_obs(
                SedConfig::new(&format!("tp/{i}"), 1.0),
                cosmology_service_table(),
                shared.clone(),
            )
        })
        .collect();
    let servers: Vec<_> = seds
        .iter()
        .map(|s| serve_sed_over_tcp(s.clone()).expect("bind"))
        .collect();
    let pool = TcpSedPool::new();
    for (sed, srv) in seds.iter().zip(&servers) {
        pool.register(&sed.config.label, srv.local_addr);
    }

    let la = AgentNode::leaf("LA", seds.clone());
    let ma = MasterAgent::new_with_obs("MA", vec![la], Arc::new(RoundRobin::new()), shared.clone());
    let client = DietClient::initialize_with_obs(ma.clone(), shared.clone());

    // The victim's worker dies while holding its first request, so some
    // early call sees a severed connection and resubmits.
    let victim = &seds[0];
    victim.faults().kill_at_request(1);

    let policy = RetryPolicy {
        attempt_timeout: Duration::from_secs(10),
        max_retries: 3,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        ..RetryPolicy::default()
    };

    let mut resubmitted: Option<CallStats> = None;
    for i in 0..4 {
        let (out, stats) = client
            .call_over_tcp(&pool, quick_profile(), &policy)
            .unwrap_or_else(|e| panic!("request {i} lost: {e}"));
        assert_eq!(out.get_i32(3).unwrap(), status::BAD_RESOLUTION);
        assert_ne!(stats.trace_id, 0, "live calls must be traced");
        if stats.retries >= 1 {
            resubmitted = Some(stats);
            break;
        }
    }
    let stats = resubmitted.expect("the killed SeD must force a resubmission");

    let spans = shared.tracer.snapshot();
    let mine: Vec<_> = spans
        .iter()
        .filter(|s| s.trace_id == stats.trace_id)
        .collect();

    // Both attempts — original and resubmission — live under ONE trace id
    // with distinct span ids.
    let attempts: Vec<_> = mine.iter().filter(|s| s.name == "attempt").collect();
    assert!(
        attempts.len() >= 2,
        "expected original + resubmitted attempt spans, got {attempts:?}"
    );
    let attempt_ids: HashSet<u64> = attempts.iter().map(|s| s.span_id).collect();
    assert_eq!(
        attempt_ids.len(),
        attempts.len(),
        "each attempt must get a fresh span id"
    );

    // Each attempt shipped data to a *different* SeD (the failed one was
    // excluded on resubmission).
    let submission_targets: HashSet<&str> = mine
        .iter()
        .filter(|s| s.name == "Submission")
        .map(|s| s.resource.as_str())
        .collect();
    assert!(
        submission_targets.len() >= 2,
        "resubmission must target a different SeD: {submission_targets:?}"
    );

    // The SeD-side spans prove the context crossed the TCP frame: Queued,
    // Execution and ResultReturn all carry the client's trace id and parent
    // under one of the client's attempt spans.
    for phase in [
        "Finding",
        "Submission",
        "Queued",
        "Execution",
        "ResultReturn",
    ] {
        assert!(
            mine.iter().any(|s| s.name == phase),
            "trace {:#x} is missing phase {phase}",
            stats.trace_id
        );
    }
    for s in mine
        .iter()
        .filter(|s| matches!(s.name, "Queued" | "Execution" | "ResultReturn"))
    {
        assert!(
            attempt_ids.contains(&s.parent),
            "{} span should parent under an attempt span, got parent {}",
            s.name,
            s.parent
        );
    }

    // The survivor's metrics are reachable over the same TCP transport via
    // the dump-metrics request.
    let dump = pool
        .dump_metrics(&seds[1].config.label, Duration::from_secs(5))
        .expect("dump-metrics over TCP");
    assert!(
        dump.contains("diet_sed_solves_total"),
        "prometheus dump missing solve counter:\n{dump}"
    );

    for srv in &servers {
        srv.stop();
    }
    seds[1].shutdown();
}
