//! End-to-end integration: the paper's client/server pair over the live
//! in-process middleware — deployment, two-part zoom workflow, parallel
//! sub-simulations, and the error-code contract.

use cosmogrid::archive;
use cosmogrid::namelist::default_run_namelist;
use cosmogrid::services::{cosmology_service_table, status, zoom1_profile, zoom2_profile};
use diet_core::client::DietClient;
use diet_core::deploy::DeploymentSpec;
use diet_core::error::DietError;
use diet_core::sched::{MinQueue, RoundRobin};
use std::sync::Arc;

fn small_namelist() -> cosmogrid::Namelist {
    let mut nl = default_run_namelist(8, 50.0);
    nl.set("OUTPUT_PARAMS", "aout", "0.5, 1.0");
    nl
}

fn paper_like_deployment() -> DeploymentSpec {
    DeploymentSpec::paper_shape(&[
        ("nancy", 1.15, 2),
        ("sophia", 1.10, 2),
        ("lyon-s", 1.00, 1),
        ("lille", 0.90, 2),
        ("lyon-c", 0.80, 2),
        ("toulouse", 0.80, 2),
    ])
}

#[test]
fn full_two_part_workflow_over_the_hierarchy() {
    let spec = paper_like_deployment();
    assert_eq!(spec.total_seds(), 11);
    let (ma, seds) = spec
        .instantiate(Arc::new(RoundRobin::new()), |_| cosmology_service_table())
        .unwrap();
    assert_eq!(ma.solver_count("ramsesZoom2"), 11);
    let client = DietClient::initialize(ma);

    // Part 1.
    let (r1, s1) = client.call(zoom1_profile(&small_namelist(), 8)).unwrap();
    assert_eq!(r1.get_i32(3).unwrap(), status::OK);
    assert!(s1.solve > 0.0);
    let (_, tar) = r1.get_file(2).unwrap();
    let entries = archive::unpack(&tar.clone()).unwrap();
    let catalog = archive::find(&entries, "halos/catalog.txt").unwrap();
    let n_halos = String::from_utf8_lossy(&catalog.data)
        .lines()
        .count()
        .saturating_sub(1);
    assert!(n_halos >= 1, "part 1 must produce halos");

    // Part 2: several simultaneous zoom requests (paper: 100; here 3).
    let handles: Vec<_> = [[41, 76, 65], [25, 25, 25], [80, 20, 60]]
        .into_iter()
        .map(|c| {
            client
                .async_call(zoom2_profile(&small_namelist(), 8, 50, c, 2))
                .unwrap()
        })
        .collect();
    let mut servers = std::collections::HashSet::new();
    for h in handles {
        servers.insert(h.server().to_string());
        let (r2, _) = h.wait().unwrap();
        assert_eq!(r2.get_i32(8).unwrap(), status::OK);
        let (_, tar) = r2.get_file(7).unwrap();
        let entries = archive::unpack(&tar.clone()).unwrap();
        assert!(archive::find(&entries, "galaxies/catalog.txt").is_some());
        assert!(archive::find(&entries, "tree/mergertree.txt").is_some());
    }
    // Round-robin must have spread the three requests over three SeDs.
    assert_eq!(servers.len(), 3);

    for s in seds {
        s.shutdown();
    }
}

#[test]
fn service_error_codes_follow_the_paper_contract() {
    // "The last two are an integer for error controls, and a file containing
    // the results" — the DIET call itself succeeds; the service reports
    // failure through the OUT integer.
    let spec = DeploymentSpec::paper_shape(&[("solo", 1.0, 1)]);
    let (ma, seds) = spec
        .instantiate(Arc::new(MinQueue), |_| cosmology_service_table())
        .unwrap();
    let client = DietClient::initialize(ma);

    // Bad resolution (not a power of two).
    let (r, _) = client.call(zoom1_profile(&small_namelist(), 9)).unwrap();
    assert_eq!(r.get_i32(3).unwrap(), status::BAD_RESOLUTION);
    // The OUT file is a valid (empty) tarball even on failure.
    let (_, tar) = r.get_file(2).unwrap();
    assert!(archive::unpack(&tar.clone()).unwrap().is_empty());

    // Bad zoom parameters.
    let (r, _) = client
        .call(zoom2_profile(&small_namelist(), 8, 50, [50, 50, 50], 99))
        .unwrap();
    assert_eq!(r.get_i32(8).unwrap(), status::BAD_ZOOM);

    for s in seds {
        s.shutdown();
    }
}

#[test]
fn unknown_service_and_dead_sed_are_reported() {
    let spec = DeploymentSpec::paper_shape(&[("solo", 1.0, 1)]);
    let (ma, seds) = spec
        .instantiate(Arc::new(RoundRobin::new()), |_| cosmology_service_table())
        .unwrap();
    let client = DietClient::initialize(ma);

    // Unknown service.
    let d = diet_core::profile::ProfileDesc::alloc("noSuchService", -1, -1, 0);
    let p = diet_core::profile::Profile::alloc(&d);
    assert!(matches!(client.call(p), Err(DietError::ServiceNotFound(_))));

    for s in &seds {
        s.shutdown();
    }
}

#[test]
fn session_history_records_every_call() {
    let spec = DeploymentSpec::paper_shape(&[("a", 1.0, 2)]);
    let (ma, seds) = spec
        .instantiate(Arc::new(RoundRobin::new()), |_| cosmology_service_table())
        .unwrap();
    let client = DietClient::initialize(ma);
    for _ in 0..2 {
        // Use an invalid-resolution call: fast (no simulation) but a full
        // middleware round-trip.
        let (r, _) = client.call(zoom1_profile(&small_namelist(), 7)).unwrap();
        assert_eq!(r.get_i32(3).unwrap(), status::BAD_RESOLUTION);
    }
    let hist = client.history();
    assert_eq!(hist.len(), 2);
    // Round-robin alternates servers.
    assert_ne!(hist[0].0, hist[1].0);
    for (_, stats) in hist {
        assert!(stats.total >= stats.solve);
    }
    for s in seds {
        s.shutdown();
    }
}
