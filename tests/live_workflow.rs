//! Live miniature campaign: the paper's two-part protocol executed for real
//! (actual simulations, actual post-processing) through the workflow driver
//! over an 11-SeD hierarchy — the laptop-scale twin of the Grid'5000 run.

use cosmogrid::namelist::default_run_namelist;
use cosmogrid::services::cosmology_service_table;
use cosmogrid::workflow::ZoomWorkflow;
use diet_core::client::DietClient;
use diet_core::deploy::DeploymentSpec;
use diet_core::sched::RoundRobin;
use std::sync::Arc;

#[test]
fn miniature_campaign_end_to_end() {
    // The paper's 11-SeD shape (labels shortened).
    let spec = DeploymentSpec::paper_shape(&[
        ("nancy", 1.15, 2),
        ("sophia", 1.10, 2),
        ("lyon-s", 1.00, 1),
        ("lille", 0.90, 2),
        ("lyon-c", 0.80, 2),
        ("toulouse", 0.80, 2),
    ]);
    let (ma, seds) = spec
        .instantiate(Arc::new(RoundRobin::new()), |_| cosmology_service_table())
        .unwrap();
    let client = DietClient::initialize(ma);

    let mut nl = default_run_namelist(8, 50.0);
    nl.set("OUTPUT_PARAMS", "aout", "0.5, 1.0");
    let workflow = ZoomWorkflow {
        nb_box: 2,
        max_zooms: 3,
        ..ZoomWorkflow::new(nl, 8, 50)
    };

    let report = workflow.run(&client).expect("workflow failed");

    // Part 1 found halos and every zoom completed with status 0.
    assert!(report.halos_found >= 1, "no halos from part 1");
    assert!(!report.zooms.is_empty());
    assert!(
        report.all_succeeded(),
        "some zooms failed: {:?}",
        report.zooms
    );

    // The zooms were spread over distinct SeDs (round-robin) and each
    // produced a merger tree and a galaxy catalog.
    let servers: std::collections::HashSet<&str> =
        report.zooms.iter().map(|z| z.server.as_str()).collect();
    assert_eq!(servers.len(), report.zooms.len());
    for z in &report.zooms {
        assert!(z.n_tree_nodes >= 1, "empty merger tree for {:?}", z.halo);
        assert!(z.stats.solve > 0.0);
    }

    // Middleware overhead is a vanishing fraction of the compute, the
    // paper's headline operational claim.
    let compute: f64 = report.part1.solve + report.zooms.iter().map(|z| z.stats.solve).sum::<f64>();
    assert!(
        report.total_overhead() < 0.01 * compute,
        "overhead {} vs compute {compute}",
        report.total_overhead()
    );

    for s in seds {
        s.shutdown();
    }
}
