//! Live DAGDA-style data management over real TCP sockets.
//!
//! The acceptance scenario for the data subsystem, end to end: two SeDs
//! behind real TCP servers, a client that stores a `Persistent` namelist
//! blob via SeD A, and a solve scheduled on SeD B whose profile carries
//! only the data id — B must pull the payload SeD-to-SeD through the
//! replica catalog instead of the client re-shipping it. Then the
//! degradation path: the sole holder of a second blob dies, the heartbeat
//! monitor deregisters it (dropping its catalog entries), and the client
//! repairs the loss by re-shipping its cached copy — zero lost requests.

use cosmogrid::namelist::default_run_namelist;
use cosmogrid::services::{
    cosmology_service_table, namelist_value, serve_sed_over_tcp, status, zoom2_profile,
    zoom2_profile_ref,
};
use diet_core::agent::{AgentNode, HeartbeatMonitor, MasterAgent};
use diet_core::client::{DietClient, RetryPolicy};
use diet_core::codec::{encode_message, Message};
use diet_core::data::Persistence;
use diet_core::sched::DataLocal;
use diet_core::sed::{SedConfig, SedHandle};
use diet_core::transport::TcpSedPool;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn quick_namelist() -> cosmogrid::namelist::Namelist {
    let mut nl = default_run_namelist(8, 50.0);
    nl.set("OUTPUT_PARAMS", "aout", "0.5");
    nl
}

/// Resolution 7 is not a power of two: the solve returns `BAD_RESOLUTION`
/// instantly — but only after successfully parsing the namelist file, which
/// proves the referenced payload really reached the solver.
fn quick_ref_profile(id: &str) -> diet_core::profile::Profile {
    zoom2_profile_ref(id, 7, 50, [50, 50, 50], 2)
}

#[test]
fn persistent_blob_is_pulled_sed_to_sed_and_reshipped_after_holder_death() {
    let seds: Vec<Arc<SedHandle>> = (0..2)
        .map(|i| {
            SedHandle::spawn(
                SedConfig::new(&format!("dg/{i}"), 1.0),
                cosmology_service_table(),
            )
        })
        .collect();
    let servers: Vec<_> = seds
        .iter()
        .map(|s| serve_sed_over_tcp(s.clone()).expect("bind"))
        .collect();
    let pool = Arc::new(TcpSedPool::new());
    for (sed, srv) in seds.iter().zip(&servers) {
        pool.register(&sed.config.label, srv.local_addr);
    }

    let la = AgentNode::leaf("LA", seds.clone());
    let ma = MasterAgent::new("MA", vec![la], Arc::new(DataLocal::default()));
    let catalog = Arc::new(diet_core::dagda::ReplicaCatalog::new());
    ma.register_catalog(catalog.clone());
    // The pool doubles as each SeD's resolver for SeD-to-SeD pulls.
    for sed in &seds {
        sed.set_resolver(pool.clone());
    }
    let monitor = HeartbeatMonitor::spawn(
        ma.clone(),
        Duration::from_millis(25),
        Duration::from_millis(200),
        2,
    );
    let client = DietClient::initialize(ma.clone());
    let policy = RetryPolicy {
        attempt_timeout: Duration::from_secs(10),
        max_retries: 3,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        ..RetryPolicy::default()
    };

    // --- Store the shared namelist once, via SeD A. ---
    let blob = namelist_value(&quick_namelist());
    client
        .store_data_over_tcp(
            &pool,
            "dg/0",
            "nml-shared",
            blob.clone(),
            Persistence::Persistent,
            Duration::from_secs(5),
        )
        .unwrap();
    assert_eq!(catalog.holders("nml-shared"), vec!["dg/0"]);

    // The ref profile ships only the id — the namelist text is not on the
    // wire (while the equivalent inline call carries it whole).
    let ref_frame = encode_message(&Message::Call {
        request_id: 1,
        ctx: obs::TraceCtx::default(),
        profile: quick_ref_profile("nml-shared"),
    });
    let inline_frame = encode_message(&Message::Call {
        request_id: 1,
        ctx: obs::TraceCtx::default(),
        profile: zoom2_profile(&quick_namelist(), 7, 50, [50, 50, 50], 2),
    });
    let needle = b"OUTPUT_PARAMS";
    assert!(
        !ref_frame.windows(needle.len()).any(|w| w == needle),
        "namelist text leaked into the ref call frame"
    );
    assert!(inline_frame.windows(needle.len()).any(|w| w == needle));
    assert!(ref_frame.len() < inline_frame.len());

    // --- A solve forced onto SeD B pulls the blob from A, SeD-to-SeD. ---
    let out = pool
        .call(
            "dg/1",
            quick_ref_profile("nml-shared"),
            Duration::from_secs(10),
        )
        .unwrap();
    assert_eq!(out.get_i32(8).unwrap(), status::BAD_RESOLUTION);
    // The reply collapses the resolved slot back to the reference: the
    // payload never travels back to the client either.
    assert_eq!(out.values[0].as_data_ref(), Some("nml-shared"));
    let b = seds[1].obs();
    assert_eq!(b.metrics.counter_value("diet_data_misses_total"), 1);
    assert!(b.metrics.counter_value("diet_data_pull_bytes_total") > 0);
    // B re-hosts the replica and publishes itself as a second holder.
    assert_eq!(catalog.holders("nml-shared"), vec!["dg/0", "dg/1"]);

    // A second solve on B is a pure local hit — no new pull.
    let out = pool
        .call(
            "dg/1",
            quick_ref_profile("nml-shared"),
            Duration::from_secs(10),
        )
        .unwrap();
    assert_eq!(out.get_i32(8).unwrap(), status::BAD_RESOLUTION);
    assert_eq!(b.metrics.counter_value("diet_data_hits_total"), 1);
    assert_eq!(b.metrics.counter_value("diet_data_misses_total"), 1);

    // --- Degradation: the sole holder of a second blob dies. ---
    client
        .store_data_over_tcp(
            &pool,
            "dg/0",
            "nml-solo",
            blob.clone(),
            Persistence::Persistent,
            Duration::from_secs(5),
        )
        .unwrap();
    assert_eq!(catalog.holders("nml-solo"), vec!["dg/0"]);
    seds[0].shutdown();
    servers[0].kill();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !ma.deregistered().contains(&"dg/0".to_string()) {
        assert!(
            Instant::now() < deadline,
            "heartbeat monitor never deregistered the dead holder"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // Its catalog entries died with it.
    assert!(catalog.locate("nml-solo").is_none());
    assert_eq!(catalog.holders("nml-shared"), vec!["dg/1"]);

    // The client's next call references the lost blob: the surviving SeD
    // cannot resolve it anywhere, the client re-ships its cached copy, and
    // the request completes — zero lost requests.
    let (out, stats) = client
        .call_over_tcp(&pool, quick_ref_profile("nml-solo"), &policy)
        .expect("request referencing lost data must be repaired by re-ship");
    assert_eq!(out.get_i32(8).unwrap(), status::BAD_RESOLUTION);
    assert!(stats.retries >= 1);
    assert_eq!(
        client
            .metrics()
            .counter_value("diet_client_data_reships_total"),
        1
    );
    // The re-shipped blob is hosted (and catalogued) again, on the survivor.
    assert_eq!(catalog.holders("nml-solo"), vec!["dg/1"]);
    assert_eq!(
        client.metrics().counter_value("diet_client_failures_total"),
        0
    );

    monitor.stop();
    for srv in &servers {
        srv.stop();
    }
    seds[1].shutdown();
}
