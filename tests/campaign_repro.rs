//! Workspace-level reproduction gate: the paper's Section 5 numbers, checked
//! as hard bounds. This is the test-suite counterpart of the `exp_*`
//! regenerator binaries (DESIGN.md experiments E1–E7).

use cosmogrid::campaign::{run_campaign, CampaignConfig};
use diet_core::sched::WeightedSpeed;
use std::sync::Arc;

#[test]
fn e1_headline_numbers() {
    let r = run_campaign(CampaignConfig::default());
    // Paper: makespan 16h18m43s = 58 723 s; ours must land within 10%.
    assert!(
        (r.makespan - 58723.0).abs() < 0.10 * 58723.0,
        "makespan {}",
        r.makespan
    );
    // Paper: part-2 mean 1h24m01s = 5041 s within 10%.
    assert!((r.part2_mean_s - 5041.0).abs() < 0.10 * 5041.0);
    // Paper: sequential > 141 h; speedup ~8.6×.
    assert!(r.sequential_s > 141.0 * 3600.0);
    assert!(r.speedup() > 7.5 && r.speedup() < 10.0);
}

#[test]
fn e2_request_distribution() {
    let r = run_campaign(CampaignConfig::default());
    let mut counts: Vec<usize> = r.sed_rows.iter().map(|(_, c, _)| *c).collect();
    counts.sort_unstable();
    assert_eq!(&counts[..10], &[9; 10]);
    assert_eq!(counts[10], 10);
}

#[test]
fn e3_heterogeneity_spread() {
    let r = run_campaign(CampaignConfig::default());
    let max = r.sed_rows.iter().map(|(_, _, b)| *b).fold(0.0f64, f64::max);
    let min = r
        .sed_rows
        .iter()
        .map(|(_, _, b)| *b)
        .fold(f64::INFINITY, f64::min);
    // Paper: ~15h vs ~10h30 → ratio ~1.43.
    let ratio = max / min;
    assert!(ratio > 1.25 && ratio < 1.7, "busy-time ratio {ratio}");
}

#[test]
fn e4_e5_figure_5_series() {
    let r = run_campaign(CampaignConfig::default());
    assert_eq!(r.finding.len(), 101);
    assert!((r.finding_mean - 0.0498).abs() < 0.005);
    // Latency: first wave immediate, tail queues for hours.
    let tail = r.latency.iter().map(|(_, l)| *l).fold(0.0f64, f64::max);
    assert!(tail > 5.0 * 3600.0);
}

#[test]
fn e6_overhead_negligible() {
    let r = run_campaign(CampaignConfig::default());
    let total = r.overhead_mean * 101.0;
    assert!(total < 15.0, "total overhead {total}s");
    assert!(total / r.makespan < 1e-3);
}

#[test]
fn e7_plugin_scheduler_beats_default() {
    let rr = run_campaign(CampaignConfig::default());
    let ws = run_campaign(CampaignConfig {
        scheduler: Arc::new(WeightedSpeed),
        ..CampaignConfig::default()
    });
    assert!(
        ws.makespan < 0.95 * rr.makespan,
        "expected >=5% makespan gain: {} vs {}",
        ws.makespan,
        rr.makespan
    );
}

#[test]
fn campaign_replays_bit_identically() {
    let a = run_campaign(CampaignConfig::default());
    let b = run_campaign(CampaignConfig::default());
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.finding, b.finding);
}
