//! # cosmogrid — cosmological simulations using grid middleware
//!
//! The top-level crate of this reproduction of *"Cosmological Simulations
//! using Grid Middleware"* (Caniou, Caron, Depardon, Courtois, Teyssier,
//! 2007). It wires the four substrate crates together exactly as the paper's
//! system did:
//!
//! * [`diet_core`] — the DIET-like GridRPC middleware (client / MA / LA /
//!   SeD hierarchy, profiles, plug-in schedulers);
//! * [`ramses`] — the AMR N-body + hydro simulation kernel;
//! * [`grafic`] — Gaussian-random-field initial conditions (single-level and
//!   nested zoom);
//! * [`galics`] — HaloMaker / TreeMaker / GalaxyMaker post-processing;
//! * [`gridsim`] — a discrete-event model of the Grid'5000 testbed.
//!
//! On top of those, this crate provides:
//!
//! * [`namelist`] — the RAMSES parameter file format the client ships as
//!   profile argument 0;
//! * [`archive`] — POSIX ustar tarballs ("the results of the simulation are
//!   packed into a tarball file");
//! * [`services`] — the actual `ramsesZoom1` / `ramsesZoom2` solve
//!   functions, runnable for real at laptop scale on any SeD;
//! * [`workflow`] — the client-side two-part protocol (part 1 → halo
//!   catalog → simultaneous part-2 fan-out) over the live middleware;
//! * [`campaign`] — the Grid'5000 campaign simulator that reproduces the
//!   paper's Section 5 experiment (1 + 100 simulations over 11 SeDs) in
//!   virtual time, for any scheduler plug-in.

pub mod archive;
pub mod campaign;
pub mod deployment;
pub mod namelist;
pub mod services;
pub mod workflow;

pub use campaign::{CampaignConfig, CampaignResult};
pub use namelist::Namelist;
pub use workflow::{WorkflowReport, ZoomWorkflow};
