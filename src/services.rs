//! The `ramsesZoom1` and `ramsesZoom2` services.
//!
//! These are the paper's two services (Section 4), implemented for real: the
//! solve functions run the full `grafic → ramses → galics` pipeline in-process
//! at whatever resolution the client requests (laptop-scale in tests and
//! examples), and pack their outputs into a tar archive returned through the
//! OUT file argument, with the OUT error-code argument set to 0 on success —
//! matching the client convention `if (!*returnedValue) diet_file_get(...)`.

use crate::archive::{self, Entry};
use crate::namelist::Namelist;
use bytes::Bytes;
use diet_core::data::{DietValue, Persistence};
use diet_core::profile::{ramses_zoom1_desc, ramses_zoom2_desc, Profile};
use diet_core::sed::{ServiceTable, SolveFn};
use galics::{FofParams, SamParams};
use grafic::CosmoParams;
use ramses::amr::AmrParams;
use ramses::gravity::StepControl;
use ramses::nbody::{GasParams, RunParams, Simulation};
use std::sync::Arc;

/// Service-level error codes carried in the OUT error argument.
pub mod status {
    pub const OK: i32 = 0;
    /// Parameter file unreadable / inconsistent.
    pub const BAD_NAMELIST: i32 = 1;
    /// Resolution not a power of two (or out of supported range).
    pub const BAD_RESOLUTION: i32 = 2;
    /// Zoom parameters out of range.
    pub const BAD_ZOOM: i32 = 3;
    /// Simulation produced no halos to catalog.
    pub const NO_HALOS: i32 = 4;
}

/// Limits applied by the server: the encapsulated application protects its
/// cluster from absurd requests.
const MAX_RESOLUTION: i32 = 64;
const MAX_ZOOM_LEVELS: i32 = 4;

fn parse_run(nl_text: &str, resolution: i32) -> Result<(RunParams, f64), i32> {
    let nl = Namelist::parse(nl_text).map_err(|_| status::BAD_NAMELIST)?;
    if !(4..=MAX_RESOLUTION).contains(&resolution) || !(resolution as u32).is_power_of_two() {
        return Err(status::BAD_RESOLUTION);
    }
    let boxlen = nl.get_f64("AMR_PARAMS", "boxlen").unwrap_or(100.0);
    let a_init = nl.get_f64("INIT_PARAMS", "aexp_ini").unwrap_or(0.1);
    let aout = nl
        .get_f64_list("OUTPUT_PARAMS", "aout")
        .unwrap_or_else(|_| vec![0.3, 0.5]);
    if boxlen <= 0.0 || a_init <= 0.0 || a_init >= 1.0 {
        return Err(status::BAD_NAMELIST);
    }
    let a_end = aout.iter().cloned().fold(a_init * 2.0, f64::max).min(1.0);
    // `hydro = .true.` in RUN_PARAMS switches on the coupled gas component.
    let with_gas = nl.get_bool("RUN_PARAMS", "hydro").unwrap_or(false);
    let cosmo = CosmoParams {
        a_init,
        ..CosmoParams::default()
    };
    Ok((
        RunParams {
            cosmo,
            box_mpc_h: boxlen,
            // PM practice: a force mesh finer than the particle lattice, so
            // collapse is not floored at the inter-particle spacing (capped
            // for laptop execution; the paper's clusters ran 128³+). Gas
            // runs cap lower: the Godunov sweeps sub-cycle to the hydro CFL,
            // so mesh cost multiplies into every gravity step.
            mesh_n: (4 * resolution as usize).min(if with_gas { 16 } else { 32 }),
            a_end,
            aout: aout
                .into_iter()
                .filter(|&a| a > a_init && a < 1.0)
                .collect(),
            amr: AmrParams::default(),
            steps: StepControl::default(),
            max_steps: 400,
            gas: with_gas.then(GasParams::default),
            refine_overdensity: None,
        },
        boxlen,
    ))
}

/// HaloMaker parameters for the services: the standard b = 0.2 linking
/// length, with a low minimum membership because the laptop-scale loads the
/// tests and examples run (8³–16³) only resolve halos with a handful of
/// particles each.
fn service_fof() -> FofParams {
    FofParams {
        b: 0.2,
        min_members: 5,
    }
}

fn halo_catalog_text(cat: &galics::HaloCatalog) -> String {
    let mut s = String::from("# id npart mass_msun x y z vx vy vz radius sigma_v spin\n");
    for h in &cat.halos {
        s.push_str(&format!(
            "{} {} {:.6e} {:.6} {:.6} {:.6} {:.4} {:.4} {:.4} {:.6} {:.4} {:.4}\n",
            h.id,
            h.npart,
            h.mass_msun,
            h.pos[0],
            h.pos[1],
            h.pos[2],
            h.vel[0],
            h.vel[1],
            h.vel[2],
            h.radius,
            h.sigma_v,
            h.spin
        ));
    }
    s
}

fn set_failure(p: &mut Profile, out_file: usize, out_code: usize, code: i32) {
    let empty = archive::pack(&[]).unwrap_or_else(|_| Bytes::new());
    let _ = p.set(
        out_file,
        DietValue::File {
            name: "results.tar".into(),
            data: empty,
        },
        Persistence::Volatile,
    );
    let _ = p.set(out_code, DietValue::ScalarI32(code), Persistence::Volatile);
}

/// `solve_ramsesZoom1`: low-resolution full-box simulation + HaloMaker.
/// IN: namelist file (0), resolution (1). OUT: halo-catalog tarball (2),
/// error code (3).
pub fn solve_ramses_zoom1(p: &mut Profile) -> Result<i32, diet_core::DietError> {
    let (_, nl_bytes) = p.get_file(0)?;
    let nl_text = String::from_utf8_lossy(nl_bytes).to_string();
    let resolution = p.get_i32(1)?;

    let (params, boxlen) = match parse_run(&nl_text, resolution) {
        Ok(v) => v,
        Err(code) => {
            set_failure(p, 2, 3, code);
            return Ok(0);
        }
    };

    // GRAFIC single-level ICs → RAMSES run → HaloMaker.
    let seed = 1907 + resolution as u64;
    let ics = grafic::generate_single_level(&params.cosmo, resolution as usize, boxlen, seed);
    let mut sim = Simulation::from_ics(params, &ics.particles);
    let snaps = sim.run();
    let last = snaps.last().expect("run() always yields a final snapshot");
    let cat = galics::halo::halo_maker(last, &service_fof());
    if cat.is_empty() {
        set_failure(p, 2, 3, status::NO_HALOS);
        return Ok(0);
    }

    let snap_bytes = ramses::io::encode_snapshot(last);
    let tar = archive::pack(&[
        Entry {
            name: "halos/catalog.txt".into(),
            data: Bytes::from(halo_catalog_text(&cat)),
        },
        Entry {
            name: "snapshots/final.bin".into(),
            data: snap_bytes,
        },
    ])
    .map_err(|e| diet_core::DietError::Rejected(format!("tar: {e}")))?;

    p.set(
        2,
        DietValue::File {
            name: "zoom1_results.tar".into(),
            data: tar,
        },
        Persistence::Volatile,
    )?;
    p.set(3, DietValue::ScalarI32(status::OK), Persistence::Volatile)?;
    Ok(0)
}

/// `solve_ramsesZoom2`: one zoom re-simulation + the full GALICS chain.
/// IN: namelist (0), resolution (1), IC size in Mpc/h (2), centre cx cy cz as
/// percent of box (3..=5), number of zoom levels (6). OUT: result tarball
/// (7), error code (8) — the paper's exact nine-argument profile.
pub fn solve_ramses_zoom2(p: &mut Profile) -> Result<i32, diet_core::DietError> {
    let (_, nl_bytes) = p.get_file(0)?;
    let nl_text = String::from_utf8_lossy(nl_bytes).to_string();
    let resolution = p.get_i32(1)?;
    let size = p.get_i32(2)?;
    let cx = p.get_i32(3)?;
    let cy = p.get_i32(4)?;
    let cz = p.get_i32(5)?;
    let nb_box = p.get_i32(6)?;

    let (mut params, _) = match parse_run(&nl_text, resolution) {
        Ok(v) => v,
        Err(code) => {
            set_failure(p, 7, 8, code);
            return Ok(0);
        }
    };
    if size <= 0 {
        set_failure(p, 7, 8, status::BAD_NAMELIST);
        return Ok(0);
    }
    params.box_mpc_h = size as f64;
    if !(1..=MAX_ZOOM_LEVELS).contains(&nb_box)
        || !(0..=100).contains(&cx)
        || !(0..=100).contains(&cy)
        || !(0..=100).contains(&cz)
    {
        set_failure(p, 7, 8, status::BAD_ZOOM);
        return Ok(0);
    }

    // Nested zoom ICs centred on the requested halo position.
    let center = [
        cx as f64 / 100.0 * params.box_mpc_h,
        cy as f64 / 100.0 * params.box_mpc_h,
        cz as f64 / 100.0 * params.box_mpc_h,
    ];
    let seed = 2007 ^ ((cx as u64) << 20) ^ ((cy as u64) << 10) ^ (cz as u64);
    let zoom = grafic::zoom::generate_zoom(
        &params.cosmo,
        resolution as usize,
        params.box_mpc_h,
        center,
        nb_box as usize,
        seed,
    );

    let mut sim = Simulation::from_ics(params, &zoom.particles);
    let snaps = sim.run();

    // GALICS chain over all snapshots: HaloMaker, TreeMaker, GalaxyMaker.
    let fof = service_fof();
    let (cats, tree, gals) = galics::run_pipeline(&snaps, &fof, &SamParams::default());

    let last_cat = cats.last().unwrap();
    let mut entries = vec![Entry {
        name: "halos/catalog.txt".into(),
        data: Bytes::from(halo_catalog_text(last_cat)),
    }];
    // Merger tree summary.
    let mut tree_txt = String::from("# node snap halo mass descendant n_progenitors\n");
    for (i, n) in tree.nodes.iter().enumerate() {
        tree_txt.push_str(&format!(
            "{i} {} {} {:.6e} {} {}\n",
            n.snap,
            n.halo,
            n.mass,
            n.descendant.map(|d| d as i64).unwrap_or(-1),
            n.progenitors.len()
        ));
    }
    entries.push(Entry {
        name: "tree/mergertree.txt".into(),
        data: Bytes::from(tree_txt),
    });
    // Galaxy catalog at the final snapshot.
    let mut gal_txt = String::from("# node stars_disc stars_bulge cold_gas hot_gas b_over_t\n");
    for g in gals.at_roots(&tree) {
        gal_txt.push_str(&format!(
            "{} {:.6e} {:.6e} {:.6e} {:.6e} {:.4}\n",
            g.node,
            g.stars_disc,
            g.stars_bulge,
            g.cold_gas,
            g.hot_gas,
            g.b_over_t()
        ));
    }
    entries.push(Entry {
        name: "galaxies/catalog.txt".into(),
        data: Bytes::from(gal_txt),
    });
    // Final snapshot for downstream analysis.
    entries.push(Entry {
        name: "snapshots/final.bin".into(),
        data: ramses::io::encode_snapshot(snaps.last().unwrap()),
    });

    let tar =
        archive::pack(&entries).map_err(|e| diet_core::DietError::Rejected(format!("tar: {e}")))?;
    p.set(
        7,
        DietValue::File {
            name: "zoom2_results.tar".into(),
            data: tar,
        },
        Persistence::Volatile,
    )?;
    p.set(8, DietValue::ScalarI32(status::OK), Persistence::Volatile)?;
    Ok(0)
}

/// Build the service table a cosmology SeD registers — the `main()` of the
/// paper's server, up to the `diet_SeD()` call.
pub fn cosmology_service_table() -> ServiceTable {
    let mut t = ServiceTable::init(2);
    let z1: SolveFn = Arc::new(solve_ramses_zoom1);
    let z2: SolveFn = Arc::new(solve_ramses_zoom2);
    t.add(ramses_zoom1_desc(), z1).expect("table size 2");
    t.add(ramses_zoom2_desc(), z2).expect("table size 2");
    t
}

/// Campaign-wide "fail exactly one solve" trip-wire for
/// [`zoom2_failure_table`]: cloned into every SeD's table, it fires true
/// exactly once across all clones.
#[derive(Clone)]
pub struct FailOnce(Arc<std::sync::atomic::AtomicBool>);

impl FailOnce {
    pub fn new() -> Self {
        FailOnce(Arc::new(std::sync::atomic::AtomicBool::new(false)))
    }

    /// True on the first call across every clone, false afterwards.
    pub fn trip(&self) -> bool {
        !self.0.swap(true, std::sync::atomic::Ordering::SeqCst)
    }
}

impl Default for FailOnce {
    fn default() -> Self {
        Self::new()
    }
}

/// A cosmology table whose `ramsesZoom2` fails **in-band** (empty result
/// tarball + `BAD_ZOOM` code, middleware rc 0) the first time any SeD
/// sharing `trip` runs it — the fault-injection table behind the
/// partial-failure workflow tests. Mirrors how the real service reports
/// application errors: through the profile, never through the transport.
pub fn zoom2_failure_table(trip: FailOnce) -> ServiceTable {
    let mut t = ServiceTable::init(2);
    let z1: SolveFn = Arc::new(solve_ramses_zoom1);
    let z2: SolveFn = Arc::new(move |p: &mut Profile| {
        if trip.trip() {
            p.set(
                7,
                DietValue::File {
                    name: "zoom2_results.tar".into(),
                    data: Bytes::new(),
                },
                Persistence::Volatile,
            )?;
            p.set(
                8,
                DietValue::ScalarI32(status::BAD_ZOOM),
                Persistence::Volatile,
            )?;
            return Ok(0);
        }
        solve_ramses_zoom2(p)
    });
    t.add(ramses_zoom1_desc(), z1).expect("table size 2");
    t.add(ramses_zoom2_desc(), z2).expect("table size 2");
    t
}

/// Like [`cosmology_service_table`], but the solve functions also write each
/// result tarball into `workdir` before returning it — the paper's NFS
/// working-directory behaviour ("the results of the simulation are packed
/// into a tarball file" on the cluster's shared volume, then served to DIET
/// via `diet_file_set`). Write failures are reported through the service
/// error code, not a middleware error.
pub fn cosmology_service_table_with_workdir(workdir: std::path::PathBuf) -> ServiceTable {
    std::fs::create_dir_all(&workdir).ok();
    let mut t = ServiceTable::init(2);
    let d1 = workdir.clone();
    let z1: SolveFn = Arc::new(move |p: &mut Profile| {
        let rc = solve_ramses_zoom1(p)?;
        persist_out_file(p, 2, &d1);
        Ok(rc)
    });
    let d2 = workdir;
    let z2: SolveFn = Arc::new(move |p: &mut Profile| {
        let rc = solve_ramses_zoom2(p)?;
        persist_out_file(p, 7, &d2);
        Ok(rc)
    });
    t.add(ramses_zoom1_desc(), z1).expect("table size 2");
    t.add(ramses_zoom2_desc(), z2).expect("table size 2");
    t
}

/// Write the OUT file argument (if present) into the working directory with
/// a unique name; best-effort — the in-memory result is authoritative.
fn persist_out_file(p: &Profile, index: usize, dir: &std::path::Path) {
    if let Ok((name, data)) = p.get_file(index) {
        let unique = format!(
            "{}_{}_{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        );
        let _ = std::fs::write(dir.join(unique), data);
    }
}

/// Build a ready-to-send `ramsesZoom1` profile.
pub fn zoom1_profile(namelist: &Namelist, resolution: i32) -> Profile {
    let d = ramses_zoom1_desc();
    let mut p = Profile::alloc(&d);
    p.set(
        0,
        DietValue::File {
            name: "ramses.nml".into(),
            data: Bytes::from(namelist.render()),
        },
        Persistence::Volatile,
    )
    .unwrap();
    p.set(1, DietValue::ScalarI32(resolution), Persistence::Volatile)
        .unwrap();
    p
}

/// Build a ready-to-send `ramsesZoom2` profile — the paper's nine arguments.
pub fn zoom2_profile(
    namelist: &Namelist,
    resolution: i32,
    size_mpc_h: i32,
    center_pct: [i32; 3],
    nb_box: i32,
) -> Profile {
    let d = ramses_zoom2_desc();
    let mut p = Profile::alloc(&d);
    p.set(
        0,
        DietValue::File {
            name: "ramses.nml".into(),
            data: Bytes::from(namelist.render()),
        },
        Persistence::Volatile,
    )
    .unwrap();
    let scalars = [
        (1, resolution),
        (2, size_mpc_h),
        (3, center_pct[0]),
        (4, center_pct[1]),
        (5, center_pct[2]),
        (6, nb_box),
    ];
    for (i, v) in scalars {
        p.set(i, DietValue::ScalarI32(v), Persistence::Volatile)
            .unwrap();
    }
    p
}

/// Like [`zoom2_profile`], but the shared namelist/IC file — identical
/// across all 100 sub-simulations of the campaign — travels as a
/// `Persistent` grid-data reference instead of an inline payload: the client
/// stores it once (`store_data` / `PutData`) and every zoom request carries
/// only the id. SeDs that don't hold it pull it from a replica holder
/// SeD-to-SeD through the catalog.
pub fn zoom2_profile_ref(
    namelist_id: &str,
    resolution: i32,
    size_mpc_h: i32,
    center_pct: [i32; 3],
    nb_box: i32,
) -> Profile {
    let d = ramses_zoom2_desc();
    let mut p = Profile::alloc(&d);
    p.set(0, DietValue::data_ref(namelist_id), Persistence::Persistent)
        .unwrap();
    let scalars = [
        (1, resolution),
        (2, size_mpc_h),
        (3, center_pct[0]),
        (4, center_pct[1]),
        (5, center_pct[2]),
        (6, nb_box),
    ];
    for (i, v) in scalars {
        p.set(i, DietValue::ScalarI32(v), Persistence::Volatile)
            .unwrap();
    }
    p
}

/// The namelist rendered as the `DietValue` the campaign stores on the grid
/// (the payload behind [`zoom2_profile_ref`]'s id).
pub fn namelist_value(namelist: &Namelist) -> DietValue {
    DietValue::File {
        name: "ramses.nml".into(),
        data: Bytes::from(namelist.render()),
    }
}

/// Expose a live SeD over TCP — the serving half of the CORBA role in the
/// original DIET. The serving loop itself now lives in
/// [`diet_core::hierarchy`] (it serves any SeD, not just the cosmology
/// services); these wrappers keep the original entry points.
pub fn serve_sed_over_tcp(
    sed: Arc<diet_core::sed::SedHandle>,
) -> Result<diet_core::transport::TcpServer, diet_core::DietError> {
    diet_core::hierarchy::serve_sed_over_tcp(sed)
}

/// [`serve_sed_over_tcp`] with explicit worker-pool sizing and fault hooks.
/// See [`diet_core::hierarchy::serve_sed_over_tcp_with_config`] for the
/// pipelining, admission-control, and failure semantics.
pub fn serve_sed_over_tcp_with_config(
    sed: Arc<diet_core::sed::SedHandle>,
    cfg: diet_core::transport::ServerConfig,
) -> Result<diet_core::transport::TcpServer, diet_core::DietError> {
    diet_core::hierarchy::serve_sed_over_tcp_with_config(sed, cfg)
}

/// [`serve_sed_over_tcp`] for a monitored deployment: the SeD serves as
/// usual, and a background [`diet_core::TelemetryFlusher`] ships its spans
/// and metrics (solve windows, queue gauges, the serving reactor's own
/// tick/drop series) to the deployment's collector process. Keep the
/// returned flusher alive for the life of the server; dropping it performs
/// a final flush so the collector sees the tail of the run.
pub fn serve_sed_over_tcp_with_telemetry(
    sed: Arc<diet_core::sed::SedHandle>,
    collector: std::net::SocketAddr,
) -> Result<(diet_core::transport::TcpServer, diet_core::TelemetryFlusher), diet_core::DietError> {
    let label = sed.config.label.clone();
    let server = diet_core::hierarchy::serve_sed_over_tcp(sed.clone())?;
    let flusher = diet_core::TelemetryFlusher::spawn(
        sed.obs(),
        diet_core::TelemetryConfig::new(collector, "sed", &label),
    );
    Ok((server, flusher))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namelist::default_run_namelist;

    fn quick_namelist() -> Namelist {
        let mut nl = default_run_namelist(8, 50.0);
        nl.set("INIT_PARAMS", "aexp_ini", 0.1);
        nl.set("OUTPUT_PARAMS", "aout", "0.5, 1.0");
        nl
    }

    #[test]
    fn zoom1_runs_and_produces_catalog() {
        let mut p = zoom1_profile(&quick_namelist(), 8);
        let rc = solve_ramses_zoom1(&mut p).unwrap();
        assert_eq!(rc, 0);
        assert_eq!(p.get_i32(3).unwrap(), status::OK);
        let (_, tar) = p.get_file(2).unwrap();
        let entries = archive::unpack(&tar.clone()).unwrap();
        let cat = archive::find(&entries, "halos/catalog.txt").unwrap();
        let text = String::from_utf8_lossy(&cat.data);
        assert!(text.starts_with("# id npart"));
        assert!(text.lines().count() > 1, "no halos found in zoom1: {text}");
        assert!(archive::find(&entries, "snapshots/final.bin").is_some());
    }

    #[test]
    fn zoom1_rejects_bad_resolution_via_error_code() {
        let mut p = zoom1_profile(&quick_namelist(), 12); // not a power of two
        assert_eq!(solve_ramses_zoom1(&mut p).unwrap(), 0);
        assert_eq!(p.get_i32(3).unwrap(), status::BAD_RESOLUTION);
    }

    #[test]
    fn zoom1_rejects_garbage_namelist() {
        let d = ramses_zoom1_desc();
        let mut p = Profile::alloc(&d);
        p.set(
            0,
            DietValue::File {
                name: "bad.nml".into(),
                data: Bytes::from_static(b"x = 1"),
            },
            Persistence::Volatile,
        )
        .unwrap();
        p.set(1, DietValue::ScalarI32(8), Persistence::Volatile)
            .unwrap();
        assert_eq!(solve_ramses_zoom1(&mut p).unwrap(), 0);
        assert_eq!(p.get_i32(3).unwrap(), status::BAD_NAMELIST);
    }

    #[test]
    fn zoom2_full_pipeline_outputs_all_catalogs() {
        let mut p = zoom2_profile(&quick_namelist(), 8, 50, [50, 50, 50], 2);
        let rc = solve_ramses_zoom2(&mut p).unwrap();
        assert_eq!(rc, 0);
        assert_eq!(p.get_i32(8).unwrap(), status::OK);
        let (_, tar) = p.get_file(7).unwrap();
        let entries = archive::unpack(&tar.clone()).unwrap();
        for name in [
            "halos/catalog.txt",
            "tree/mergertree.txt",
            "galaxies/catalog.txt",
            "snapshots/final.bin",
        ] {
            assert!(archive::find(&entries, name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn zoom2_rejects_bad_zoom_params() {
        let mut p = zoom2_profile(&quick_namelist(), 8, 50, [150, 50, 50], 2);
        assert_eq!(solve_ramses_zoom2(&mut p).unwrap(), 0);
        assert_eq!(p.get_i32(8).unwrap(), status::BAD_ZOOM);

        let mut p = zoom2_profile(&quick_namelist(), 8, 50, [50, 50, 50], 0);
        assert_eq!(solve_ramses_zoom2(&mut p).unwrap(), 0);
        assert_eq!(p.get_i32(8).unwrap(), status::BAD_ZOOM);
    }

    #[test]
    fn zoom1_with_hydro_component() {
        // `hydro = .true.` runs the coupled N-body + Euler solver; the
        // result contract is unchanged.
        let mut nl = quick_namelist();
        nl.set("RUN_PARAMS", "hydro", ".true.");
        // Short run: the hydro sub-cycling makes full-length runs expensive
        // in the test profile; the coupling path is fully exercised anyway.
        nl.set("OUTPUT_PARAMS", "aout", "0.2");
        let mut p = zoom1_profile(&nl, 8);
        assert_eq!(solve_ramses_zoom1(&mut p).unwrap(), 0);
        // At a_end = 0.2 halos may not exist yet; OK or NO_HALOS are both
        // valid contract outcomes here — what matters is the run completed.
        let code = p.get_i32(3).unwrap();
        assert!(
            code == status::OK || code == status::NO_HALOS,
            "code {code}"
        );
        let (_, tar) = p.get_file(2).unwrap();
        assert!(!tar.is_empty() || code == status::NO_HALOS);
    }

    #[test]
    fn workdir_table_writes_result_tarballs() {
        let dir = std::env::temp_dir().join(format!("cosmogrid_nfs_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let t = cosmology_service_table_with_workdir(dir.clone());
        assert!(t.declares("ramsesZoom1"));
        // Run the zoom1 solve through the table's wrapped function.
        let (_, solve) = t.lookup("ramsesZoom1").unwrap();
        let mut p = zoom1_profile(&quick_namelist(), 8);
        assert_eq!(solve(&mut p).unwrap(), 0);
        assert_eq!(p.get_i32(3).unwrap(), status::OK);
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(files.len(), 1, "expected one tarball in the working dir");
        let path = files[0].as_ref().unwrap().path();
        assert!(path.to_string_lossy().contains("zoom1_results.tar"));
        // The on-disk tar is the same bytes the client received.
        let on_disk = std::fs::read(&path).unwrap();
        let (_, in_memory) = p.get_file(2).unwrap();
        assert_eq!(&on_disk[..], &in_memory[..]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn service_table_declares_both_services() {
        let t = cosmology_service_table();
        assert!(t.declares("ramsesZoom1"));
        assert!(t.declares("ramsesZoom2"));
        assert_eq!(t.len(), 2);
    }
}
