//! The Grid'5000 campaign simulator.
//!
//! Reproduces the paper's Section 5 experiment in virtual time: one
//! `ramsesZoom1` request, then — on its completion — 100 simultaneous
//! `ramsesZoom2` requests over the 11 SeDs of the paper's deployment, with
//! each SeD executing at most one simulation at a time.
//!
//! The middleware behaviour is modelled faithfully:
//!
//! * the Master Agent serialises "finding" (hierarchy traversal +
//!   scheduling); per-request finding time is calibrated to the measured
//!   ≈ 49.8 ms near-constant value;
//! * the chosen SeD receives the input over the RENATER route from the
//!   client's site, pays the measured ≈ 20.8 ms service-initiation cost, and
//!   queues the job FIFO;
//! * scheduling decisions use the *same* plug-in [`Scheduler`]
//!   implementations as the live middleware, fed estimates built from the
//!   simulated SeD states — including the paper's crucial cold-start fact
//!   that no SeD has ever executed `ramsesZoom2` when the 100 requests
//!   arrive, so history-based policies see `known_mean_duration = None`.
//!
//! Everything is deterministic for a given configuration.

use diet_core::monitor::Estimate;
use diet_core::sched::Scheduler;
use gridsim::des::Engine;
use gridsim::network::Topology;
use gridsim::platform::Grid5000;
use gridsim::trace::{Gantt, TraceKind};
use gridsim::workload::{TaskKind, TaskSpec, WorkloadModel};
use std::collections::VecDeque;
use std::sync::Arc;

/// A fault to inject: one SeD dies at a virtual time. Its queued requests —
/// and the one it was executing — are resubmitted through the Master Agent,
/// exercising the middleware's recovery path (an extension beyond the
/// paper's failure-free run).
#[derive(Debug, Clone)]
pub struct SedFailure {
    /// Substring matched against SeD labels; the first match dies.
    pub label_contains: String,
    /// Virtual time of the failure, seconds.
    pub at: f64,
}

/// Campaign configuration.
#[derive(Clone)]
pub struct CampaignConfig {
    /// Number of second-part sub-simulations (the paper: 100).
    pub n_zoom: u32,
    /// Scheduling policy under test.
    pub scheduler: Arc<dyn Scheduler>,
    /// Calibrated task-duration model.
    pub workload: WorkloadModel,
    /// Mean finding time (paper: 49.8 ms).
    pub finding_mean_s: f64,
    /// Service initiation time (paper: 20.8 ms).
    pub init_s: f64,
    /// Site hosting the MA and the client (paper: Lyon).
    pub client_site: String,
    /// Optional fault injection.
    pub failure: Option<SedFailure>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            n_zoom: 100,
            scheduler: Arc::new(diet_core::sched::RoundRobin::new()),
            workload: WorkloadModel::default(),
            finding_mean_s: 0.0498,
            init_s: 0.0208,
            client_site: "Lyon".into(),
            failure: None,
        }
    }
}

/// One SeD's simulated state.
struct SimSed {
    label: String,
    site: String,
    speed: f64,
    /// FIFO queue of (request id, enqueue time, duration, kind).
    queue: VecDeque<(u32, f64, f64, TaskKind)>,
    busy: bool,
    /// Requests dispatched here and not yet completed — what the live
    /// middleware's LoadTracker counts at submit time.
    outstanding: usize,
    /// Completed zoom2 executions: count and summed duration (drives the
    /// `known_mean_duration` estimate exactly like the live LoadTracker).
    completed: u64,
    busy_total: f64,
    /// Dead after fault injection: invisible to estimates, drops results.
    dead: bool,
    /// Task kind currently executing (for resubmission on failure).
    running: Option<(u32, TaskKind)>,
}

struct State {
    cfg: CampaignConfig,
    topology: Topology,
    seds: Vec<SimSed>,
    gantt: Gantt,
    /// MA serialisation point for findings.
    ma_avail: f64,
    remaining: u32,
    /// Time the part-1 result arrived back at the client.
    part1_done_at: Option<f64>,
    /// Per-cluster NFS volumes: results are written to the shared working
    /// directory before shipping (the paper: "RAMSES requires a NFS working
    /// directory in order to write the output files").
    nfs: Vec<gridsim::nfs::NfsVolume>,
    /// Cluster index of each SeD (for NFS lookup).
    sed_cluster: Vec<usize>,
    /// Orphaned requests re-entered through the MA after a SeD death.
    resubmitted: usize,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl State {
    /// Near-constant finding time with small deterministic jitter (the
    /// paper's Figure 5 top series).
    fn finding_time(&self, request: u32) -> f64 {
        let h = splitmix64(self.cfg.workload.seed ^ (request as u64));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        self.cfg.finding_mean_s * (0.9 + 0.2 * u)
    }

    /// Estimates for live SeDs only, with their indices into `self.seds`.
    fn estimates(&self) -> (Vec<usize>, Vec<Estimate>) {
        let idx: Vec<usize> = (0..self.seds.len())
            .filter(|&i| !self.seds[i].dead)
            .collect();
        let ests = idx
            .iter()
            .map(|&i| &self.seds[i])
            .map(|s| Estimate {
                server: s.label.clone(),
                speed_factor: s.speed,
                free_memory: 32 << 30,
                queue_length: s.outstanding,
                completed: s.completed,
                known_mean_duration: if s.completed > 0 {
                    Some(s.busy_total / s.completed as f64)
                } else {
                    None
                },
                // The simulator models the paper's volatile-data campaign:
                // no replica catalog, so the locality terms stay zero.
                ..Estimate::default()
            })
            .collect();
        (idx, ests)
    }
}

/// Submit one request: finding → transfer+init → SeD queue.
fn submit(eng: &mut Engine<State>, st: &mut State, request: u32, kind: TaskKind) {
    let now = eng.now();
    let f_start = now.max(st.ma_avail);
    let f_dur = st.finding_time(request);
    st.ma_avail = f_start + f_dur;
    st.gantt.record(
        request,
        "agents",
        TraceKind::Finding,
        f_start,
        f_start + f_dur,
    );

    // Scheduling decision happens at the end of finding, over current state
    // (dead SeDs are invisible, as in the live agent's estimate probing).
    let (live, ests) = st.estimates();
    assert!(!live.is_empty(), "all SeDs dead: campaign cannot finish");
    let pick = live[st.cfg.scheduler.select(&ests)];
    let spec = match kind {
        TaskKind::ZoomPart1 => TaskSpec::zoom_part1(),
        TaskKind::ZoomPart2 { halo_index } => TaskSpec::zoom_part2(halo_index),
    };
    st.seds[pick].outstanding += 1;
    let site = st.seds[pick].site.clone();
    let route = st.topology.route(&st.cfg.client_site, &site);
    let send = route.transfer_time(spec.input_bytes) + st.cfg.init_s;
    let arrive = f_start + f_dur + send;
    st.gantt.record(
        request,
        st.seds[pick].label.clone(),
        TraceKind::Submission,
        f_start + f_dur,
        arrive,
    );

    eng.schedule_at(arrive, move |eng, st: &mut State| {
        enqueue(eng, st, pick, request, kind, spec);
    });
}

fn enqueue(
    eng: &mut Engine<State>,
    st: &mut State,
    sed: usize,
    request: u32,
    kind: TaskKind,
    spec: TaskSpec,
) {
    if st.seds[sed].dead {
        // The transfer raced the failure: the client re-submits. The
        // failure handler already zeroed this SeD's outstanding count, so
        // the decrement must saturate — and the re-entry is a resubmission
        // like any orphan (the live CallStats path counts it; keep the
        // simulator's accounting consistent).
        st.seds[sed].outstanding = st.seds[sed].outstanding.saturating_sub(1);
        st.resubmitted += 1;
        submit(eng, st, request, kind);
        return;
    }
    let dur = dur_of(st, sed, kind);
    st.seds[sed]
        .queue
        .push_back((request, eng.now(), dur, kind));
    maybe_start(eng, st, sed, spec);
}

fn dur_of(st: &State, sed: usize, kind: TaskKind) -> f64 {
    st.cfg.workload.duration_on(kind, st.seds[sed].speed)
}

fn maybe_start(eng: &mut Engine<State>, st: &mut State, sed: usize, spec: TaskSpec) {
    if st.seds[sed].busy {
        return;
    }
    let Some((request, enq_t, dur, kind)) = st.seds[sed].queue.pop_front() else {
        return;
    };
    let now = eng.now();
    st.seds[sed].busy = true;
    st.seds[sed].running = Some((request, kind));
    let label = st.seds[sed].label.clone();
    st.gantt
        .record(request, label.clone(), TraceKind::Queued, enq_t, now);
    st.gantt
        .record(request, label, TraceKind::Execution, now, now + dur);
    eng.schedule_at(now + dur, move |eng, st: &mut State| {
        complete(eng, st, sed, request, dur, spec);
    });
}

fn complete(
    eng: &mut Engine<State>,
    st: &mut State,
    sed: usize,
    request: u32,
    dur: f64,
    spec: TaskSpec,
) {
    if st.seds[sed].dead {
        // The SeD died while this job ran: its result is lost; the request
        // was already resubmitted by the failure handler. Drop silently.
        return;
    }
    let now = eng.now();
    st.seds[sed].busy = false;
    st.seds[sed].running = None;
    st.seds[sed].outstanding -= 1;
    st.seds[sed].completed += 1;
    st.seds[sed].busy_total += dur;

    // Write the result tarball to the cluster's NFS working directory, then
    // ship it back to the client. Concurrent writers on the same volume
    // (the cluster's other busy SeD) share the write bandwidth.
    let cluster = st.sed_cluster[sed];
    let writers = st
        .seds
        .iter()
        .enumerate()
        .filter(|(i, s)| st.sed_cluster[*i] == cluster && (s.busy || *i == sed))
        .count()
        .max(1);
    let nfs_time = st.nfs[cluster]
        .write(
            &format!("req{request}_results.tar"),
            spec.output_bytes,
            writers,
        )
        .unwrap_or(0.0);
    let site = st.seds[sed].site.clone();
    let route = st.topology.route(&site, &st.cfg.client_site);
    let back = nfs_time + route.transfer_time(spec.output_bytes);
    st.gantt.record(
        request,
        st.seds[sed].label.clone(),
        TraceKind::ResultReturn,
        now,
        now + back,
    );

    if request == 0 {
        // Part 1 finished: the client now fires all part-2 requests at once.
        let t = now + back;
        st.part1_done_at = Some(t);
        let n = st.cfg.n_zoom;
        eng.schedule_at(t, move |eng, st: &mut State| {
            for h in 0..n {
                submit(eng, st, h + 1, TaskKind::ZoomPart2 { halo_index: h });
            }
        });
    } else {
        st.remaining -= 1;
    }

    // This SeD may have more queued work.
    maybe_start(eng, st, sed, spec);
}

/// Results of one campaign run — everything the paper's Section 5 reports.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    pub scheduler: &'static str,
    /// Full campaign makespan, seconds (paper: 16 h 18 m 43 s).
    pub makespan: f64,
    /// Part-1 execution time (paper: 1 h 15 m 11 s).
    pub part1_s: f64,
    /// Mean part-2 execution time (paper: 1 h 24 m 1 s).
    pub part2_mean_s: f64,
    /// Figure 4-right: per-SeD (label, request count, busy seconds).
    pub sed_rows: Vec<(String, usize, f64)>,
    /// Figure 5 top: (request, finding seconds).
    pub finding: Vec<(u32, f64)>,
    /// Figure 5 bottom: (request, latency seconds) — send + init + queue.
    pub latency: Vec<(u32, f64)>,
    /// Mean finding time (paper: 49.8 ms).
    pub finding_mean: f64,
    /// Mean per-request middleware overhead = finding + send + init,
    /// excluding queue wait (paper: ≈ 70.6 ms).
    pub overhead_mean: f64,
    /// Sequential single-SeD baseline, seconds (paper: > 141 h).
    pub sequential_s: f64,
    /// The raw trace for custom analysis / Gantt rendering.
    pub gantt: Gantt,
    /// Requests resubmitted through the MA after a SeD failure (0 in a
    /// failure-free run): orphaned queue entries plus the lost in-flight
    /// execution.
    pub resubmissions: usize,
}

impl CampaignResult {
    pub fn speedup(&self) -> f64 {
        self.sequential_s / self.makespan
    }

    /// Gantt restricted to the 100 sub-simulations (Figure 4-left shows
    /// exactly these).
    pub fn part2_gantt(&self) -> Gantt {
        Gantt {
            events: self
                .gantt
                .events
                .iter()
                .filter(|e| e.request >= 1)
                .cloned()
                .collect(),
        }
    }
}

/// Run the campaign on the paper's deployment.
///
/// ```
/// use cosmogrid::campaign::{run_campaign, CampaignConfig};
/// let r = run_campaign(CampaignConfig { n_zoom: 10, ..CampaignConfig::default() });
/// assert_eq!(r.sed_rows.iter().map(|(_, c, _)| c).sum::<usize>(), 10);
/// assert!(r.makespan > 0.0);
/// ```
pub fn run_campaign(cfg: CampaignConfig) -> CampaignResult {
    let platform = Grid5000::paper_deployment();
    run_campaign_on(cfg, &platform)
}

/// Run the campaign on an arbitrary platform model.
pub fn run_campaign_on(cfg: CampaignConfig, platform: &Grid5000) -> CampaignResult {
    let site_names: Vec<String> = platform.sites.iter().map(|s| s.name.clone()).collect();
    let topology = Topology::renater_2006(&site_names);
    let seds: Vec<SimSed> = platform
        .sed_ids()
        .into_iter()
        .map(|id| SimSed {
            label: platform.sed_label(id),
            site: platform.clusters[id.cluster].site.clone(),
            speed: platform.sed_speed(id),
            queue: VecDeque::new(),
            busy: false,
            outstanding: 0,
            completed: 0,
            busy_total: 0.0,
            dead: false,
            running: None,
        })
        .collect();
    let scheduler_name = cfg.scheduler.name();
    let n_zoom = cfg.n_zoom;
    let workload = cfg.workload;

    let sed_cluster: Vec<usize> = platform.sed_ids().iter().map(|id| id.cluster).collect();
    let nfs: Vec<gridsim::nfs::NfsVolume> = platform
        .clusters
        .iter()
        .map(|_| gridsim::nfs::NfsVolume::cluster_scratch())
        .collect();
    let mut state = State {
        cfg,
        topology,
        seds,
        gantt: Gantt::default(),
        ma_avail: 0.0,
        remaining: n_zoom,
        part1_done_at: None,
        nfs,
        sed_cluster,
        resubmitted: 0,
    };
    let mut eng: Engine<State> = Engine::new();
    eng.schedule_at(0.0, |eng, st: &mut State| {
        submit(eng, st, 0, TaskKind::ZoomPart1);
    });
    if let Some(failure) = state.cfg.failure.clone() {
        eng.schedule_at(failure.at, move |eng, st: &mut State| {
            let Some(sed) = st
                .seds
                .iter()
                .position(|s| s.label.contains(&failure.label_contains))
            else {
                return;
            };
            st.seds[sed].dead = true;
            // Everything assigned here and unfinished goes back to the MA.
            let mut orphans: Vec<(u32, TaskKind)> = st.seds[sed]
                .queue
                .drain(..)
                .map(|(r, _, _, k)| (r, k))
                .collect();
            if let Some(running) = st.seds[sed].running.take() {
                // The in-flight execution is lost: truncate its trace entry
                // at the failure instant and mark it aborted.
                let label = st.seds[sed].label.clone();
                let now = eng.now();
                if let Some(ev) = st.gantt.events.iter_mut().rev().find(|e| {
                    e.kind == TraceKind::Execution && e.resource == label && e.request == running.0
                }) {
                    ev.kind = TraceKind::Aborted;
                    ev.end = ev.end.min(now);
                }
                orphans.push(running);
            }
            st.seds[sed].outstanding = 0;
            st.resubmitted += orphans.len();
            for (r, k) in orphans {
                submit(eng, st, r, k);
            }
        });
    }
    eng.run(&mut state, None);
    assert_eq!(state.remaining, 0, "campaign did not drain");

    let gantt = state.gantt;
    let part2_gantt = Gantt {
        events: gantt
            .events
            .iter()
            .filter(|e| e.request >= 1)
            .cloned()
            .collect(),
    };

    let exec = gantt.per_request(TraceKind::Execution);
    let part1_s = exec
        .iter()
        .find(|(r, _)| *r == 0)
        .map(|(_, d)| *d)
        .unwrap_or(0.0);
    let part2: Vec<f64> = exec
        .iter()
        .filter(|(r, _)| *r >= 1)
        .map(|(_, d)| *d)
        .collect();
    let part2_mean_s = part2.iter().sum::<f64>() / part2.len().max(1) as f64;

    let finding = gantt.per_request(TraceKind::Finding);
    let submission = gantt.per_request(TraceKind::Submission);
    let queued = gantt.per_request(TraceKind::Queued);
    // Latency = send+init + queue wait, per request.
    let latency: Vec<(u32, f64)> = submission
        .iter()
        .map(|(r, s)| {
            let q = queued
                .iter()
                .find(|(qr, _)| qr == r)
                .map(|(_, d)| *d)
                .unwrap_or(0.0);
            (*r, s + q)
        })
        .collect();

    let finding_mean = gantt.mean_duration(TraceKind::Finding);
    let overhead_mean = finding_mean + gantt.mean_duration(TraceKind::Submission);

    // Sequential baseline: the whole campaign on one mean-speed SeD.
    let mean_speed: f64 = platform
        .sed_ids()
        .iter()
        .map(|&id| platform.sed_speed(id))
        .sum::<f64>()
        / platform.total_seds() as f64;
    let sequential_s = workload.sequential_campaign(n_zoom, mean_speed);

    let sed_rows = part2_gantt
        .sed_summaries()
        .into_iter()
        .map(|s| (s.resource, s.requests, s.busy))
        .collect();

    CampaignResult {
        scheduler: scheduler_name,
        makespan: gantt.makespan(),
        part1_s,
        part2_mean_s,
        sed_rows,
        finding,
        latency,
        finding_mean,
        overhead_mean,
        sequential_s,
        gantt,
        resubmissions: state.resubmitted,
    }
}

// ---------------------------------------------------------------- live path

/// Outcome of a campaign executed for real through the durable jobserver
/// (the live counterpart of [`CampaignResult`]): the final summary, the
/// full per-task transition feed, and wall-clock duration.
#[derive(Debug, Clone)]
pub struct LiveCampaignReport {
    pub campaign_id: u64,
    pub summary: diet_core::jobserver::CampaignSummary,
    /// Every task-state transition the server retained, in log order.
    pub events: Vec<diet_core::jobserver::TaskEventRec>,
    /// Client-observed wall time, seconds (spans server restarts — the
    /// jobserver recovers mid-campaign and the wait keeps polling).
    pub wall_s: f64,
}

impl LiveCampaignReport {
    pub fn all_done(&self) -> bool {
        self.summary.finished && self.summary.failed == 0 && self.summary.done == self.summary.total
    }

    /// Resubmissions — dispatch attempts beyond each task's first (the
    /// live analogue of [`CampaignResult::resubmissions`]).
    pub fn resubmissions(&self) -> u64 {
        self.summary.resubmissions
    }

    /// Per-SeD `(label, completed tasks, busy seconds)` rows from the
    /// completion events — the live analogue of
    /// [`CampaignResult::sed_rows`] (Figure 4-right).
    pub fn sed_rows(&self) -> Vec<(String, usize, f64)> {
        let mut rows: std::collections::BTreeMap<String, (usize, f64)> =
            std::collections::BTreeMap::new();
        for e in &self.events {
            if e.state == diet_core::jobserver::TaskState::Done {
                let row = rows.entry(e.sed.clone()).or_insert((0, 0.0));
                row.0 += 1;
                row.1 += e.ms as f64 / 1e3;
            }
        }
        rows.into_iter().map(|(l, (c, b))| (l, c, b)).collect()
    }
}

/// Run a campaign through a live jobserver: submit the tasks (idempotent
/// by `name` — safe to re-run after a client crash) and block until every
/// task is terminal. The jobserver owns retries, failover, and crash
/// recovery; this call survives server restarts mid-campaign.
pub fn run_live_campaign(
    job: &diet_core::jobserver::JobClient,
    name: &str,
    tasks: Vec<diet_core::jobserver::TaskPayload>,
    poll: std::time::Duration,
    timeout: std::time::Duration,
) -> Result<LiveCampaignReport, diet_core::DietError> {
    let t0 = std::time::Instant::now();
    let (campaign_id, _task_ids) = job.submit_tasks(name, tasks)?;
    let (summary, events) = job.wait(campaign_id, poll, timeout)?;
    Ok(LiveCampaignReport {
        campaign_id,
        summary,
        events,
        wall_s: t0.elapsed().as_secs_f64(),
    })
}

/// Pretty-print seconds as `HhMMmSSs`.
pub fn fmt_hms(seconds: f64) -> String {
    let s = seconds.round() as i64;
    format!("{}h{:02}m{:02}s", s / 3600, (s % 3600) / 60, s % 60)
}

/// Bridge live traces into the simulator's analysis: convert collected
/// [`obs::SpanRecord`]s into a [`Gantt`] so `per_request`, `sed_summaries`
/// and the Figure 4/5 plotting paths work identically on real executions.
///
/// `request_of` maps trace ids to request numbers (the client assigns one
/// trace id per logical call, stable across resubmissions). Spans whose
/// trace id is unmapped, or whose name is not a [`TraceKind`] phase (e.g.
/// the client-side `attempt` envelope), are skipped. Timestamps shift so
/// the earliest kept span starts at t = 0.
pub fn gantt_from_spans(
    spans: &[obs::SpanRecord],
    request_of: &std::collections::HashMap<u64, u32>,
) -> Gantt {
    let kind_of = |name: &str| match name {
        "Finding" => Some(TraceKind::Finding),
        "Submission" => Some(TraceKind::Submission),
        "Queued" => Some(TraceKind::Queued),
        "Execution" => Some(TraceKind::Execution),
        "Aborted" => Some(TraceKind::Aborted),
        "ResultReturn" => Some(TraceKind::ResultReturn),
        _ => None,
    };
    let epoch_ns = spans
        .iter()
        .filter(|s| request_of.contains_key(&s.trace_id) && kind_of(s.name).is_some())
        .map(|s| s.start_ns)
        .min()
        .unwrap_or(0);
    let mut gantt = Gantt::default();
    for s in spans {
        let (Some(&request), Some(kind)) = (request_of.get(&s.trace_id), kind_of(s.name)) else {
            continue;
        };
        gantt.record(
            request,
            s.resource.clone(),
            kind,
            (s.start_ns - epoch_ns) as f64 / 1e9,
            (s.end_ns - epoch_ns) as f64 / 1e9,
        );
    }
    gantt
}

#[cfg(test)]
mod tests {
    use super::*;
    use diet_core::sched::{MinQueue, RoundRobin, WeightedSpeed};

    fn default_run() -> CampaignResult {
        run_campaign(CampaignConfig::default())
    }

    #[test]
    fn gantt_from_spans_maps_phases_and_rebases_time() {
        let span =
            |trace_id: u64, name: &'static str, resource: &str, start_ns, end_ns| obs::SpanRecord {
                trace_id,
                span_id: 0,
                parent: 0,
                name,
                resource: resource.to_string(),
                start_ns,
                end_ns,
            };
        let spans = vec![
            span(7, "Finding", "agents", 1_000_000_000, 1_100_000_000),
            span(7, "Execution", "sed/0", 1_100_000_000, 3_100_000_000),
            // Client-side envelope: not a simulator phase, dropped.
            span(7, "attempt", "client", 1_000_000_000, 3_200_000_000),
            // Unmapped trace id (another client's traffic), dropped.
            span(99, "Execution", "sed/1", 0, 1),
        ];
        let request_of = std::collections::HashMap::from([(7u64, 42u32)]);
        let g = gantt_from_spans(&spans, &request_of);
        assert_eq!(g.events.len(), 2);
        // Earliest kept span rebases to t = 0.
        assert_eq!(g.per_request(TraceKind::Finding), vec![(42, 0.1)]);
        let exec = g.per_request(TraceKind::Execution);
        assert_eq!(exec.len(), 1);
        assert!((exec[0].1 - 2.0).abs() < 1e-9);
        assert!((g.makespan() - 2.1).abs() < 1e-9);
    }

    #[test]
    fn round_robin_distribution_matches_figure_4() {
        let r = default_run();
        // 100 requests over 11 SeDs: ten SeDs get 9, one gets 10.
        let mut counts: Vec<usize> = r.sed_rows.iter().map(|(_, c, _)| *c).collect();
        assert_eq!(counts.len(), 11);
        counts.sort_unstable();
        assert_eq!(&counts[..10], &[9; 10]);
        assert_eq!(counts[10], 10);
    }

    #[test]
    fn makespan_matches_paper_band() {
        // Paper: 16 h 18 m 43 s = 58 723 s. Accept the band 14 h – 18 h.
        let r = default_run();
        assert!(
            r.makespan > 14.0 * 3600.0 && r.makespan < 18.0 * 3600.0,
            "makespan {} = {}",
            r.makespan,
            fmt_hms(r.makespan)
        );
    }

    #[test]
    fn part_durations_match_paper() {
        let r = default_run();
        // Part 1: 1 h 15 m 11 s on the reference SeD; scheduler may land it
        // on any SeD → accept a speed-factor band.
        assert!(
            r.part1_s > 4511.0 / 1.2 && r.part1_s < 4511.0 / 0.75,
            "part1 {}",
            r.part1_s
        );
        // Part 2 mean: 1 h 24 m 1 s = 5041 s ± 10%.
        assert!(
            (r.part2_mean_s - 5041.0).abs() < 0.10 * 5041.0,
            "part2 mean {}",
            r.part2_mean_s
        );
    }

    #[test]
    fn per_sed_imbalance_matches_figure_4_right() {
        // ~15 h on the slowest cluster vs ~10.5 h on the fastest.
        let r = default_run();
        let toulouse: f64 = r
            .sed_rows
            .iter()
            .filter(|(l, _, _)| l.contains("toulouse"))
            .map(|(_, _, b)| *b)
            .fold(0.0, f64::max);
        let nancy: f64 = r
            .sed_rows
            .iter()
            .filter(|(l, _, _)| l.contains("nancy"))
            .map(|(_, _, b)| *b)
            .fold(0.0, f64::max);
        assert!(
            toulouse > 13.5 * 3600.0 && toulouse < 16.5 * 3600.0,
            "toulouse busy {}",
            fmt_hms(toulouse)
        );
        assert!(
            nancy > 9.0 * 3600.0 && nancy < 12.0 * 3600.0,
            "nancy busy {}",
            fmt_hms(nancy)
        );
        assert!(toulouse / nancy > 1.25, "imbalance lost");
    }

    #[test]
    fn finding_time_near_constant_50ms() {
        let r = default_run();
        assert_eq!(r.finding.len(), 101);
        assert!(
            (r.finding_mean - 0.0498).abs() < 0.005,
            "finding mean {}",
            r.finding_mean
        );
        for (_, f) in &r.finding {
            assert!(*f > 0.04 && *f < 0.06, "finding outlier {f}");
        }
    }

    #[test]
    fn latency_grows_rapidly_for_late_requests() {
        // Figure 5 bottom: early requests see ms latency; late ones wait for
        // hours behind earlier sub-simulations.
        let r = default_run();
        let lat: Vec<f64> = r
            .latency
            .iter()
            .filter(|(req, _)| *req >= 1)
            .map(|(_, l)| *l)
            .collect();
        assert_eq!(lat.len(), 100);
        let first_11_max = lat[..11].iter().cloned().fold(0.0f64, f64::max);
        let last_max = lat.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            first_11_max < 60.0,
            "first wave should start almost immediately: {first_11_max}"
        );
        assert!(
            last_max > 3600.0 * 5.0,
            "late requests should queue for hours: {last_max}"
        );
    }

    #[test]
    fn overhead_is_negligible_and_near_70ms() {
        let r = default_run();
        assert!(
            r.overhead_mean > 0.050 && r.overhead_mean < 0.110,
            "overhead mean {}",
            r.overhead_mean
        );
        let total_overhead = r.overhead_mean * 101.0;
        assert!(total_overhead < 15.0, "total overhead {total_overhead}");
        assert!(total_overhead / r.makespan < 1e-3);
    }

    #[test]
    fn sequential_baseline_exceeds_141h_and_speedup_holds() {
        let r = default_run();
        assert!(
            r.sequential_s > 141.0 * 3600.0,
            "sequential {}",
            fmt_hms(r.sequential_s)
        );
        let s = r.speedup();
        assert!(s > 7.0 && s < 11.0, "speedup {s}");
    }

    #[test]
    fn weighted_speed_beats_round_robin_makespan() {
        // The paper's conjecture: "a better makespan could be attained by
        // writing a plug-in scheduler". Verify it.
        let rr = default_run();
        let ws = run_campaign(CampaignConfig {
            scheduler: Arc::new(WeightedSpeed),
            ..CampaignConfig::default()
        });
        assert!(
            ws.makespan < rr.makespan,
            "weighted_speed {} !< round_robin {}",
            fmt_hms(ws.makespan),
            fmt_hms(rr.makespan)
        );
        let mq = run_campaign(CampaignConfig {
            scheduler: Arc::new(MinQueue),
            ..CampaignConfig::default()
        });
        // MinQueue degenerates to round-robin-ish here but must still finish.
        assert!(mq.makespan > 0.0);
    }

    #[test]
    fn sed_failure_is_recovered() {
        // Kill a Toulouse SeD two hours in: every request still completes,
        // its orphans re-scheduled elsewhere, at the cost of a longer (or at
        // least not shorter) makespan.
        let baseline = default_run();
        let r = run_campaign(CampaignConfig {
            failure: Some(SedFailure {
                label_contains: "toulouse-violette/0".into(),
                at: 2.0 * 3600.0,
            }),
            ..CampaignConfig::default()
        });
        // All 100 sub-simulations executed to completion somewhere.
        let done: usize = r.sed_rows.iter().map(|(_, c, _)| *c).sum();
        assert_eq!(done, 100);
        // The dead SeD stopped early: its busy time is well below baseline's.
        let busy_dead = r
            .sed_rows
            .iter()
            .find(|(l, _, _)| l.contains("toulouse-violette/0"))
            .map(|(_, _, b)| *b)
            .unwrap_or(0.0);
        let busy_baseline = baseline
            .sed_rows
            .iter()
            .find(|(l, _, _)| l.contains("toulouse-violette/0"))
            .map(|(_, _, b)| *b)
            .unwrap();
        assert!(
            busy_dead < 0.5 * busy_baseline,
            "dead SeD kept working: {busy_dead} vs {busy_baseline}"
        );
        // Recovery costs: more finding events than 101 (resubmissions), and
        // the makespan does not improve.
        assert!(r.finding.len() >= 101);
        assert!(r.makespan >= baseline.makespan * 0.99);
        // Ten live SeDs absorb the re-submitted work.
        assert!(r.gantt.events.iter().all(|e| e.start.is_finite()));
    }

    #[test]
    fn resubmission_count_matches_finding_events_exactly() {
        // Every submit() records exactly one Finding event, so in any run
        // resubmissions == finding events − (1 + n_zoom). The dead-SeD
        // *transfer race* path (failure strikes while a request is on the
        // wire to the victim) used to resubmit without counting — and
        // decrement an outstanding counter the failure handler had
        // already zeroed. Time the failure into the middle of the
        // victim's first part-2 Submission window to force that path.
        let baseline = default_run();
        let victim = "toulouse-violette/0";
        let sub = baseline
            .gantt
            .events
            .iter()
            .filter(|e| {
                e.kind == TraceKind::Submission && e.resource.contains(victim) && e.request >= 1
            })
            .min_by(|a, b| a.start.partial_cmp(&b.start).unwrap())
            .expect("victim never chosen in the baseline run");
        let mid = 0.5 * (sub.start + sub.end);

        // Fresh scheduler per run: RoundRobin carries a cursor, so reusing
        // one Arc across runs changes the assignment (and determinism).
        let cfg = || CampaignConfig {
            failure: Some(SedFailure {
                label_contains: victim.into(),
                at: mid,
            }),
            ..CampaignConfig::default()
        };
        let r = run_campaign(cfg());
        let done: usize = r.sed_rows.iter().map(|(_, c, _)| *c).sum();
        assert_eq!(done, 100, "requests lost in the transfer race");
        assert!(r.resubmissions >= 1, "the race produced no resubmission");
        assert_eq!(
            r.resubmissions,
            r.finding.len() - (1 + cfg().n_zoom as usize),
            "SedFailure accounting out of sync with the finding trace"
        );
        // And the injected run stays deterministic.
        let again = run_campaign(cfg());
        assert_eq!(again.resubmissions, r.resubmissions);
        assert_eq!(again.makespan, r.makespan);
    }

    #[test]
    fn failure_of_unknown_label_is_harmless() {
        let r = run_campaign(CampaignConfig {
            failure: Some(SedFailure {
                label_contains: "no-such-sed".into(),
                at: 100.0,
            }),
            ..CampaignConfig::default()
        });
        let done: usize = r.sed_rows.iter().map(|(_, c, _)| *c).sum();
        assert_eq!(done, 100);
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = default_run();
        let b = default_run();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.sed_rows, b.sed_rows);
        assert_eq!(a.latency, b.latency);
    }

    #[test]
    fn scales_to_other_request_counts() {
        let r = run_campaign(CampaignConfig {
            n_zoom: 23,
            scheduler: Arc::new(RoundRobin::new()),
            ..CampaignConfig::default()
        });
        let total: usize = r.sed_rows.iter().map(|(_, c, _)| *c).sum();
        assert_eq!(total, 23);
    }

    #[test]
    fn fmt_hms_formats() {
        assert_eq!(fmt_hms(58723.0), "16h18m43s");
        assert_eq!(fmt_hms(0.4), "0h00m00s");
    }
}
