//! The client-side zoom workflow.
//!
//! The paper's client performs a fixed two-part protocol (Section 5.1): one
//! `ramsesZoom1` call, then — on receiving its results — simultaneous
//! `ramsesZoom2` calls for the halos of interest. [`ZoomWorkflow`] packages
//! that protocol over the live middleware so examples, tests and users don't
//! re-implement the catalog parsing and request fan-out.

use crate::archive;
use crate::namelist::Namelist;
use crate::services::{status, zoom1_profile, zoom2_profile};
use diet_core::client::{CallStats, DietClient};
use diet_core::dag::{DagExpander, DagInput, DagNodeSpec, DagOutcome, WorkflowSpec};
use diet_core::data::DietValue;
use diet_core::error::DietError;
use diet_core::hierarchy::RemoteAgentClient;
use diet_core::profile::{ramses_zoom2_desc, Profile};
use std::sync::Arc;
use std::time::Duration;

/// One halo parsed back from a `ramsesZoom1` result catalog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogHalo {
    pub id: u32,
    pub npart: usize,
    pub mass_msun: f64,
    /// Position as integer percent of the box (the wire format of the
    /// paper's `cx, cy, cz` profile arguments, which are `DIET_INT`s).
    pub center_pct: [i32; 3],
}

/// Result of one zoom re-simulation.
#[derive(Debug, Clone)]
pub struct ZoomResult {
    pub halo: CatalogHalo,
    pub server: String,
    pub stats: CallStats,
    /// Error code from the service (0 = success).
    pub status: i32,
    /// Number of galaxies in the returned catalog.
    pub n_galaxies: usize,
    /// Number of merger-tree nodes.
    pub n_tree_nodes: usize,
}

/// Outcome of the full workflow.
#[derive(Debug, Clone)]
pub struct WorkflowReport {
    pub halos_found: usize,
    pub zooms: Vec<ZoomResult>,
    /// Part-1 call stats.
    pub part1: CallStats,
}

impl WorkflowReport {
    /// Total middleware overhead across all calls (finding + send).
    pub fn total_overhead(&self) -> f64 {
        self.part1.overhead() + self.zooms.iter().map(|z| z.stats.overhead()).sum::<f64>()
    }

    pub fn all_succeeded(&self) -> bool {
        self.zooms.iter().all(|z| z.status == status::OK)
    }
}

/// The workflow driver.
pub struct ZoomWorkflow {
    pub namelist: Namelist,
    /// Particle resolution per dimension for both parts.
    pub resolution: i32,
    /// Box size, Mpc/h (integer — the paper ships it as `DIET_INT`).
    pub size_mpc_h: i32,
    /// Zoom levels per re-simulation (the paper's `nbBox`).
    pub nb_box: i32,
    /// Re-simulate at most this many halos, most massive first.
    pub max_zooms: usize,
}

impl ZoomWorkflow {
    pub fn new(namelist: Namelist, resolution: i32, size_mpc_h: i32) -> Self {
        ZoomWorkflow {
            namelist,
            resolution,
            size_mpc_h,
            nb_box: 2,
            max_zooms: 3,
        }
    }

    /// Parse the halo catalog text returned by `ramsesZoom1`.
    pub fn parse_catalog(text: &str) -> Vec<CatalogHalo> {
        let mut out: Vec<CatalogHalo> = text
            .lines()
            .skip(1)
            .filter_map(|l| {
                let f: Vec<&str> = l.split_whitespace().collect();
                let id: u32 = f.first()?.parse().ok()?;
                let npart: usize = f.get(1)?.parse().ok()?;
                let mass: f64 = f.get(2)?.parse().ok()?;
                let mut c = [0i32; 3];
                #[allow(clippy::needless_range_loop)]
                for d in 0..3 {
                    let x: f64 = f.get(3 + d)?.parse().ok()?;
                    c[d] = (x * 100.0).round() as i32;
                }
                Some(CatalogHalo {
                    id,
                    npart,
                    mass_msun: mass,
                    center_pct: c,
                })
            })
            .collect();
        out.sort_by(|a, b| b.mass_msun.partial_cmp(&a.mass_msun).unwrap());
        out
    }

    /// Extract the halo catalog from a completed `ramsesZoom1` profile.
    fn halos_from_part1(r1: &Profile) -> Result<Vec<CatalogHalo>, DietError> {
        let code = r1.get_i32(3)?;
        if code != status::OK {
            return Err(DietError::SolveFailed {
                service: "ramsesZoom1".into(),
                status: code,
            });
        }
        let (_, tar) = r1.get_file(2)?;
        let entries =
            archive::unpack(tar).map_err(|e| DietError::Codec(format!("result tar: {e}")))?;
        let catalog = archive::find(&entries, "halos/catalog.txt")
            .ok_or_else(|| DietError::Codec("missing halo catalog".into()))?;
        Ok(Self::parse_catalog(&String::from_utf8_lossy(&catalog.data)))
    }

    /// Run the whole protocol: part 1, catalog extraction, simultaneous
    /// part-2 calls, result collection.
    pub fn run(&self, client: &DietClient) -> Result<WorkflowReport, DietError> {
        // ---- part 1 -------------------------------------------------------
        let (r1, part1) = client.call(zoom1_profile(&self.namelist, self.resolution))?;
        let halos = Self::halos_from_part1(&r1)?;

        // ---- part 2: all requests issued before any wait ------------------
        let targets: Vec<CatalogHalo> = halos.iter().take(self.max_zooms).copied().collect();
        let mut handles = Vec::with_capacity(targets.len());
        for h in &targets {
            let p = zoom2_profile(
                &self.namelist,
                self.resolution,
                self.size_mpc_h,
                h.center_pct,
                self.nb_box,
            );
            handles.push((*h, client.async_call(p)?));
        }

        let mut zooms = Vec::with_capacity(handles.len());
        for (halo, handle) in handles {
            let server = handle.server().to_string();
            let (r2, stats) = handle.wait()?;
            client.record(&server, stats);
            let code = r2.get_i32(8)?;
            let (n_galaxies, n_tree_nodes) = if code == status::OK {
                let (_, tar) = r2.get_file(7)?;
                let entries =
                    archive::unpack(tar).map_err(|e| DietError::Codec(format!("zoom tar: {e}")))?;
                let count_rows = |name: &str| {
                    archive::find(&entries, name)
                        .map(|e| {
                            String::from_utf8_lossy(&e.data)
                                .lines()
                                .count()
                                .saturating_sub(1)
                        })
                        .unwrap_or(0)
                };
                (
                    count_rows("galaxies/catalog.txt"),
                    count_rows("tree/mergertree.txt"),
                )
            } else {
                (0, 0)
            };
            zooms.push(ZoomResult {
                halo,
                server,
                stats,
                status: code,
                n_galaxies,
                n_tree_nodes,
            });
        }

        Ok(WorkflowReport {
            halos_found: halos.len(),
            zooms,
            part1,
        })
    }

    /// The workflow as a task DAG for the MA-side engine: one `ramsesZoom1`
    /// root carrying the [`zoom_fanout_expander`] hook — the part-2 fan-out
    /// is only known once part 1's halo catalog exists, so the zoom2 nodes
    /// are added engine-side when the root completes. Each zoom2 node wires
    /// its namelist (arg 0) from the root's published copy: the catalog and
    /// every intermediate stay on the grid.
    pub fn dag_spec(&self) -> WorkflowSpec {
        let mut root = DagNodeSpec::new(0, zoom1_profile(&self.namelist, self.resolution));
        root.expander = Some("zoom_fanout".into());
        root.params = vec![
            ("resolution".into(), self.resolution.to_string()),
            ("size_mpc_h".into(), self.size_mpc_h.to_string()),
            ("nb_box".into(), self.nb_box.to_string()),
            ("max_zooms".into(), self.max_zooms.to_string()),
        ];
        WorkflowSpec {
            name: "zoom-pipeline".into(),
            nodes: vec![root],
        }
    }

    /// Run the protocol as an engine-scheduled DAG (the MA-DAG path):
    /// submit [`dag_spec`](Self::dag_spec) through `ma`, block until the
    /// engine finishes every node, and fold the outcome into a
    /// [`DagWorkflowReport`]. Unlike [`run`](Self::run), no intermediate
    /// snapshot crosses the client link — the report carries status codes
    /// and grid data-refs, with payloads fetchable on demand.
    pub fn run_dag(
        &self,
        client: &DietClient,
        ma: &RemoteAgentClient,
        timeout: Duration,
    ) -> Result<DagWorkflowReport, DietError> {
        let handle = client.submit_dag(ma, &self.dag_spec())?;
        let (outcome, _events) = client.wait_dag(ma, &handle, timeout)?;
        Ok(DagWorkflowReport::from_outcome(handle.trace_id, outcome))
    }

    /// Run the protocol as a durable campaign: part 1 is called directly
    /// (its halo catalog must come back to the client to plan the
    /// fan-out), then every `ramsesZoom2` request is submitted to the
    /// jobserver as one crash-recoverable campaign. The jobserver owns
    /// dispatch, retries, SeD failover, and — because every transition is
    /// WAL-logged — survives its own `kill -9` mid-campaign without
    /// recomputing finished zooms. Re-running with the same `name` after
    /// a *client* crash re-attaches instead of duplicating the work.
    #[allow(clippy::too_many_arguments)]
    pub fn run_via_jobserver(
        &self,
        client: &DietClient,
        ma: &RemoteAgentClient,
        pool: &diet_core::transport::TcpSedPool,
        policy: &diet_core::RetryPolicy,
        job: &diet_core::jobserver::JobClient,
        name: &str,
        poll: Duration,
        timeout: Duration,
    ) -> Result<JobWorkflowReport, DietError> {
        let (r1, part1) = client.call_distributed(
            ma,
            pool,
            zoom1_profile(&self.namelist, self.resolution),
            policy,
        )?;
        let halos = Self::halos_from_part1(&r1)?;
        let tasks: Vec<diet_core::jobserver::TaskPayload> = halos
            .iter()
            .take(self.max_zooms)
            .map(|h| {
                diet_core::jobserver::TaskPayload::Call(zoom2_profile(
                    &self.namelist,
                    self.resolution,
                    self.size_mpc_h,
                    h.center_pct,
                    self.nb_box,
                ))
            })
            .collect();
        let campaign = crate::campaign::run_live_campaign(job, name, tasks, poll, timeout)?;
        Ok(JobWorkflowReport {
            halos_found: halos.len(),
            part1,
            campaign,
        })
    }
}

/// Outcome of [`ZoomWorkflow::run_via_jobserver`]: the direct part-1 call
/// plus the durable part-2 campaign.
#[derive(Debug, Clone)]
pub struct JobWorkflowReport {
    pub halos_found: usize,
    /// Part-1 call stats (direct client call, as in [`ZoomWorkflow::run`]).
    pub part1: CallStats,
    /// The jobserver-executed zoom fan-out.
    pub campaign: crate::campaign::LiveCampaignReport,
}

impl JobWorkflowReport {
    pub fn all_succeeded(&self) -> bool {
        self.campaign.all_done()
    }
}

/// One zoom2 node folded out of a [`DagOutcome`].
#[derive(Debug, Clone)]
pub struct DagZoomResult {
    pub node: u32,
    /// SeD whose reply won.
    pub server: String,
    /// Service status code (arg 8), or -1 when the node never completed.
    pub status: i32,
    /// Grid ref of the result tarball (fetch via the pool if wanted).
    pub tar_id: Option<String>,
    pub duration_ms: u64,
    pub speculated: bool,
    pub attempts: u32,
}

/// Outcome of [`ZoomWorkflow::run_dag`]: the engine-side counterpart of
/// [`WorkflowReport`] — refs and codes instead of payloads.
#[derive(Debug, Clone)]
pub struct DagWorkflowReport {
    pub dag_id: u64,
    /// The workflow trace every node span stitched under.
    pub trace_id: u64,
    pub ok: bool,
    pub makespan_ms: u64,
    /// Part-1 status code (arg 3), or -1 when the root failed outright.
    pub part1_status: i32,
    pub zooms: Vec<DagZoomResult>,
}

impl DagWorkflowReport {
    pub fn from_outcome(trace_id: u64, outcome: DagOutcome) -> Self {
        let scalar = |n: &diet_core::dag::DagNodeOutcome, arg: u32| {
            n.scalars
                .iter()
                .find(|(a, _)| *a == arg)
                .map(|(_, v)| *v as i32)
        };
        let part1_status = outcome
            .nodes
            .iter()
            .find(|n| n.service == "ramsesZoom1")
            .and_then(|n| scalar(n, 3))
            .unwrap_or(-1);
        let zooms = outcome
            .nodes
            .iter()
            .filter(|n| n.service == "ramsesZoom2")
            .map(|n| DagZoomResult {
                node: n.node,
                server: n.sed.clone(),
                status: scalar(n, 8).unwrap_or(n.status),
                tar_id: n
                    .outputs
                    .iter()
                    .find(|(a, _)| *a == 7)
                    .map(|(_, id)| id.clone()),
                duration_ms: n.duration_ms,
                speculated: n.speculated,
                attempts: n.attempts,
            })
            .collect();
        DagWorkflowReport {
            dag_id: outcome.dag_id,
            trace_id,
            ok: outcome.ok,
            makespan_ms: outcome.makespan_ms,
            part1_status,
            zooms,
        }
    }

    pub fn all_succeeded(&self) -> bool {
        self.ok
            && self.part1_status == status::OK
            && !self.zooms.is_empty()
            && self.zooms.iter().all(|z| z.status == status::OK)
    }
}

/// The dynamic fan-out hook behind [`ZoomWorkflow::dag_spec`], registered
/// engine-side under the name `"zoom_fanout"`. When the `ramsesZoom1` root
/// completes, the expander pulls the result tarball *within the grid*
/// (catalog lookup + SeD fetch — nothing reaches the client), parses the
/// halo catalog, and emits one `ramsesZoom2` node per selected halo. Each
/// node's namelist argument is wired from the root's published copy, so
/// the engine places zooms by data locality.
pub fn zoom_fanout_expander() -> DagExpander {
    Arc::new(|ctx| {
        let param_i32 = |key: &str, default: i32| {
            ctx.param(key)
                .and_then(|s| s.parse::<i32>().ok())
                .unwrap_or(default)
        };
        let resolution = param_i32("resolution", 8);
        let size_mpc_h = param_i32("size_mpc_h", 50);
        let nb_box = param_i32("nb_box", 2);
        let max_zooms = param_i32("max_zooms", 3).max(0) as usize;

        let code = ctx.reply.get_i32(3)?;
        if code != status::OK {
            return Err(DietError::SolveFailed {
                service: "ramsesZoom1".into(),
                status: code,
            });
        }
        let tar_id = ctx
            .output_id(2)
            .ok_or_else(|| DietError::Rejected("zoom1 published no result tarball".into()))?;
        let tar = match (ctx.fetch)(tar_id)? {
            DietValue::File { data, .. } => data,
            other => {
                return Err(DietError::Rejected(format!(
                    "zoom1 tarball ref resolved to {}",
                    other.type_name()
                )))
            }
        };
        let entries =
            archive::unpack(&tar).map_err(|e| DietError::Codec(format!("result tar: {e}")))?;
        let catalog = archive::find(&entries, "halos/catalog.txt")
            .ok_or_else(|| DietError::Codec("missing halo catalog".into()))?;
        let halos = ZoomWorkflow::parse_catalog(&String::from_utf8_lossy(&catalog.data));

        let mut nodes = Vec::new();
        for (k, halo) in halos.iter().take(max_zooms).enumerate() {
            let d = ramses_zoom2_desc();
            let mut p = Profile::alloc(&d);
            // Arg 0 (the namelist) stays Null here: the engine wires it to
            // the root's published copy at launch.
            let scalars = [
                (1, resolution),
                (2, size_mpc_h),
                (3, halo.center_pct[0]),
                (4, halo.center_pct[1]),
                (5, halo.center_pct[2]),
                (6, nb_box),
            ];
            for (i, v) in scalars {
                p.set(
                    i,
                    DietValue::ScalarI32(v),
                    diet_core::data::Persistence::Volatile,
                )?;
            }
            let mut n = DagNodeSpec::new(ctx.next_id + k as u32, p);
            n.deps = vec![ctx.node];
            n.inputs = vec![DagInput {
                arg: 0,
                from_node: ctx.node,
                from_arg: 0,
            }];
            nodes.push(n);
        }
        Ok(nodes)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_parser_sorts_by_mass() {
        let text = "# id npart mass_msun x y z vx vy vz radius sigma_v spin\n\
                    0 10 1.0e14 0.1 0.2 0.3 0 0 0 0.01 0.1 0.02\n\
                    1 30 5.0e14 0.5 0.6 0.7 0 0 0 0.02 0.1 0.02\n\
                    2 20 2.0e14 0.9 0.8 0.7 0 0 0 0.015 0.1 0.02\n";
        let halos = ZoomWorkflow::parse_catalog(text);
        assert_eq!(halos.len(), 3);
        assert_eq!(halos[0].id, 1);
        assert_eq!(halos[0].center_pct, [50, 60, 70]);
        assert_eq!(halos[1].id, 2);
        assert_eq!(halos[2].npart, 10);
    }

    #[test]
    fn catalog_parser_skips_malformed_lines() {
        let text = "# header\nnot a number at all\n0 5 1e14 0.1 0.1 0.1 0 0 0 0.01 0 0\n";
        let halos = ZoomWorkflow::parse_catalog(text);
        assert_eq!(halos.len(), 1);
    }

    #[test]
    fn empty_catalog_gives_no_targets() {
        let halos = ZoomWorkflow::parse_catalog("# header only\n");
        assert!(halos.is_empty());
    }

    use crate::namelist::default_run_namelist;
    use crate::services::{cosmology_service_table, zoom2_failure_table, FailOnce};
    use diet_core::deploy::DeploymentSpec;
    use diet_core::sched::RoundRobin;

    fn quick_namelist() -> Namelist {
        let mut nl = default_run_namelist(8, 50.0);
        nl.set("INIT_PARAMS", "aexp_ini", 0.1);
        nl.set("OUTPUT_PARAMS", "aout", "0.5, 1.0");
        nl
    }

    fn quick_workflow(nb_box: i32) -> ZoomWorkflow {
        ZoomWorkflow {
            namelist: quick_namelist(),
            resolution: 8,
            size_mpc_h: 50,
            nb_box,
            max_zooms: 3,
        }
    }

    // A part-2 zoom failing must come back as an in-band status code on
    // that zoom, not abort the rest of the fan-out: `nb_box = 0` makes
    // every `ramsesZoom2` reply BAD_ZOOM, yet the report still carries
    // one entry per planned zoom.
    #[test]
    fn part2_failures_do_not_abort_the_fanout() {
        let spec = DeploymentSpec::paper_shape(&[("nancy", 1.15, 2), ("orsay", 1.0, 2)]);
        let (ma, seds) = spec
            .instantiate(Arc::new(RoundRobin::new()), |_| cosmology_service_table())
            .unwrap();
        let client = DietClient::initialize(ma);

        let workflow = quick_workflow(0);
        let report = workflow.run(&client).unwrap();

        assert!(!report.all_succeeded());
        assert!(!report.zooms.is_empty());
        assert_eq!(
            report.zooms.len(),
            report.halos_found.min(workflow.max_zooms),
            "a failing zoom must not abort the remaining zooms"
        );
        for z in &report.zooms {
            assert_eq!(z.status, status::BAD_ZOOM);
            assert_eq!(z.n_galaxies, 0, "failed zooms yield no galaxy counts");
            assert_eq!(z.n_tree_nodes, 0);
        }

        for s in seds {
            s.shutdown();
        }
    }

    // Mixed outcome: exactly one zoom2 solve (campaign-wide) fails, the
    // siblings run to completion with OK status — partial failure is
    // isolated per zoom.
    #[test]
    fn single_zoom_failure_leaves_siblings_ok() {
        let trip = FailOnce::new();
        let spec = DeploymentSpec::paper_shape(&[("nancy", 1.15, 2), ("orsay", 1.0, 2)]);
        let (ma, seds) = spec
            .instantiate(Arc::new(RoundRobin::new()), {
                let trip = trip.clone();
                move |_| zoom2_failure_table(trip.clone())
            })
            .unwrap();
        let client = DietClient::initialize(ma);

        let report = quick_workflow(2).run(&client).unwrap();

        assert!(!report.all_succeeded());
        let failed: Vec<_> = report
            .zooms
            .iter()
            .filter(|z| z.status != status::OK)
            .collect();
        assert_eq!(failed.len(), 1, "exactly one zoom should have failed");
        assert_eq!(failed[0].status, status::BAD_ZOOM);
        assert_eq!(failed[0].n_galaxies, 0);
        assert!(
            report.zooms.len() > 1,
            "need sibling zooms to observe isolation"
        );
        for z in report.zooms.iter().filter(|z| z.status == status::OK) {
            // Siblings completed their full post-processing.
            assert!(z.n_tree_nodes > 0 || z.n_galaxies > 0 || z.status == status::OK);
        }

        for s in seds {
            s.shutdown();
        }
    }

    // The expander variant of the same contract: a non-OK part-1 reply is
    // a hard error (nothing to fan out), surfaced as SolveFailed.
    #[test]
    fn fanout_expander_rejects_failed_part1() {
        let d = diet_core::profile::ramses_zoom1_desc();
        let mut reply = Profile::alloc(&d);
        reply
            .set(
                3,
                DietValue::ScalarI32(status::BAD_RESOLUTION),
                diet_core::data::Persistence::Volatile,
            )
            .unwrap();
        let ctx = diet_core::dag::ExpandCtx {
            dag_id: 1,
            node: 0,
            reply: &reply,
            outputs: &[],
            params: &[],
            next_id: 1,
            fetch: &|_id: &str| Err(DietError::DataNotFound("unused".into())),
        };
        let err = zoom_fanout_expander()(&ctx).unwrap_err();
        match err {
            DietError::SolveFailed { service, status } => {
                assert_eq!(service, "ramsesZoom1");
                assert_eq!(status, crate::services::status::BAD_RESOLUTION);
            }
            other => panic!("expected SolveFailed, got {other:?}"),
        }
    }
}
