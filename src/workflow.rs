//! The client-side zoom workflow.
//!
//! The paper's client performs a fixed two-part protocol (Section 5.1): one
//! `ramsesZoom1` call, then — on receiving its results — simultaneous
//! `ramsesZoom2` calls for the halos of interest. [`ZoomWorkflow`] packages
//! that protocol over the live middleware so examples, tests and users don't
//! re-implement the catalog parsing and request fan-out.

use crate::archive;
use crate::namelist::Namelist;
use crate::services::{status, zoom1_profile, zoom2_profile};
use diet_core::client::{CallStats, DietClient};
use diet_core::error::DietError;

/// One halo parsed back from a `ramsesZoom1` result catalog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogHalo {
    pub id: u32,
    pub npart: usize,
    pub mass_msun: f64,
    /// Position as integer percent of the box (the wire format of the
    /// paper's `cx, cy, cz` profile arguments, which are `DIET_INT`s).
    pub center_pct: [i32; 3],
}

/// Result of one zoom re-simulation.
#[derive(Debug, Clone)]
pub struct ZoomResult {
    pub halo: CatalogHalo,
    pub server: String,
    pub stats: CallStats,
    /// Error code from the service (0 = success).
    pub status: i32,
    /// Number of galaxies in the returned catalog.
    pub n_galaxies: usize,
    /// Number of merger-tree nodes.
    pub n_tree_nodes: usize,
}

/// Outcome of the full workflow.
#[derive(Debug, Clone)]
pub struct WorkflowReport {
    pub halos_found: usize,
    pub zooms: Vec<ZoomResult>,
    /// Part-1 call stats.
    pub part1: CallStats,
}

impl WorkflowReport {
    /// Total middleware overhead across all calls (finding + send).
    pub fn total_overhead(&self) -> f64 {
        self.part1.overhead() + self.zooms.iter().map(|z| z.stats.overhead()).sum::<f64>()
    }

    pub fn all_succeeded(&self) -> bool {
        self.zooms.iter().all(|z| z.status == status::OK)
    }
}

/// The workflow driver.
pub struct ZoomWorkflow {
    pub namelist: Namelist,
    /// Particle resolution per dimension for both parts.
    pub resolution: i32,
    /// Box size, Mpc/h (integer — the paper ships it as `DIET_INT`).
    pub size_mpc_h: i32,
    /// Zoom levels per re-simulation (the paper's `nbBox`).
    pub nb_box: i32,
    /// Re-simulate at most this many halos, most massive first.
    pub max_zooms: usize,
}

impl ZoomWorkflow {
    pub fn new(namelist: Namelist, resolution: i32, size_mpc_h: i32) -> Self {
        ZoomWorkflow {
            namelist,
            resolution,
            size_mpc_h,
            nb_box: 2,
            max_zooms: 3,
        }
    }

    /// Parse the halo catalog text returned by `ramsesZoom1`.
    pub fn parse_catalog(text: &str) -> Vec<CatalogHalo> {
        let mut out: Vec<CatalogHalo> = text
            .lines()
            .skip(1)
            .filter_map(|l| {
                let f: Vec<&str> = l.split_whitespace().collect();
                let id: u32 = f.first()?.parse().ok()?;
                let npart: usize = f.get(1)?.parse().ok()?;
                let mass: f64 = f.get(2)?.parse().ok()?;
                let mut c = [0i32; 3];
                #[allow(clippy::needless_range_loop)]
                for d in 0..3 {
                    let x: f64 = f.get(3 + d)?.parse().ok()?;
                    c[d] = (x * 100.0).round() as i32;
                }
                Some(CatalogHalo {
                    id,
                    npart,
                    mass_msun: mass,
                    center_pct: c,
                })
            })
            .collect();
        out.sort_by(|a, b| b.mass_msun.partial_cmp(&a.mass_msun).unwrap());
        out
    }

    /// Run the whole protocol: part 1, catalog extraction, simultaneous
    /// part-2 calls, result collection.
    pub fn run(&self, client: &DietClient) -> Result<WorkflowReport, DietError> {
        // ---- part 1 -------------------------------------------------------
        let (r1, part1) = client.call(zoom1_profile(&self.namelist, self.resolution))?;
        let code = r1.get_i32(3)?;
        if code != status::OK {
            return Err(DietError::SolveFailed {
                service: "ramsesZoom1".into(),
                status: code,
            });
        }
        let (_, tar) = r1.get_file(2)?;
        let entries = archive::unpack(&tar.clone())
            .map_err(|e| DietError::Codec(format!("result tar: {e}")))?;
        let catalog = archive::find(&entries, "halos/catalog.txt")
            .ok_or_else(|| DietError::Codec("missing halo catalog".into()))?;
        let halos = Self::parse_catalog(&String::from_utf8_lossy(&catalog.data));

        // ---- part 2: all requests issued before any wait ------------------
        let targets: Vec<CatalogHalo> = halos.iter().take(self.max_zooms).copied().collect();
        let mut handles = Vec::with_capacity(targets.len());
        for h in &targets {
            let p = zoom2_profile(
                &self.namelist,
                self.resolution,
                self.size_mpc_h,
                h.center_pct,
                self.nb_box,
            );
            handles.push((*h, client.async_call(p)?));
        }

        let mut zooms = Vec::with_capacity(handles.len());
        for (halo, handle) in handles {
            let server = handle.server().to_string();
            let (r2, stats) = handle.wait()?;
            client.record(&server, stats);
            let code = r2.get_i32(8)?;
            let (n_galaxies, n_tree_nodes) = if code == status::OK {
                let (_, tar) = r2.get_file(7)?;
                let entries = archive::unpack(&tar.clone())
                    .map_err(|e| DietError::Codec(format!("zoom tar: {e}")))?;
                let count_rows = |name: &str| {
                    archive::find(&entries, name)
                        .map(|e| {
                            String::from_utf8_lossy(&e.data)
                                .lines()
                                .count()
                                .saturating_sub(1)
                        })
                        .unwrap_or(0)
                };
                (
                    count_rows("galaxies/catalog.txt"),
                    count_rows("tree/mergertree.txt"),
                )
            } else {
                (0, 0)
            };
            zooms.push(ZoomResult {
                halo,
                server,
                stats,
                status: code,
                n_galaxies,
                n_tree_nodes,
            });
        }

        Ok(WorkflowReport {
            halos_found: halos.len(),
            zooms,
            part1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_parser_sorts_by_mass() {
        let text = "# id npart mass_msun x y z vx vy vz radius sigma_v spin\n\
                    0 10 1.0e14 0.1 0.2 0.3 0 0 0 0.01 0.1 0.02\n\
                    1 30 5.0e14 0.5 0.6 0.7 0 0 0 0.02 0.1 0.02\n\
                    2 20 2.0e14 0.9 0.8 0.7 0 0 0 0.015 0.1 0.02\n";
        let halos = ZoomWorkflow::parse_catalog(text);
        assert_eq!(halos.len(), 3);
        assert_eq!(halos[0].id, 1);
        assert_eq!(halos[0].center_pct, [50, 60, 70]);
        assert_eq!(halos[1].id, 2);
        assert_eq!(halos[2].npart, 10);
    }

    #[test]
    fn catalog_parser_skips_malformed_lines() {
        let text = "# header\nnot a number at all\n0 5 1e14 0.1 0.1 0.1 0 0 0 0.01 0 0\n";
        let halos = ZoomWorkflow::parse_catalog(text);
        assert_eq!(halos.len(), 1);
    }

    #[test]
    fn empty_catalog_gives_no_targets() {
        let halos = ZoomWorkflow::parse_catalog("# header only\n");
        assert!(halos.is_empty());
    }
}
