//! Bridge between the platform world and the middleware world: turn a
//! gridsim [`DeploymentPlan`] (OAR reservations on Grid'5000 clusters) into
//! a diet-core [`DeploymentSpec`] (MA / LA / SeD hierarchy), completing the
//! paper's Section 5.1 pipeline: reserve → deploy hierarchy → register
//! services → run the campaign.

use diet_core::deploy::{DeploymentSpec, LaSpec, SedSpec};
use gridsim::plan::DeploymentPlan;
use gridsim::platform::Grid5000;

/// Build the middleware deployment from a reservation plan: one Local Agent
/// per cluster that obtained at least one SeD slot, exactly the paper's
/// hierarchy shape ("6 LA: one per cluster ... 11 SEDs: two per cluster
/// (one cluster of Lyon had only one SED)").
pub fn spec_from_plan(plan: &DeploymentPlan, platform: &Grid5000) -> DeploymentSpec {
    let las = plan
        .local_agents(platform)
        .into_iter()
        .map(|(cluster_name, labels)| {
            let speed = platform
                .clusters
                .iter()
                .find(|c| c.name == cluster_name)
                .map(|c| c.sed_speed())
                .unwrap_or(1.0);
            LaSpec {
                name: format!("LA-{cluster_name}"),
                seds: labels
                    .into_iter()
                    .map(|label| SedSpec {
                        label,
                        speed_factor: speed,
                    })
                    .collect(),
            }
        })
        .collect();
    DeploymentSpec {
        ma_name: "MA".into(),
        las,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::services::cosmology_service_table;
    use diet_core::sched::RoundRobin;
    use gridsim::plan::plan_deployment;
    use std::sync::Arc;

    #[test]
    fn reservation_to_running_hierarchy() {
        // Reserve → plan → spec → instantiate → the services are reachable.
        let platform = Grid5000::paper_deployment();
        let bg: Vec<usize> = platform
            .clusters
            .iter()
            .map(|c| {
                if c.name == "lyon-sagittaire" {
                    c.machines - 26
                } else {
                    c.machines.saturating_sub(2 * c.machines_per_sed)
                }
            })
            .collect();
        let plan = plan_deployment(&platform, 2, 16, 17.0 * 3600.0, &bg, 0.0);
        assert_eq!(plan.total_seds(), 11);

        let spec = spec_from_plan(&plan, &platform);
        assert_eq!(spec.total_seds(), 11);
        assert_eq!(spec.las.len(), 6);
        spec.validate().unwrap();

        let (ma, seds) = spec
            .instantiate(Arc::new(RoundRobin::new()), |_| cosmology_service_table())
            .unwrap();
        assert_eq!(ma.sed_count(), 11);
        assert_eq!(ma.solver_count("ramsesZoom2"), 11);
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn empty_plan_yields_invalid_spec() {
        let platform = Grid5000::paper_deployment();
        let bg: Vec<usize> = platform.clusters.iter().map(|c| c.machines).collect();
        let plan = plan_deployment(&platform, 2, 16, 3600.0, &bg, 0.0);
        assert_eq!(plan.total_seds(), 0);
        let spec = spec_from_plan(&plan, &platform);
        assert!(
            spec.validate().is_err(),
            "a SeD-less spec must not validate"
        );
    }
}
