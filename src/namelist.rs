//! RAMSES namelist parameter files.
//!
//! The client's first profile argument is "a file containing parameters for
//! RAMSES" — a Fortran namelist. This module reads and writes the subset of
//! the format the services need: named groups of `key = value` pairs,
//!
//! ```text
//! &RUN_PARAMS
//!   cosmo = .true.
//!   levelmin = 7
//!   boxlen = 100.0
//! /
//! &OUTPUT_PARAMS
//!   aout = 0.3, 0.5, 1.0
//! /
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed namelist: ordered groups of key/value entries.
///
/// ```
/// use cosmogrid::namelist::Namelist;
/// let nl = Namelist::parse("&AMR_PARAMS\n  boxlen = 100.0\n/\n").unwrap();
/// assert_eq!(nl.get_f64("AMR_PARAMS", "boxlen").unwrap(), 100.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Namelist {
    /// group name → (key → raw value string)
    pub groups: BTreeMap<String, BTreeMap<String, String>>,
}

/// Parse errors with line context.
#[derive(Debug, Clone, PartialEq)]
pub enum NamelistError {
    EntryOutsideGroup {
        line: usize,
    },
    UnterminatedGroup(String),
    NestedGroup {
        line: usize,
    },
    MissingKey {
        line: usize,
    },
    MissingValue {
        group: String,
        key: String,
    },
    BadValue {
        group: String,
        key: String,
        want: &'static str,
    },
}

impl fmt::Display for NamelistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NamelistError::EntryOutsideGroup { line } => {
                write!(f, "line {line}: entry outside any &GROUP")
            }
            NamelistError::UnterminatedGroup(g) => write!(f, "group &{g} not closed with /"),
            NamelistError::NestedGroup { line } => write!(f, "line {line}: nested &GROUP"),
            NamelistError::MissingKey { line } => write!(f, "line {line}: missing key"),
            NamelistError::MissingValue { group, key } => {
                write!(f, "missing {group}.{key}")
            }
            NamelistError::BadValue { group, key, want } => {
                write!(f, "{group}.{key}: expected {want}")
            }
        }
    }
}

impl std::error::Error for NamelistError {}

impl Namelist {
    pub fn parse(text: &str) -> Result<Self, NamelistError> {
        let mut nl = Namelist::default();
        let mut current: Option<String> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            // Strip comments (! to end of line) and whitespace.
            let s = match raw.find('!') {
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if s.is_empty() {
                continue;
            }
            if let Some(name) = s.strip_prefix('&') {
                if current.is_some() {
                    return Err(NamelistError::NestedGroup { line });
                }
                let name = name.trim().to_uppercase();
                nl.groups.entry(name.clone()).or_default();
                current = Some(name);
            } else if s == "/" {
                current = None;
            } else {
                let group = current
                    .clone()
                    .ok_or(NamelistError::EntryOutsideGroup { line })?;
                // Possibly several comma-free assignments per line; RAMSES
                // uses one per line — accept `key = value[, value...]`.
                let (k, v) = s
                    .split_once('=')
                    .ok_or(NamelistError::MissingKey { line })?;
                let k = k.trim().to_lowercase();
                if k.is_empty() {
                    return Err(NamelistError::MissingKey { line });
                }
                nl.groups
                    .get_mut(&group)
                    .unwrap()
                    .insert(k, v.trim().to_string());
            }
        }
        if let Some(g) = current {
            return Err(NamelistError::UnterminatedGroup(g));
        }
        Ok(nl)
    }

    /// Serialise back to namelist text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (g, entries) in &self.groups {
            out.push_str(&format!("&{g}\n"));
            for (k, v) in entries {
                out.push_str(&format!("  {k} = {v}\n"));
            }
            out.push_str("/\n");
        }
        out
    }

    pub fn set(&mut self, group: &str, key: &str, value: impl fmt::Display) {
        self.groups
            .entry(group.to_uppercase())
            .or_default()
            .insert(key.to_lowercase(), value.to_string());
    }

    pub fn get(&self, group: &str, key: &str) -> Option<&str> {
        self.groups
            .get(&group.to_uppercase())
            .and_then(|g| g.get(&key.to_lowercase()))
            .map(|s| s.as_str())
    }

    fn required(&self, group: &str, key: &str) -> Result<&str, NamelistError> {
        self.get(group, key).ok_or(NamelistError::MissingValue {
            group: group.to_uppercase(),
            key: key.to_lowercase(),
        })
    }

    pub fn get_f64(&self, group: &str, key: &str) -> Result<f64, NamelistError> {
        self.required(group, key)?
            .parse()
            .map_err(|_| NamelistError::BadValue {
                group: group.to_uppercase(),
                key: key.to_lowercase(),
                want: "float",
            })
    }

    pub fn get_i64(&self, group: &str, key: &str) -> Result<i64, NamelistError> {
        self.required(group, key)?
            .parse()
            .map_err(|_| NamelistError::BadValue {
                group: group.to_uppercase(),
                key: key.to_lowercase(),
                want: "integer",
            })
    }

    /// Fortran logicals: `.true.` / `.false.` (also bare true/false/T/F).
    pub fn get_bool(&self, group: &str, key: &str) -> Result<bool, NamelistError> {
        match self
            .required(group, key)?
            .trim_matches('.')
            .to_lowercase()
            .as_str()
        {
            "true" | "t" => Ok(true),
            "false" | "f" => Ok(false),
            _ => Err(NamelistError::BadValue {
                group: group.to_uppercase(),
                key: key.to_lowercase(),
                want: "logical",
            }),
        }
    }

    /// Comma-separated float list (`aout = 0.3, 0.5, 1.0`).
    pub fn get_f64_list(&self, group: &str, key: &str) -> Result<Vec<f64>, NamelistError> {
        self.required(group, key)?
            .split(',')
            .map(|s| {
                s.trim().parse().map_err(|_| NamelistError::BadValue {
                    group: group.to_uppercase(),
                    key: key.to_lowercase(),
                    want: "float list",
                })
            })
            .collect()
    }
}

/// Default namelist for the paper's first-part run: 128³, 100 Mpc/h.
/// (The services downscale the resolution for laptop execution; the namelist
/// carries the *requested* values exactly as the client would write them.)
pub fn default_run_namelist(resolution: i64, box_mpc_h: f64) -> Namelist {
    let mut nl = Namelist::default();
    nl.set("RUN_PARAMS", "cosmo", ".true.");
    nl.set("RUN_PARAMS", "pic", ".true.");
    nl.set("RUN_PARAMS", "poisson", ".true.");
    nl.set("AMR_PARAMS", "levelmin", (resolution as f64).log2() as i64);
    nl.set(
        "AMR_PARAMS",
        "levelmax",
        (resolution as f64).log2() as i64 + 6,
    );
    nl.set("AMR_PARAMS", "boxlen", box_mpc_h);
    nl.set("INIT_PARAMS", "aexp_ini", 0.1);
    nl.set("OUTPUT_PARAMS", "aout", "0.3, 0.5, 1.0");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
! RAMSES run parameters
&RUN_PARAMS
  cosmo = .true.
  nrestart = 0
/
&AMR_PARAMS
  levelmin = 7   ! 128^3
  boxlen = 100.0
/
&OUTPUT_PARAMS
  aout = 0.3, 0.5, 1.0
/
"#;

    #[test]
    fn parses_groups_keys_comments() {
        let nl = Namelist::parse(SAMPLE).unwrap();
        assert_eq!(nl.groups.len(), 3);
        assert_eq!(nl.get_i64("amr_params", "levelmin").unwrap(), 7);
        assert!((nl.get_f64("AMR_PARAMS", "boxlen").unwrap() - 100.0).abs() < 1e-12);
        assert!(nl.get_bool("RUN_PARAMS", "cosmo").unwrap());
        assert_eq!(
            nl.get_f64_list("OUTPUT_PARAMS", "aout").unwrap(),
            vec![0.3, 0.5, 1.0]
        );
    }

    #[test]
    fn roundtrip_render_parse() {
        let nl = Namelist::parse(SAMPLE).unwrap();
        let again = Namelist::parse(&nl.render()).unwrap();
        assert_eq!(nl, again);
    }

    #[test]
    fn missing_key_reported_with_names() {
        let nl = Namelist::parse(SAMPLE).unwrap();
        match nl.get_f64("AMR_PARAMS", "nosuch") {
            Err(NamelistError::MissingValue { group, key }) => {
                assert_eq!(group, "AMR_PARAMS");
                assert_eq!(key, "nosuch");
            }
            other => panic!("expected MissingValue, got {other:?}"),
        }
    }

    #[test]
    fn entry_outside_group_rejected() {
        assert!(matches!(
            Namelist::parse("x = 1"),
            Err(NamelistError::EntryOutsideGroup { line: 1 })
        ));
    }

    #[test]
    fn unterminated_group_rejected() {
        assert!(matches!(
            Namelist::parse("&G\nx = 1"),
            Err(NamelistError::UnterminatedGroup(_))
        ));
    }

    #[test]
    fn bad_number_rejected() {
        let nl = Namelist::parse("&G\nx = abc\n/").unwrap();
        assert!(matches!(
            nl.get_f64("G", "x"),
            Err(NamelistError::BadValue { .. })
        ));
    }

    #[test]
    fn default_namelist_is_parseable_and_complete() {
        let nl = default_run_namelist(128, 100.0);
        let text = nl.render();
        let back = Namelist::parse(&text).unwrap();
        assert_eq!(back.get_i64("AMR_PARAMS", "levelmin").unwrap(), 7);
        assert!((back.get_f64("AMR_PARAMS", "boxlen").unwrap() - 100.0).abs() < 1e-12);
        assert_eq!(back.get_f64_list("OUTPUT_PARAMS", "aout").unwrap().len(), 3);
    }

    #[test]
    fn set_overwrites() {
        let mut nl = Namelist::default();
        nl.set("G", "k", 1);
        nl.set("G", "k", 2);
        assert_eq!(nl.get_i64("G", "k").unwrap(), 2);
    }
}
