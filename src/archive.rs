//! POSIX ustar tar archives.
//!
//! "The results of the simulation are packed into a tarball file if it
//! succeeded. Thus we need to return this file and an error code." The
//! services build their OUT argument with this module: a dependency-free
//! ustar writer/reader producing archives any system `tar` can list.
//! (The original pipeline gzipped them too; compression is orthogonal to the
//! middleware behaviour and is skipped.)

use bytes::Bytes;

const BLOCK: usize = 512;

/// One archive member.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    pub name: String,
    pub data: Bytes,
}

/// Errors from reading an archive.
#[derive(Debug, Clone, PartialEq)]
pub enum TarError {
    Truncated,
    BadChecksum { name: String },
    BadField(&'static str),
    NameTooLong(String),
}

impl std::fmt::Display for TarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TarError::Truncated => write!(f, "truncated tar archive"),
            TarError::BadChecksum { name } => write!(f, "bad checksum for entry {name}"),
            TarError::BadField(w) => write!(f, "malformed header field: {w}"),
            TarError::NameTooLong(n) => write!(f, "entry name too long: {n}"),
        }
    }
}

impl std::error::Error for TarError {}

fn octal_field(buf: &mut [u8], value: u64) {
    // Write as zero-padded octal with trailing NUL, field width buf.len().
    let s = format!("{value:0width$o}\0", width = buf.len() - 1);
    buf.copy_from_slice(&s.as_bytes()[..buf.len()]);
}

fn parse_octal(field: &[u8]) -> Result<u64, TarError> {
    let s: String = field
        .iter()
        .take_while(|&&b| b != 0 && b != b' ')
        .map(|&b| b as char)
        .collect();
    if s.is_empty() {
        return Ok(0);
    }
    u64::from_str_radix(s.trim(), 8).map_err(|_| TarError::BadField("octal"))
}

fn header_for(name: &str, size: u64) -> Result<[u8; BLOCK], TarError> {
    if name.len() > 100 {
        return Err(TarError::NameTooLong(name.to_string()));
    }
    let mut h = [0u8; BLOCK];
    h[..name.len()].copy_from_slice(name.as_bytes()); // name
    octal_field(&mut h[100..108], 0o644); // mode
    octal_field(&mut h[108..116], 0); // uid
    octal_field(&mut h[116..124], 0); // gid
    octal_field(&mut h[124..136], size); // size
    octal_field(&mut h[136..148], 0); // mtime (deterministic archives)
    h[156] = b'0'; // typeflag: regular file
    h[257..263].copy_from_slice(b"ustar\0"); // magic
    h[263..265].copy_from_slice(b"00"); // version
                                        // checksum: computed with the checksum field filled with spaces
    h[148..156].copy_from_slice(b"        ");
    let sum: u64 = h.iter().map(|&b| b as u64).sum();
    let s = format!("{sum:06o}\0 ");
    h[148..156].copy_from_slice(&s.as_bytes()[..8]);
    Ok(h)
}

/// Build a tar archive from entries.
///
/// ```
/// use cosmogrid::archive::{pack, unpack, Entry};
/// use bytes::Bytes;
/// let entries = vec![Entry { name: "halos/catalog.txt".into(),
///                            data: Bytes::from_static(b"# id mass\n") }];
/// let tar = pack(&entries).unwrap();
/// assert_eq!(unpack(&tar).unwrap(), entries);
/// ```
pub fn pack(entries: &[Entry]) -> Result<Bytes, TarError> {
    let mut out = Vec::new();
    for e in entries {
        let h = header_for(&e.name, e.data.len() as u64)?;
        out.extend_from_slice(&h);
        out.extend_from_slice(&e.data);
        let pad = (BLOCK - e.data.len() % BLOCK) % BLOCK;
        out.extend(std::iter::repeat_n(0u8, pad));
    }
    // End-of-archive: two zero blocks.
    out.extend(std::iter::repeat_n(0u8, 2 * BLOCK));
    Ok(Bytes::from(out))
}

/// Read all entries back.
pub fn unpack(data: &Bytes) -> Result<Vec<Entry>, TarError> {
    let mut entries = Vec::new();
    let mut off = 0usize;
    loop {
        if off + BLOCK > data.len() {
            return Err(TarError::Truncated);
        }
        let h = &data[off..off + BLOCK];
        if h.iter().all(|&b| b == 0) {
            break; // end-of-archive marker
        }
        let name: String = h[..100]
            .iter()
            .take_while(|&&b| b != 0)
            .map(|&b| b as char)
            .collect();
        // Verify checksum.
        let stored = parse_octal(&h[148..156])?;
        let computed: u64 = h
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                if (148..156).contains(&i) {
                    32
                } else {
                    b as u64
                }
            })
            .sum();
        if stored != computed {
            return Err(TarError::BadChecksum { name });
        }
        let size = parse_octal(&h[124..136])? as usize;
        let body_start = off + BLOCK;
        if body_start + size > data.len() {
            return Err(TarError::Truncated);
        }
        entries.push(Entry {
            name,
            data: data.slice(body_start..body_start + size),
        });
        let pad = (BLOCK - size % BLOCK) % BLOCK;
        off = body_start + size + pad;
    }
    Ok(entries)
}

/// Find an entry by name.
pub fn find<'a>(entries: &'a [Entry], name: &str) -> Option<&'a Entry> {
    entries.iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Entry> {
        vec![
            Entry {
                name: "halos/catalog.txt".into(),
                data: Bytes::from_static(b"id mass x y z\n0 1.5 0.2 0.3 0.4\n"),
            },
            Entry {
                name: "snap_0001.bin".into(),
                data: Bytes::from(vec![7u8; 1000]),
            },
            Entry {
                name: "empty.log".into(),
                data: Bytes::new(),
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let entries = sample();
        let tar = pack(&entries).unwrap();
        let back = unpack(&tar).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn blocks_are_512_aligned() {
        let tar = pack(&sample()).unwrap();
        assert_eq!(tar.len() % BLOCK, 0);
        // 3 headers + 1 block (32B) + 2 blocks (1000B) + 0 + 2 EOA = 8 blocks.
        assert_eq!(tar.len(), 8 * BLOCK);
    }

    #[test]
    fn ustar_magic_present() {
        let tar = pack(&sample()).unwrap();
        assert_eq!(&tar[257..262], b"ustar");
    }

    #[test]
    fn corrupt_checksum_detected() {
        let tar = pack(&sample()).unwrap();
        let mut v = tar.to_vec();
        v[0] ^= 0x01; // flip a bit in the first name byte
        match unpack(&Bytes::from(v)) {
            Err(TarError::BadChecksum { .. }) => {}
            other => panic!("expected BadChecksum, got {other:?}"),
        }
    }

    #[test]
    fn truncated_archive_detected() {
        let tar = pack(&sample()).unwrap();
        let cut = tar.slice(0..tar.len() - 3 * BLOCK - 10);
        assert!(unpack(&cut).is_err());
    }

    #[test]
    fn long_names_rejected() {
        let e = Entry {
            name: "x".repeat(150),
            data: Bytes::new(),
        };
        assert!(matches!(pack(&[e]), Err(TarError::NameTooLong(_))));
    }

    #[test]
    fn find_locates_entries() {
        let entries = sample();
        assert!(find(&entries, "snap_0001.bin").is_some());
        assert!(find(&entries, "nope").is_none());
    }

    #[test]
    fn system_tar_can_list_if_available() {
        // Best-effort interoperability check; skipped when `tar` is absent.
        let tarball = pack(&sample()).unwrap();
        let dir = std::env::temp_dir().join("cosmogrid_tar_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("result.tar");
        std::fs::write(&path, &tarball).unwrap();
        if let Ok(out) = std::process::Command::new("tar")
            .arg("-tf")
            .arg(&path)
            .output()
        {
            if out.status.success() {
                let listing = String::from_utf8_lossy(&out.stdout);
                assert!(listing.contains("halos/catalog.txt"), "listing: {listing}");
                assert!(listing.contains("snap_0001.bin"));
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
