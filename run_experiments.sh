#!/usr/bin/env bash
# Regenerate every evaluation artifact (E1-E10, A1-A2). Each binary
# self-checks its shape assertions and exits non-zero on divergence;
# figure data lands as CSV under target/experiments/.
set -euo pipefail
cd "$(dirname "$0")"
cargo build --release -p bench --bins
for exp in exp_campaign exp_fig4_gantt exp_fig4_exectime exp_fig5_finding \
           exp_fig5_latency exp_overhead exp_sched_ablation exp_zoom_quality \
           exp_failure_recovery exp_fig2_projection \
           exp_ablation_decomposition exp_ablation_poisson; do
    echo "===================================================================="
    echo ">>> $exp"
    echo "===================================================================="
    ./target/release/$exp
    echo
done
echo "all experiments reproduced their paper shapes."
