//! Discrete-event engine.
//!
//! A minimal, deterministic DES: events are closures scheduled at a virtual
//! time; the engine pops them in (time, sequence) order so simultaneous
//! events fire in scheduling order, making every run bit-reproducible.
//! Virtual seconds are `f64`; the paper's campaign spans ~16.3 h of virtual
//! time and simulates in milliseconds of wall-clock.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time in seconds.
pub type SimTime = f64;

/// Token returned by `schedule`, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// An event handler: called with the engine so it can schedule more events.
pub type Handler<S> = Box<dyn FnOnce(&mut Engine<S>, &mut S)>;

struct QueuedEvent<S> {
    time: SimTime,
    seq: u64,
    id: EventId,
    handler: Handler<S>,
}

impl<S> PartialEq for QueuedEvent<S> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<S> Eq for QueuedEvent<S> {}
impl<S> PartialOrd for QueuedEvent<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for QueuedEvent<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first. Ties break on
        // sequence number (FIFO among simultaneous events).
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// The event engine, generic over a user state `S` threaded to handlers.
pub struct Engine<S> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<QueuedEvent<S>>,
    cancelled: std::collections::HashSet<EventId>,
    /// Number of events executed (diagnostics).
    pub executed: u64,
}

impl<S> Default for Engine<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> Engine<S> {
    pub fn new() -> Self {
        Engine {
            now: 0.0,
            seq: 0,
            queue: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `handler` to run at absolute time `at` (must be ≥ now).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        handler: impl FnOnce(&mut Engine<S>, &mut S) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now - 1e-12,
            "cannot schedule in the past: at={at}, now={}",
            self.now
        );
        let id = EventId(self.seq);
        self.queue.push(QueuedEvent {
            time: at.max(self.now),
            seq: self.seq,
            id,
            handler: Box::new(handler),
        });
        self.seq += 1;
        id
    }

    /// Schedule after a delay.
    pub fn schedule_in(
        &mut self,
        delay: SimTime,
        handler: impl FnOnce(&mut Engine<S>, &mut S) + 'static,
    ) -> EventId {
        assert!(delay >= 0.0, "negative delay {delay}");
        let at = self.now + delay;
        self.schedule_at(at, handler)
    }

    /// Cancel a pending event. Cancelling an already-fired event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Run until the queue drains or `until` (if given) is passed.
    /// Returns the final virtual time.
    pub fn run(&mut self, state: &mut S, until: Option<SimTime>) -> SimTime {
        while let Some(ev) = self.queue.pop() {
            if let Some(limit) = until {
                if ev.time > limit {
                    // Put it back and stop at the limit.
                    self.queue.push(ev);
                    self.now = limit;
                    return self.now;
                }
            }
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            debug_assert!(ev.time >= self.now - 1e-9, "time went backwards");
            self.now = ev.time;
            self.executed += 1;
            (ev.handler)(self, state);
        }
        self.now
    }

    /// Pending event count (excluding cancelled ones only approximately —
    /// cancelled events are lazily discarded on pop).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        eng.schedule_at(3.0, |_, s: &mut Vec<u32>| s.push(3));
        eng.schedule_at(1.0, |_, s| s.push(1));
        eng.schedule_at(2.0, |_, s| s.push(2));
        eng.run(&mut log, None);
        assert_eq!(log, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        for i in 0..10 {
            eng.schedule_at(5.0, move |_, s: &mut Vec<u32>| s.push(i));
        }
        eng.run(&mut log, None);
        assert_eq!(log, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_chain() {
        let mut eng: Engine<Vec<f64>> = Engine::new();
        let mut times = Vec::new();
        fn tick(eng: &mut Engine<Vec<f64>>, s: &mut Vec<f64>) {
            s.push(eng.now());
            if s.len() < 5 {
                eng.schedule_in(1.5, tick);
            }
        }
        eng.schedule_at(0.0, tick);
        let end = eng.run(&mut times, None);
        assert_eq!(times, vec![0.0, 1.5, 3.0, 4.5, 6.0]);
        assert_eq!(end, 6.0);
    }

    #[test]
    fn cancellation_suppresses_event() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        let id = eng.schedule_at(1.0, |_, s: &mut Vec<u32>| s.push(1));
        eng.schedule_at(2.0, |_, s| s.push(2));
        eng.cancel(id);
        eng.run(&mut log, None);
        assert_eq!(log, vec![2]);
    }

    #[test]
    fn run_until_stops_at_limit() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        eng.schedule_at(1.0, |_, s: &mut Vec<u32>| s.push(1));
        eng.schedule_at(10.0, |_, s| s.push(10));
        let t = eng.run(&mut log, Some(5.0));
        assert_eq!(log, vec![1]);
        assert_eq!(t, 5.0);
        assert_eq!(eng.pending(), 1);
        // Resume past the limit.
        eng.run(&mut log, None);
        assert_eq!(log, vec![1, 10]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn scheduling_in_the_past_panics() {
        let mut eng: Engine<()> = Engine::new();
        eng.schedule_at(5.0, |e, _| {
            e.schedule_at(1.0, |_, _| {});
        });
        eng.run(&mut (), None);
    }

    #[test]
    fn deterministic_replay() {
        fn run_once() -> Vec<(f64, u32)> {
            let mut eng: Engine<Vec<(f64, u32)>> = Engine::new();
            let mut log = Vec::new();
            for i in 0..50u32 {
                let t = ((i * 7919) % 13) as f64 * 0.5;
                eng.schedule_at(t, move |e, s: &mut Vec<(f64, u32)>| {
                    s.push((e.now(), i));
                });
            }
            eng.run(&mut log, None);
            log
        }
        assert_eq!(run_once(), run_once());
    }
}
