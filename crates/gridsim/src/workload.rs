//! Workload model of the cosmological campaign.
//!
//! The paper's experiment: "The client requests a 128³ particles
//! 100 Mpc·h⁻¹ simulation (first part). When he receives the results, he
//! requests simultaneously 100 sub-simulations (second part)."
//!
//! Measured timings (Section 5.2), used as the calibration anchor:
//!
//! * first part: 1 h 15 m 11 s  = 4511 s
//! * second part: mean 1 h 24 m 1 s = 5041 s, with per-halo dispersion
//! * per-SeD totals spread ≈ 10.5 h … 15 h due to Opteron heterogeneity
//!
//! A task's duration on a SeD is `reference_duration · dispersion(halo) /
//! speed_factor(SeD)`. Dispersion is deterministic per halo index, so the
//! whole campaign replays identically.

use serde::{Deserialize, Serialize};

/// What a task is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// `ramsesZoom1`: the low-resolution full-box run producing the halo
    /// catalog.
    ZoomPart1,
    /// `ramsesZoom2`: one zoom re-simulation around halo `halo_index`,
    /// including GRAFIC IC generation and GALICS post-processing (the paper
    /// runs all three stages on the same cluster under one service call).
    ZoomPart2 { halo_index: u32 },
}

/// A schedulable task with its data footprint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    pub kind: TaskKind,
    /// Input payload shipped client → SeD (namelist + parameters), bytes.
    pub input_bytes: u64,
    /// Result tarball shipped SeD → client, bytes.
    pub output_bytes: u64,
}

impl TaskSpec {
    pub fn zoom_part1() -> Self {
        TaskSpec {
            kind: TaskKind::ZoomPart1,
            input_bytes: 8 * 1024,           // namelist + scalars
            output_bytes: 120 * 1024 * 1024, // halo catalog + coarse snapshot tarball
        }
    }

    pub fn zoom_part2(halo_index: u32) -> Self {
        TaskSpec {
            kind: TaskKind::ZoomPart2 { halo_index },
            input_bytes: 8 * 1024,
            output_bytes: 250 * 1024 * 1024, // zoom snapshot + GALICS catalogs
        }
    }
}

/// Calibrated duration model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WorkloadModel {
    /// Part-1 duration on the reference (Opteron 250) SeD, seconds.
    pub part1_reference_s: f64,
    /// Part-2 mean duration on the reference SeD, seconds.
    pub part2_reference_s: f64,
    /// Fractional dispersion of part-2 durations across halos (0.15 = ±15%).
    pub part2_dispersion: f64,
    /// Seed folded into the per-halo dispersion hash.
    pub seed: u64,
}

impl Default for WorkloadModel {
    fn default() -> Self {
        WorkloadModel {
            part1_reference_s: 4511.0, // 1 h 15 m 11 s
            part2_reference_s: 4900.0, // ≈ paper mean after speed-mix weighting
            part2_dispersion: 0.12,
            seed: 2007,
        }
    }
}

/// SplitMix64 — tiny deterministic hash for per-halo dispersion.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl WorkloadModel {
    /// Deterministic dispersion factor for one halo in `[1−d, 1+d]`.
    pub fn dispersion(&self, halo_index: u32) -> f64 {
        let h = splitmix64(self.seed ^ ((halo_index as u64) << 17));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        1.0 + self.part2_dispersion * (2.0 * u - 1.0)
    }

    /// Reference duration of a task (speed factor 1.0).
    pub fn reference_duration(&self, kind: TaskKind) -> f64 {
        match kind {
            TaskKind::ZoomPart1 => self.part1_reference_s,
            TaskKind::ZoomPart2 { halo_index } => {
                self.part2_reference_s * self.dispersion(halo_index)
            }
        }
    }

    /// Duration on a SeD with the given speed factor.
    pub fn duration_on(&self, kind: TaskKind, speed_factor: f64) -> f64 {
        assert!(speed_factor > 0.0);
        self.reference_duration(kind) / speed_factor
    }

    /// Total sequential time of the paper's campaign (1 part-1 + `n` part-2)
    /// on a single SeD of the given speed — the ">141 h" baseline.
    pub fn sequential_campaign(&self, n_zoom: u32, speed_factor: f64) -> f64 {
        let mut total = self.duration_on(TaskKind::ZoomPart1, speed_factor);
        for h in 0..n_zoom {
            total += self.duration_on(TaskKind::ZoomPart2 { halo_index: h }, speed_factor);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn part1_matches_paper_measurement() {
        let m = WorkloadModel::default();
        let d = m.duration_on(TaskKind::ZoomPart1, 1.0);
        assert!((d - 4511.0).abs() < 1e-9);
    }

    #[test]
    fn dispersion_is_bounded_and_deterministic() {
        let m = WorkloadModel::default();
        for h in 0..1000 {
            let f = m.dispersion(h);
            assert!(f >= 1.0 - m.part2_dispersion - 1e-12);
            assert!(f <= 1.0 + m.part2_dispersion + 1e-12);
            assert_eq!(f, m.dispersion(h));
        }
    }

    #[test]
    fn dispersion_mean_near_one() {
        let m = WorkloadModel::default();
        let mean: f64 = (0..10_000).map(|h| m.dispersion(h)).sum::<f64>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.01, "dispersion mean {mean}");
    }

    #[test]
    fn slower_sed_takes_longer() {
        let m = WorkloadModel::default();
        let k = TaskKind::ZoomPart2 { halo_index: 0 };
        assert!(m.duration_on(k, 0.8) > m.duration_on(k, 1.15));
        let ratio = m.duration_on(k, 0.5) / m.duration_on(k, 1.0);
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_campaign_exceeds_141_hours_on_slow_sed() {
        // The paper: "it would take more than 141 h to run the 101
        // simulations sequentially" — true on the slower Opterons.
        let m = WorkloadModel::default();
        let total = m.sequential_campaign(100, 0.93);
        assert!(
            total > 141.0 * 3600.0,
            "sequential total only {:.1} h",
            total / 3600.0
        );
    }

    #[test]
    fn mean_zoom_duration_matches_paper_band() {
        // Mean part-2 duration over the speed mix should sit near the
        // measured 5041 s (1 h 24 m 1 s) within a few percent.
        let m = WorkloadModel::default();
        let speeds = [0.8, 0.8, 1.0, 0.9, 0.9, 1.15, 1.15, 0.8, 0.8, 1.1, 1.1];
        let mut total = 0.0;
        let mut count = 0.0;
        for h in 0..100u32 {
            let s = speeds[(h as usize) % speeds.len()];
            total += m.duration_on(TaskKind::ZoomPart2 { halo_index: h }, s);
            count += 1.0;
        }
        let mean = total / count;
        assert!(
            (mean - 5041.0).abs() < 0.06 * 5041.0,
            "mean zoom duration {mean:.0}s vs paper 5041s"
        );
    }

    #[test]
    fn task_specs_have_sane_footprints() {
        let t1 = TaskSpec::zoom_part1();
        let t2 = TaskSpec::zoom_part2(3);
        assert!(t1.input_bytes < t1.output_bytes);
        assert!(t2.output_bytes > t1.output_bytes);
        assert_eq!(t2.kind, TaskKind::ZoomPart2 { halo_index: 3 });
    }
}
