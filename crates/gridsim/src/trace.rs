//! Execution traces and Gantt charts.
//!
//! Every scheduling decision and task execution in a simulated campaign is
//! recorded as a [`TraceEvent`]; [`Gantt`] aggregates them into exactly the
//! per-SeD views the paper plots: Figure 4-left (the Gantt chart of the 100
//! sub-simulations over the SeDs) and Figure 4-right (per-SeD execution
//! time), plus the Figure 5 series (finding time and latency per request).

use crate::des::SimTime;
use serde::{Deserialize, Serialize};

/// What a trace entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Agent hierarchy traversal to pick a SeD ("finding time").
    Finding,
    /// Client → SeD input transfer + service initiation.
    Submission,
    /// Waiting in the SeD queue.
    Queued,
    /// The solve itself.
    Execution,
    /// An execution cut short by a server failure (the work is lost).
    Aborted,
    /// SeD → client result transfer.
    ResultReturn,
}

/// One interval on one resource.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Request identifier (0 = part 1; 1..=100 = the sub-simulations).
    pub request: u32,
    /// SeD label, or "agents" for hierarchy work.
    pub resource: String,
    pub kind: TraceKind,
    pub start: SimTime,
    pub end: SimTime,
}

impl TraceEvent {
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// An accumulating trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Gantt {
    pub events: Vec<TraceEvent>,
}

/// Figure 4-right: one bar per SeD.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SedSummary {
    pub resource: String,
    pub requests: usize,
    /// Total busy (execution) time, seconds.
    pub busy: f64,
    /// Completion time of its last task.
    pub finish: f64,
}

impl Gantt {
    pub fn record(
        &mut self,
        request: u32,
        resource: impl Into<String>,
        kind: TraceKind,
        start: SimTime,
        end: SimTime,
    ) {
        debug_assert!(end >= start, "negative interval");
        self.events.push(TraceEvent {
            request,
            resource: resource.into(),
            kind,
            start,
            end,
        });
    }

    /// Campaign makespan: last event end minus first event start.
    pub fn makespan(&self) -> f64 {
        let start = self
            .events
            .iter()
            .map(|e| e.start)
            .fold(f64::INFINITY, f64::min);
        let end = self.events.iter().map(|e| e.end).fold(0.0f64, f64::max);
        if self.events.is_empty() {
            0.0
        } else {
            end - start
        }
    }

    /// Figure 4-right data: per-SeD request count, busy time and finish time,
    /// sorted by resource label. Only `Execution` events count as busy.
    pub fn sed_summaries(&self) -> Vec<SedSummary> {
        let mut map: std::collections::BTreeMap<String, SedSummary> =
            std::collections::BTreeMap::new();
        for e in &self.events {
            if e.kind != TraceKind::Execution {
                continue;
            }
            let s = map.entry(e.resource.clone()).or_insert(SedSummary {
                resource: e.resource.clone(),
                requests: 0,
                busy: 0.0,
                finish: 0.0,
            });
            s.requests += 1;
            s.busy += e.duration();
            s.finish = s.finish.max(e.end);
        }
        map.into_values().collect()
    }

    /// Figure 5 series: per-request duration of a given kind, ordered by
    /// request id.
    pub fn per_request(&self, kind: TraceKind) -> Vec<(u32, f64)> {
        let mut v: Vec<(u32, f64)> = self
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| (e.request, e.duration()))
            .collect();
        v.sort_by_key(|&(r, _)| r);
        v
    }

    /// Mean duration of a kind (paper: "finding time ... 49.8 ms on average").
    pub fn mean_duration(&self, kind: TraceKind) -> f64 {
        let v = self.per_request(kind);
        if v.is_empty() {
            return 0.0;
        }
        v.iter().map(|(_, d)| d).sum::<f64>() / v.len() as f64
    }

    /// Export all events as CSV (request,resource,kind,start,end) — the raw
    /// material for re-plotting the paper's figures with any tool.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("request,resource,kind,start,end\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{:?},{:.6},{:.6}\n",
                e.request, e.resource, e.kind, e.start, e.end
            ));
        }
        out
    }

    /// ASCII Gantt chart (Figure 4-left): one row per SeD, time bucketed
    /// into `width` columns; each executed request paints its span with a
    /// letter cycling a..z by request id.
    pub fn render_ascii(&self, width: usize) -> String {
        let makespan = self.makespan().max(1e-9);
        let t0 = self
            .events
            .iter()
            .map(|e| e.start)
            .fold(f64::INFINITY, f64::min);
        let mut rows: std::collections::BTreeMap<String, Vec<char>> =
            std::collections::BTreeMap::new();
        for e in &self.events {
            if e.kind != TraceKind::Execution {
                continue;
            }
            let row = rows
                .entry(e.resource.clone())
                .or_insert_with(|| vec!['.'; width]);
            let c0 = (((e.start - t0) / makespan) * width as f64) as usize;
            let c1 = ((((e.end - t0) / makespan) * width as f64) as usize).min(width);
            let glyph = char::from(b'a' + (e.request % 26) as u8);
            for cell in row
                .iter_mut()
                .take(c1)
                .skip(c0.min(width.saturating_sub(1)))
            {
                *cell = glyph;
            }
        }
        let label_w = rows.keys().map(|k| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (label, row) in rows {
            out.push_str(&format!("{label:label_w$} |"));
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Gantt {
        let mut g = Gantt::default();
        g.record(1, "sedA", TraceKind::Finding, 0.0, 0.05);
        g.record(1, "sedA", TraceKind::Execution, 0.1, 10.1);
        g.record(2, "sedB", TraceKind::Finding, 0.0, 0.04);
        g.record(2, "sedB", TraceKind::Execution, 0.1, 5.1);
        g.record(3, "sedA", TraceKind::Execution, 10.1, 22.1);
        g
    }

    #[test]
    fn makespan_spans_all_events() {
        let g = sample();
        assert!((g.makespan() - 22.1).abs() < 1e-12);
    }

    #[test]
    fn summaries_count_and_accumulate() {
        let g = sample();
        let s = g.sed_summaries();
        assert_eq!(s.len(), 2);
        let a = s.iter().find(|x| x.resource == "sedA").unwrap();
        assert_eq!(a.requests, 2);
        assert!((a.busy - 22.0).abs() < 1e-9);
        assert!((a.finish - 22.1).abs() < 1e-9);
        let b = s.iter().find(|x| x.resource == "sedB").unwrap();
        assert_eq!(b.requests, 1);
        assert!((b.busy - 5.0).abs() < 1e-9);
    }

    #[test]
    fn per_request_sorted_and_filtered() {
        let g = sample();
        let f = g.per_request(TraceKind::Finding);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].0, 1);
        assert!((f[0].1 - 0.05).abs() < 1e-12);
        assert!((g.mean_duration(TraceKind::Finding) - 0.045).abs() < 1e-12);
    }

    #[test]
    fn mean_of_missing_kind_is_zero() {
        let g = sample();
        assert_eq!(g.mean_duration(TraceKind::Queued), 0.0);
    }

    #[test]
    fn ascii_gantt_has_one_row_per_sed() {
        let g = sample();
        let art = g.render_ascii(40);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("sedA"));
        assert!(lines[0].contains('b')); // request 1 paints 'b'
        assert!(lines[1].contains('c')); // request 2 paints 'c'
    }

    #[test]
    fn csv_has_header_and_rows() {
        let g = sample();
        let csv = g.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "request,resource,kind,start,end");
        assert_eq!(lines.len(), 1 + g.events.len());
        assert!(lines[1].starts_with("1,sedA,Finding,"));
    }

    #[test]
    fn empty_gantt_is_safe() {
        let g = Gantt::default();
        assert_eq!(g.makespan(), 0.0);
        assert!(g.sed_summaries().is_empty());
        assert_eq!(g.render_ascii(10), "");
    }
}
