//! # gridsim — a discrete-event simulator of the Grid'5000 platform
//!
//! The paper's experiments ran on five sites of Grid'5000 (Lyon ×2 clusters,
//! Lille, Nancy, Toulouse, Sophia) connected by RENATER at 1–10 Gb/s, with
//! 11 SeDs each controlling 16 AMD Opteron machines. We cannot reserve that
//! testbed, so this crate provides its closest synthetic equivalent: a
//! deterministic discrete-event simulation (DES) of sites, clusters, nodes
//! and links, over which the `diet-core` middleware schedules the same
//! 1 + 100 simulation campaign in *virtual* time.
//!
//! * [`des`] — the event engine: a virtual clock and an ordered event queue
//!   with deterministic tie-breaking, so every run replays identically.
//! * [`platform`] — the hardware model: node types (Opteron 246…275) with
//!   calibrated relative speeds, clusters, sites.
//! * [`network`] — links and routes with latency + bandwidth; transfer-time
//!   model `T = L + S/B` used for request and file movement.
//! * [`nfs`] — the shared working directory each cluster mounts (the paper:
//!   "the current version of RAMSES requires a NFS working directory").
//! * [`workload`] — task model for `ramsesZoom1/2` executions, with
//!   durations calibrated against the paper's measured run times.
//! * [`trace`] — Gantt-style execution traces, the raw material of the
//!   paper's Figures 4 and 5.

pub mod des;
pub mod network;
pub mod nfs;
pub mod oar;
pub mod plan;
pub mod platform;
pub mod trace;
pub mod workload;

pub use des::{Engine, EventId, SimTime};
pub use network::{Link, Route, Topology};
pub use oar::{OarScheduler, Reservation};
pub use plan::{plan_deployment, DeploymentPlan};
pub use platform::{Cluster, Grid5000, NodeType, Site};
pub use trace::{Gantt, TraceEvent, TraceKind};
pub use workload::{TaskKind, TaskSpec, WorkloadModel};
