//! OAR-like batch reservations.
//!
//! Grid'5000 resources are obtained through the OAR batch scheduler: a
//! reservation asks for `nodes × walltime` on one cluster and either starts
//! immediately, is queued behind conflicting reservations, or is rejected
//! ("one cluster of Lyon had only one SED due to reservation restrictions" —
//! exactly this mechanism). The campaign deployment is itself a set of
//! reservations (11 × 16 nodes), so the substrate models them.

use crate::des::SimTime;
use serde::{Deserialize, Serialize};

/// One reservation request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    pub nodes: usize,
    pub walltime: SimTime,
}

/// A granted reservation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reservation {
    pub id: u64,
    pub nodes: usize,
    pub start: SimTime,
    pub end: SimTime,
}

impl Reservation {
    pub fn overlaps(&self, t0: SimTime, t1: SimTime) -> bool {
        self.start < t1 && t0 < self.end
    }
}

/// Why a reservation could not be granted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OarError {
    /// More nodes than the cluster owns.
    TooLarge { requested: usize, capacity: usize },
    /// Zero nodes or non-positive walltime.
    Invalid,
}

impl std::fmt::Display for OarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OarError::TooLarge {
                requested,
                capacity,
            } => write!(f, "requested {requested} nodes of {capacity}"),
            OarError::Invalid => write!(f, "invalid reservation request"),
        }
    }
}

impl std::error::Error for OarError {}

/// Per-cluster batch scheduler: first-fit in time (conservative backfilling
/// is deliberately out of scope — OAR's advance-reservation path is
/// first-fit too).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OarScheduler {
    pub capacity: usize,
    next_id: u64,
    granted: Vec<Reservation>,
}

impl OarScheduler {
    pub fn new(capacity: usize) -> Self {
        OarScheduler {
            capacity,
            next_id: 0,
            granted: Vec::new(),
        }
    }

    /// Nodes busy during `[t0, t1)`.
    pub fn busy_nodes(&self, t0: SimTime, t1: SimTime) -> usize {
        // Peak concurrent usage over the window: evaluate at every
        // reservation boundary inside the window.
        let mut points = vec![t0];
        for r in &self.granted {
            if r.overlaps(t0, t1) {
                points.push(r.start.max(t0));
            }
        }
        points
            .into_iter()
            .map(|t| {
                self.granted
                    .iter()
                    .filter(|r| r.start <= t && t < r.end)
                    .map(|r| r.nodes)
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }

    /// Free nodes over the window.
    pub fn free_nodes(&self, t0: SimTime, t1: SimTime) -> usize {
        self.capacity - self.busy_nodes(t0, t1)
    }

    /// Submit at time `now`: the reservation starts at the earliest instant
    /// with enough free nodes for the whole walltime.
    pub fn submit(&mut self, now: SimTime, req: Request) -> Result<Reservation, OarError> {
        if req.nodes == 0 || req.walltime <= 0.0 {
            return Err(OarError::Invalid);
        }
        if req.nodes > self.capacity {
            return Err(OarError::TooLarge {
                requested: req.nodes,
                capacity: self.capacity,
            });
        }
        // Candidate start times: now, plus the end of every reservation.
        let mut candidates: Vec<SimTime> = vec![now];
        candidates.extend(self.granted.iter().filter(|r| r.end > now).map(|r| r.end));
        candidates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for t in candidates {
            if self.free_nodes(t, t + req.walltime) >= req.nodes {
                let res = Reservation {
                    id: self.next_id,
                    nodes: req.nodes,
                    start: t,
                    end: t + req.walltime,
                };
                self.next_id += 1;
                self.granted.push(res);
                return Ok(res);
            }
        }
        unreachable!("the end of the last reservation always fits");
    }

    /// Release a reservation early at time `now` (truncate its end).
    pub fn release(&mut self, id: u64, now: SimTime) -> bool {
        match self.granted.iter_mut().find(|r| r.id == id) {
            Some(r) if r.end > now => {
                r.end = r.start.max(now);
                true
            }
            Some(_) => true,
            None => false,
        }
    }

    pub fn reservations(&self) -> &[Reservation] {
        &self.granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_start_when_free() {
        let mut oar = OarScheduler::new(64);
        let r = oar
            .submit(
                0.0,
                Request {
                    nodes: 16,
                    walltime: 3600.0,
                },
            )
            .unwrap();
        assert_eq!(r.start, 0.0);
        assert_eq!(r.end, 3600.0);
        assert_eq!(oar.free_nodes(0.0, 3600.0), 48);
    }

    #[test]
    fn paper_deployment_two_seds_fit_one_does_not() {
        // A 56-node cluster fits two 16-node SeD reservations alongside
        // other users holding 30 nodes — but not three. This is the
        // "reservation restrictions" of the paper's Lyon cluster.
        let mut oar = OarScheduler::new(56);
        oar.submit(
            0.0,
            Request {
                nodes: 30,
                walltime: 1e5,
            },
        )
        .unwrap();
        let a = oar
            .submit(
                0.0,
                Request {
                    nodes: 16,
                    walltime: 1e5,
                },
            )
            .unwrap();
        assert_eq!(a.start, 0.0);
        let b = oar
            .submit(
                0.0,
                Request {
                    nodes: 16,
                    walltime: 1e5,
                },
            )
            .unwrap();
        // No room now: the second SeD is delayed to after the others end.
        assert!(b.start >= 1e5, "second SeD should queue: {b:?}");
    }

    #[test]
    fn queued_reservation_starts_at_first_gap() {
        let mut oar = OarScheduler::new(16);
        oar.submit(
            0.0,
            Request {
                nodes: 16,
                walltime: 100.0,
            },
        )
        .unwrap();
        let r = oar
            .submit(
                10.0,
                Request {
                    nodes: 8,
                    walltime: 50.0,
                },
            )
            .unwrap();
        assert_eq!(r.start, 100.0);
        assert_eq!(r.end, 150.0);
    }

    #[test]
    fn oversized_and_invalid_rejected() {
        let mut oar = OarScheduler::new(8);
        assert!(matches!(
            oar.submit(
                0.0,
                Request {
                    nodes: 9,
                    walltime: 1.0
                }
            ),
            Err(OarError::TooLarge { .. })
        ));
        assert!(matches!(
            oar.submit(
                0.0,
                Request {
                    nodes: 0,
                    walltime: 1.0
                }
            ),
            Err(OarError::Invalid)
        ));
        assert!(matches!(
            oar.submit(
                0.0,
                Request {
                    nodes: 1,
                    walltime: 0.0
                }
            ),
            Err(OarError::Invalid)
        ));
    }

    #[test]
    fn early_release_frees_nodes() {
        let mut oar = OarScheduler::new(16);
        let r = oar
            .submit(
                0.0,
                Request {
                    nodes: 16,
                    walltime: 1000.0,
                },
            )
            .unwrap();
        assert!(oar.release(r.id, 100.0));
        let r2 = oar
            .submit(
                100.0,
                Request {
                    nodes: 16,
                    walltime: 10.0,
                },
            )
            .unwrap();
        assert_eq!(r2.start, 100.0);
        assert!(!oar.release(999, 0.0));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut oar = OarScheduler::new(32);
        let mut ends = Vec::new();
        for i in 0..20 {
            let r = oar
                .submit(
                    i as f64,
                    Request {
                        nodes: 8 + (i % 3),
                        walltime: 50.0 + i as f64,
                    },
                )
                .unwrap();
            ends.push(r);
        }
        // At every reservation start, usage must be within capacity.
        for r in &ends {
            let busy = oar.busy_nodes(r.start, r.start + 1e-9);
            assert!(busy <= 32, "capacity exceeded at t={}: {busy}", r.start);
        }
    }
}
