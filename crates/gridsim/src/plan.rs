//! Deployment planning: from platform + batch scheduler to a SeD map.
//!
//! The paper's Section 5.1 deployment (1 MA, 6 LAs, 11 SeDs × 16 machines)
//! was itself the outcome of OAR reservations: each SeD needs 16 machines of
//! one cluster for the campaign's walltime, and "one cluster of Lyon had
//! only one SED due to reservation restrictions" — i.e. the batch system
//! would not grant a second 16-node slot there. This module reproduces that
//! process: ask each cluster's [`OarScheduler`] for `seds_per_cluster`
//! slots, keep those that can start immediately, and emit the resulting
//! deployment plan.

use crate::oar::{OarScheduler, Request, Reservation};
use crate::platform::Grid5000;
use serde::{Deserialize, Serialize};

/// One planned SeD: where it runs and under which reservation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlannedSed {
    /// "cluster-name/i" — the label the middleware deployment will use.
    pub label: String,
    pub cluster: usize,
    pub speed_factor: f64,
    pub reservation: Reservation,
}

/// The outcome of planning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeploymentPlan {
    pub seds: Vec<PlannedSed>,
    /// (cluster index, reason) for every slot that could not start at t=0.
    pub rejected: Vec<(usize, String)>,
}

impl DeploymentPlan {
    pub fn total_seds(&self) -> usize {
        self.seds.len()
    }

    /// Per-LA grouping: (cluster name, SeD labels) — one Local Agent per
    /// cluster, the paper's hierarchy shape.
    pub fn local_agents(&self, platform: &Grid5000) -> Vec<(String, Vec<String>)> {
        let mut out: Vec<(String, Vec<String>)> = platform
            .clusters
            .iter()
            .map(|c| (c.name.clone(), Vec::new()))
            .collect();
        for sed in &self.seds {
            out[sed.cluster].1.push(sed.label.clone());
        }
        out.retain(|(_, seds)| !seds.is_empty());
        out
    }
}

/// Plan a deployment at time `now`: request `seds_per_cluster` slots of
/// `machines_per_sed` machines for `walltime` seconds on every cluster,
/// given each cluster's existing load (`background_busy[cluster]` machines
/// already reserved by other users). Slots that cannot start immediately
/// are rejected — a grid campaign cannot wait hours for its workers.
pub fn plan_deployment(
    platform: &Grid5000,
    seds_per_cluster: usize,
    machines_per_sed: usize,
    walltime: f64,
    background_busy: &[usize],
    now: f64,
) -> DeploymentPlan {
    assert_eq!(background_busy.len(), platform.clusters.len());
    let mut seds = Vec::new();
    let mut rejected = Vec::new();
    for (ci, cluster) in platform.clusters.iter().enumerate() {
        let mut oar = OarScheduler::new(cluster.machines);
        // Other users' standing reservations.
        if background_busy[ci] > 0 {
            oar.submit(
                now,
                Request {
                    nodes: background_busy[ci].min(cluster.machines),
                    walltime: walltime * 10.0,
                },
            )
            .expect("background reservation fits by construction");
        }
        let mut granted = 0;
        for slot in 0..seds_per_cluster {
            match oar.submit(
                now,
                Request {
                    nodes: machines_per_sed,
                    walltime,
                },
            ) {
                Ok(res) if res.start <= now + 1e-9 => {
                    seds.push(PlannedSed {
                        label: format!("{}/{}", cluster.name, granted),
                        cluster: ci,
                        speed_factor: cluster.sed_speed(),
                        reservation: res,
                    });
                    granted += 1;
                }
                Ok(res) => {
                    rejected.push((
                        ci,
                        format!(
                            "slot {slot}: earliest start {:.0}s away (reservation restrictions)",
                            res.start - now
                        ),
                    ));
                }
                Err(e) => {
                    rejected.push((ci, format!("slot {slot}: {e}")));
                }
            }
        }
    }
    DeploymentPlan { seds, rejected }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Background loads tuned so every cluster grants 2 SeDs except
    /// lyon-sagittaire (70 machines, 44 busy → one 16-node slot only).
    fn paper_background(platform: &Grid5000) -> Vec<usize> {
        platform
            .clusters
            .iter()
            .map(|c| {
                if c.name == "lyon-sagittaire" {
                    c.machines - 26 // room for one SeD, not two
                } else {
                    c.machines.saturating_sub(2 * c.machines_per_sed)
                }
            })
            .collect()
    }

    #[test]
    fn paper_deployment_emerges_from_reservations() {
        let g = Grid5000::paper_deployment();
        let bg = paper_background(&g);
        let plan = plan_deployment(&g, 2, 16, 17.0 * 3600.0, &bg, 0.0);
        // 11 SeDs: two per cluster, one on the restricted Lyon cluster.
        assert_eq!(plan.total_seds(), 11, "rejected: {:?}", plan.rejected);
        assert_eq!(plan.rejected.len(), 1);
        let restricted = plan.rejected[0].0;
        assert_eq!(g.clusters[restricted].name, "lyon-sagittaire");
        // One LA per cluster with at least one SeD.
        let las = plan.local_agents(&g);
        assert_eq!(las.len(), 6);
        let sagittaire = las.iter().find(|(n, _)| n == "lyon-sagittaire").unwrap();
        assert_eq!(sagittaire.1.len(), 1);
    }

    #[test]
    fn unloaded_platform_grants_everything() {
        let g = Grid5000::paper_deployment();
        let bg = vec![0; g.clusters.len()];
        let plan = plan_deployment(&g, 2, 16, 3600.0, &bg, 0.0);
        assert_eq!(plan.total_seds(), 12);
        assert!(plan.rejected.is_empty());
    }

    #[test]
    fn oversized_requests_are_rejected_not_fatal() {
        let g = Grid5000::paper_deployment();
        let bg = vec![0; g.clusters.len()];
        // 200 machines per SeD exceeds every cluster.
        let plan = plan_deployment(&g, 1, 200, 3600.0, &bg, 0.0);
        assert_eq!(plan.total_seds(), 0);
        assert_eq!(plan.rejected.len(), g.clusters.len());
    }

    #[test]
    fn labels_are_dense_per_cluster() {
        let g = Grid5000::paper_deployment();
        let bg = vec![0; g.clusters.len()];
        let plan = plan_deployment(&g, 2, 16, 3600.0, &bg, 0.0);
        for (_, seds) in plan.local_agents(&g) {
            for (i, label) in seds.iter().enumerate() {
                assert!(label.ends_with(&format!("/{i}")), "label {label}");
            }
        }
    }
}
