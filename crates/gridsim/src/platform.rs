//! Grid'5000 platform model.
//!
//! The paper's deployment (Section 5.1):
//!
//! * 5 sites, 6 clusters — 2 in Lyon, and 1 each in Lille, Nancy, Toulouse,
//!   Sophia;
//! * 1 Master Agent node (with omniORB, monitoring, client);
//! * 6 Local Agents — one per cluster;
//! * 11 SeDs — two per cluster except one Lyon cluster with one (reservation
//!   restrictions), each controlling 16 machines;
//! * node models AMD Opteron 246 / 248 / 250 / 252 / 275.
//!
//! The Opteron speed factors are relative throughputs on the RAMSES workload
//! (clock-derived: 2.0, 2.2, 2.4, 2.6 GHz and the dual-core 2.2 GHz 275),
//! chosen so the per-SeD campaign totals reproduce the paper's Figure 4
//! spread (~10.5 h fastest site vs ~15 h slowest).

use serde::{Deserialize, Serialize};

/// AMD Opteron models present in the paper's reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeType {
    Opteron246,
    Opteron248,
    Opteron250,
    Opteron252,
    Opteron275,
}

impl NodeType {
    /// Relative single-simulation throughput (1.0 = the reference
    /// Opteron 250 cluster used for calibration). A higher factor completes
    /// the same simulation faster.
    pub fn speed_factor(self) -> f64 {
        match self {
            NodeType::Opteron246 => 0.80, // 2.0 GHz
            NodeType::Opteron248 => 0.90, // 2.2 GHz
            NodeType::Opteron250 => 1.00, // 2.4 GHz (reference)
            NodeType::Opteron252 => 1.10, // 2.6 GHz
            NodeType::Opteron275 => 1.15, // dual-core 2.2 GHz, better MPI overlap
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            NodeType::Opteron246 => "Opteron 246",
            NodeType::Opteron248 => "Opteron 248",
            NodeType::Opteron250 => "Opteron 250",
            NodeType::Opteron252 => "Opteron 252",
            NodeType::Opteron275 => "Opteron 275",
        }
    }
}

/// One cluster: a homogeneous set of nodes behind a shared NFS volume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    pub name: String,
    pub site: String,
    pub node_type: NodeType,
    /// Total machines available to reservations.
    pub machines: usize,
    /// Number of SeDs deployed on this cluster (paper: 2, one Lyon cluster 1).
    pub seds: usize,
    /// Machines controlled by each SeD (paper: 16).
    pub machines_per_sed: usize,
}

impl Cluster {
    /// Effective speed of one SeD slot on this cluster (node speed; the
    /// 16-machine MPI pool is what one "simulation slot" means).
    pub fn sed_speed(&self) -> f64 {
        self.node_type.speed_factor()
    }
}

/// One Grid'5000 site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Site {
    pub name: String,
    pub clusters: Vec<usize>,
}

/// The modelled platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grid5000 {
    pub sites: Vec<Site>,
    pub clusters: Vec<Cluster>,
}

/// Identifier of a SeD slot on the platform: (cluster index, sed index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SedId {
    pub cluster: usize,
    pub sed: usize,
}

impl std::fmt::Display for SedId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}s{}", self.cluster, self.sed)
    }
}

impl Grid5000 {
    /// The paper's deployment: 5 sites, 6 clusters, 11 SeDs × 16 Opterons.
    /// Node models are assigned per cluster to heterogeneous types so that
    /// per-SeD totals spread as in Figure 4 (Toulouse slowest, Nancy
    /// fastest). Clusters are enumerated fastest-first: DIET's agents answer
    /// in hierarchy order, and the paper's trace shows the first request
    /// (part 1) and the single 10-request SeD both landing on fast clusters
    /// — keeping the makespan governed by the 9-request slow clusters.
    pub fn paper_deployment() -> Self {
        let clusters = vec![
            Cluster {
                name: "nancy-grelon".into(),
                site: "Nancy".into(),
                node_type: NodeType::Opteron275,
                machines: 120,
                seds: 2,
                machines_per_sed: 16,
            },
            Cluster {
                name: "sophia-helios".into(),
                site: "Sophia".into(),
                node_type: NodeType::Opteron252,
                machines: 56,
                seds: 2,
                machines_per_sed: 16,
            },
            Cluster {
                name: "lyon-sagittaire".into(),
                site: "Lyon".into(),
                node_type: NodeType::Opteron250,
                machines: 70,
                seds: 1, // "one cluster of Lyon had only one SED due to reservation restrictions"
                machines_per_sed: 16,
            },
            Cluster {
                name: "lille-chti".into(),
                site: "Lille".into(),
                node_type: NodeType::Opteron248,
                machines: 53,
                seds: 2,
                machines_per_sed: 16,
            },
            Cluster {
                name: "lyon-capricorne".into(),
                site: "Lyon".into(),
                node_type: NodeType::Opteron246,
                machines: 56,
                seds: 2,
                machines_per_sed: 16,
            },
            Cluster {
                name: "toulouse-violette".into(),
                site: "Toulouse".into(),
                node_type: NodeType::Opteron246,
                machines: 57,
                seds: 2,
                machines_per_sed: 16,
            },
        ];
        let mut sites: Vec<Site> = Vec::new();
        for (ci, c) in clusters.iter().enumerate() {
            match sites.iter_mut().find(|s| s.name == c.site) {
                Some(s) => s.clusters.push(ci),
                None => sites.push(Site {
                    name: c.site.clone(),
                    clusters: vec![ci],
                }),
            }
        }
        Grid5000 { sites, clusters }
    }

    /// Enumerate all SeD slots, cluster-major.
    pub fn sed_ids(&self) -> Vec<SedId> {
        let mut out = Vec::new();
        for (ci, c) in self.clusters.iter().enumerate() {
            for s in 0..c.seds {
                out.push(SedId {
                    cluster: ci,
                    sed: s,
                });
            }
        }
        out
    }

    pub fn total_seds(&self) -> usize {
        self.clusters.iter().map(|c| c.seds).sum()
    }

    pub fn total_machines_reserved(&self) -> usize {
        self.clusters
            .iter()
            .map(|c| c.seds * c.machines_per_sed)
            .sum()
    }

    /// Speed factor of a given SeD slot.
    pub fn sed_speed(&self, id: SedId) -> f64 {
        self.clusters[id.cluster].sed_speed()
    }

    /// Human-readable SeD label like "toulouse-violette/1".
    pub fn sed_label(&self, id: SedId) -> String {
        format!("{}/{}", self.clusters[id.cluster].name, id.sed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_deployment_matches_section_5() {
        let g = Grid5000::paper_deployment();
        assert_eq!(g.clusters.len(), 6);
        assert_eq!(g.sites.len(), 5);
        assert_eq!(g.total_seds(), 11);
        assert_eq!(g.total_machines_reserved(), 11 * 16);
        // Lyon hosts two clusters.
        let lyon = g.sites.iter().find(|s| s.name == "Lyon").unwrap();
        assert_eq!(lyon.clusters.len(), 2);
    }

    #[test]
    fn sed_ids_enumerate_all_slots() {
        let g = Grid5000::paper_deployment();
        let ids = g.sed_ids();
        assert_eq!(ids.len(), 11);
        // Unique.
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 11);
    }

    #[test]
    fn speed_factors_are_heterogeneous_and_ordered() {
        assert!(NodeType::Opteron246.speed_factor() < NodeType::Opteron248.speed_factor());
        assert!(NodeType::Opteron248.speed_factor() < NodeType::Opteron250.speed_factor());
        assert!(NodeType::Opteron250.speed_factor() < NodeType::Opteron252.speed_factor());
        assert!(NodeType::Opteron252.speed_factor() <= NodeType::Opteron275.speed_factor());
    }

    #[test]
    fn toulouse_slower_than_nancy() {
        // The calibration target behind Figure 4's imbalance.
        let g = Grid5000::paper_deployment();
        let toulouse = g
            .clusters
            .iter()
            .find(|c| c.site == "Toulouse")
            .unwrap()
            .sed_speed();
        let nancy = g
            .clusters
            .iter()
            .find(|c| c.site == "Nancy")
            .unwrap()
            .sed_speed();
        assert!(toulouse < nancy);
    }

    #[test]
    fn labels_are_stable() {
        let g = Grid5000::paper_deployment();
        let ids = g.sed_ids();
        assert_eq!(g.sed_label(ids[0]), "nancy-grelon/0");
    }
}
