//! RENATER network model.
//!
//! Sites are connected through the RENATER research backbone at 1 or
//! 10 Gb/s; intra-cluster traffic rides gigabit Ethernet. Transfers follow
//! the classic latency + bandwidth model `T(S) = L + S / B`, which is also
//! what DIET's performance forecaster assumed. Routes concatenate links
//! (latencies add, bandwidth is the bottleneck link).

use serde::{Deserialize, Serialize};

/// A network link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One-way latency, seconds.
    pub latency: f64,
    /// Bandwidth, bytes per second.
    pub bandwidth: f64,
}

impl Link {
    pub fn new(latency: f64, bandwidth: f64) -> Self {
        assert!(latency >= 0.0 && bandwidth > 0.0);
        Link { latency, bandwidth }
    }

    /// 1 Gb/s Ethernet with LAN latency.
    pub fn lan() -> Self {
        Link::new(100e-6, 125e6)
    }

    /// RENATER 1 Gb/s WAN hop.
    pub fn renater_1g(latency: f64) -> Self {
        Link::new(latency, 125e6)
    }

    /// RENATER 10 Gb/s WAN hop.
    pub fn renater_10g(latency: f64) -> Self {
        Link::new(latency, 1.25e9)
    }

    /// Transfer time of `size` bytes.
    pub fn transfer_time(&self, size: u64) -> f64 {
        self.latency + size as f64 / self.bandwidth
    }
}

/// A route: an ordered sequence of links.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Route {
    pub links: Vec<Link>,
}

impl Route {
    pub fn new(links: Vec<Link>) -> Self {
        Route { links }
    }

    /// End-to-end latency: sum of per-link latencies.
    pub fn latency(&self) -> f64 {
        self.links.iter().map(|l| l.latency).sum()
    }

    /// Bottleneck bandwidth: the minimum along the path.
    pub fn bandwidth(&self) -> f64 {
        self.links
            .iter()
            .map(|l| l.bandwidth)
            .fold(f64::INFINITY, f64::min)
    }

    /// Store-and-forward approximation of the transfer time for `size` bytes:
    /// path latency plus serialisation on the bottleneck.
    pub fn transfer_time(&self, size: u64) -> f64 {
        if self.links.is_empty() {
            return 0.0;
        }
        self.latency() + size as f64 / self.bandwidth()
    }
}

/// All-pairs site topology with a star RENATER core (each site connects to
/// the Paris core with one WAN hop), plus a LAN hop inside each site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    site_names: Vec<String>,
    /// Site uplinks to the core, indexed like `site_names`.
    uplinks: Vec<Link>,
    lan: Link,
}

impl Topology {
    /// RENATER circa 2006: Lyon and Sophia on 10 Gb/s, others on 1 Gb/s;
    /// one-way core latencies approximate geographic RTTs.
    pub fn renater_2006(site_names: &[String]) -> Self {
        let uplinks = site_names
            .iter()
            .map(|name| match name.as_str() {
                "Lyon" => Link::renater_10g(2.0e-3),
                "Sophia" => Link::renater_10g(4.0e-3),
                "Lille" => Link::renater_1g(2.5e-3),
                "Nancy" => Link::renater_1g(3.0e-3),
                "Toulouse" => Link::renater_1g(4.0e-3),
                _ => Link::renater_1g(3.0e-3),
            })
            .collect();
        Topology {
            site_names: site_names.to_vec(),
            uplinks,
            lan: Link::lan(),
        }
    }

    fn site_index(&self, name: &str) -> Option<usize> {
        self.site_names.iter().position(|s| s == name)
    }

    /// Route between two sites (LAN + up + down + LAN), or pure LAN when the
    /// endpoints share a site.
    pub fn route(&self, from: &str, to: &str) -> Route {
        if from == to {
            return Route::new(vec![self.lan]);
        }
        let fi = self.site_index(from).expect("unknown source site");
        let ti = self.site_index(to).expect("unknown destination site");
        Route::new(vec![self.lan, self.uplinks[fi], self.uplinks[ti], self.lan])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        ["Lyon", "Lille", "Nancy", "Toulouse", "Sophia"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn link_transfer_time_model() {
        let l = Link::new(0.001, 1000.0);
        assert!((l.transfer_time(500) - 0.501).abs() < 1e-12);
        assert!((l.transfer_time(0) - 0.001).abs() < 1e-15);
    }

    #[test]
    fn route_latency_adds_and_bandwidth_bottlenecks() {
        let r = Route::new(vec![Link::new(0.001, 100.0), Link::new(0.002, 10.0)]);
        assert!((r.latency() - 0.003).abs() < 1e-12);
        assert_eq!(r.bandwidth(), 10.0);
        assert!((r.transfer_time(100) - (0.003 + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn same_site_is_lan_only() {
        let t = Topology::renater_2006(&names());
        let r = t.route("Lyon", "Lyon");
        assert_eq!(r.links.len(), 1);
        assert!(r.latency() < 1e-3);
    }

    #[test]
    fn cross_site_goes_through_core() {
        let t = Topology::renater_2006(&names());
        let r = t.route("Lille", "Toulouse");
        assert_eq!(r.links.len(), 4);
        // 2.5 ms + 4 ms + 2 LAN hops.
        assert!(r.latency() > 6e-3 && r.latency() < 8e-3);
        // Bottleneck is 1 Gb/s even between 10G sites and 1G sites.
        let r2 = t.route("Lyon", "Nancy");
        assert_eq!(r2.bandwidth(), 125e6);
    }

    #[test]
    fn ten_gig_between_fast_sites() {
        let t = Topology::renater_2006(&names());
        let r = t.route("Lyon", "Sophia");
        // Bottleneck is the LAN hop (1 Gb/s), modelling cluster NICs.
        assert_eq!(r.bandwidth(), 125e6);
        // But WAN hops themselves are 10G.
        assert!(r.links[1].bandwidth > 1e9 && r.links[2].bandwidth > 1e9);
    }

    #[test]
    fn route_is_symmetric_in_time() {
        let t = Topology::renater_2006(&names());
        let a = t.route("Nancy", "Sophia").transfer_time(1 << 20);
        let b = t.route("Sophia", "Nancy").transfer_time(1 << 20);
        assert!((a - b).abs() < 1e-12);
    }
}
