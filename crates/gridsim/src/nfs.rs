//! Shared working-directory (NFS) model.
//!
//! "The current version of RAMSES requires a NFS working directory in order
//! to write the output files, hence restricting the possible types of
//! solving architectures. Each DIET server will be in charge of a set of
//! machines ... belonging to the same cluster."
//!
//! We model each cluster's NFS volume as a capacity-limited store with a
//! shared write channel: concurrent writers split the volume bandwidth, so a
//! SeD running several stages at once pays I/O contention — the reason the
//! paper serialises one simulation per SeD.

use std::collections::HashMap;

/// One cluster's NFS volume.
#[derive(Debug, Clone)]
pub struct NfsVolume {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Aggregate write bandwidth, bytes/s.
    pub write_bw: f64,
    /// Aggregate read bandwidth, bytes/s.
    pub read_bw: f64,
    used: u64,
    files: HashMap<String, u64>,
}

/// Errors from volume operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfsError {
    OutOfSpace { requested: u64, free: u64 },
    NoSuchFile(String),
    AlreadyExists(String),
}

impl std::fmt::Display for NfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NfsError::OutOfSpace { requested, free } => {
                write!(f, "out of space: need {requested}, free {free}")
            }
            NfsError::NoSuchFile(p) => write!(f, "no such file: {p}"),
            NfsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
        }
    }
}

impl std::error::Error for NfsError {}

impl NfsVolume {
    /// A typical 2006 cluster scratch volume: 1 TB, ~60 MB/s writes over NFS.
    pub fn cluster_scratch() -> Self {
        NfsVolume::new(1 << 40, 60e6, 80e6)
    }

    pub fn new(capacity: u64, write_bw: f64, read_bw: f64) -> Self {
        NfsVolume {
            capacity,
            write_bw,
            read_bw,
            used: 0,
            files: HashMap::new(),
        }
    }

    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    pub fn used(&self) -> u64 {
        self.used
    }

    pub fn file_size(&self, path: &str) -> Option<u64> {
        self.files.get(path).copied()
    }

    /// Create a file; returns the virtual time needed to write it given
    /// `concurrent_writers` (≥ 1) sharing the volume.
    pub fn write(
        &mut self,
        path: &str,
        size: u64,
        concurrent_writers: usize,
    ) -> Result<f64, NfsError> {
        if self.files.contains_key(path) {
            return Err(NfsError::AlreadyExists(path.to_string()));
        }
        if size > self.free() {
            return Err(NfsError::OutOfSpace {
                requested: size,
                free: self.free(),
            });
        }
        self.files.insert(path.to_string(), size);
        self.used += size;
        let share = self.write_bw / concurrent_writers.max(1) as f64;
        Ok(size as f64 / share)
    }

    /// Read a file; returns the virtual read time.
    pub fn read(&self, path: &str, concurrent_readers: usize) -> Result<f64, NfsError> {
        let size = self
            .file_size(path)
            .ok_or_else(|| NfsError::NoSuchFile(path.to_string()))?;
        let share = self.read_bw / concurrent_readers.max(1) as f64;
        Ok(size as f64 / share)
    }

    /// Remove a file, reclaiming space (post-campaign cleanup).
    pub fn remove(&mut self, path: &str) -> Result<u64, NfsError> {
        match self.files.remove(path) {
            Some(size) => {
                self.used -= size;
                Ok(size)
            }
            None => Err(NfsError::NoSuchFile(path.to_string())),
        }
    }

    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut v = NfsVolume::new(1000, 100.0, 200.0);
        let wt = v.write("snap.bin", 500, 1).unwrap();
        assert!((wt - 5.0).abs() < 1e-12);
        let rt = v.read("snap.bin", 1).unwrap();
        assert!((rt - 2.5).abs() < 1e-12);
        assert_eq!(v.used(), 500);
    }

    #[test]
    fn contention_slows_writers() {
        let mut v = NfsVolume::new(10_000, 100.0, 100.0);
        let t1 = v.write("a", 100, 1).unwrap();
        let t4 = v.write("b", 100, 4).unwrap();
        assert!((t4 - 4.0 * t1).abs() < 1e-12);
    }

    #[test]
    fn out_of_space_rejected() {
        let mut v = NfsVolume::new(100, 10.0, 10.0);
        v.write("a", 90, 1).unwrap();
        match v.write("b", 20, 1) {
            Err(NfsError::OutOfSpace { requested, free }) => {
                assert_eq!(requested, 20);
                assert_eq!(free, 10);
            }
            other => panic!("expected OutOfSpace, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_write_rejected() {
        let mut v = NfsVolume::new(1000, 10.0, 10.0);
        v.write("a", 10, 1).unwrap();
        assert!(matches!(
            v.write("a", 10, 1),
            Err(NfsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn remove_reclaims_space() {
        let mut v = NfsVolume::new(100, 10.0, 10.0);
        v.write("a", 60, 1).unwrap();
        assert_eq!(v.remove("a").unwrap(), 60);
        assert_eq!(v.free(), 100);
        assert!(matches!(v.remove("a"), Err(NfsError::NoSuchFile(_))));
        // Space can be reused.
        v.write("b", 100, 1).unwrap();
    }

    #[test]
    fn read_missing_file_fails() {
        let v = NfsVolume::new(100, 10.0, 10.0);
        assert!(matches!(v.read("ghost", 1), Err(NfsError::NoSuchFile(_))));
    }
}
