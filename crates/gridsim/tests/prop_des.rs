//! Property tests for the discrete-event engine, the network model and the
//! workload calibration.

use gridsim::des::Engine;
use gridsim::network::{Link, Route};
use gridsim::trace::{Gantt, TraceKind};
use gridsim::workload::{TaskKind, WorkloadModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events always fire in non-decreasing time order, with FIFO ties,
    /// regardless of the scheduling order.
    #[test]
    fn des_fires_in_order(times in prop::collection::vec(0.0f64..1e6, 1..100)) {
        let mut eng: Engine<Vec<(f64, usize)>> = Engine::new();
        let mut log: Vec<(f64, usize)> = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            eng.schedule_at(t, move |e, s: &mut Vec<(f64, usize)>| {
                s.push((e.now(), i));
            });
        }
        eng.run(&mut log, None);
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            prop_assert!(w[1].0 >= w[0].0);
            if w[1].0 == w[0].0 {
                prop_assert!(w[1].1 > w[0].1, "FIFO tie-break violated");
            }
        }
    }

    /// The engine clock equals the max event time after a full run.
    #[test]
    fn des_clock_is_max_time(times in prop::collection::vec(0.0f64..1e5, 1..60)) {
        let mut eng: Engine<()> = Engine::new();
        for &t in &times {
            eng.schedule_at(t, |_, _| {});
        }
        let end = eng.run(&mut (), None);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        prop_assert_eq!(end, max);
        prop_assert_eq!(eng.executed, times.len() as u64);
    }

    /// Transfer times are additive in size and monotone in both latency and
    /// bandwidth for single links; routes bottleneck on the slowest link.
    #[test]
    fn network_model_properties(
        lat in 1e-6f64..1.0,
        bw in 1e3f64..1e10,
        s1 in 0u64..1_000_000,
        s2 in 0u64..1_000_000,
    ) {
        let l = Link::new(lat, bw);
        let t1 = l.transfer_time(s1);
        let t2 = l.transfer_time(s2);
        let t12 = l.transfer_time(s1 + s2);
        // T(a+b) = T(a) + T(b) − latency (latency paid once).
        prop_assert!((t12 - (t1 + t2 - lat)).abs() < 1e-9 * (1.0 + t12));

        let route = Route::new(vec![l, Link::new(lat * 2.0, bw / 2.0)]);
        prop_assert!((route.latency() - 3.0 * lat).abs() < 1e-12);
        prop_assert_eq!(route.bandwidth(), bw / 2.0);
        prop_assert!(route.transfer_time(s1) >= l.transfer_time(s1));
    }

    /// Workload durations scale exactly inversely with SeD speed, and the
    /// dispersion stays within its configured band.
    #[test]
    fn workload_scaling(halo in 0u32..10_000, speed in 0.1f64..4.0, seed in 0u64..1000) {
        let m = WorkloadModel { seed, ..WorkloadModel::default() };
        let kind = TaskKind::ZoomPart2 { halo_index: halo };
        let ref_d = m.duration_on(kind, 1.0);
        let d = m.duration_on(kind, speed);
        prop_assert!((d * speed - ref_d).abs() < 1e-9 * ref_d);
        let disp = m.dispersion(halo);
        prop_assert!(disp >= 1.0 - m.part2_dispersion - 1e-12);
        prop_assert!(disp <= 1.0 + m.part2_dispersion + 1e-12);
    }

    /// Gantt bookkeeping: makespan bounds every event and per-SeD busy time
    /// never exceeds the makespan for serial executions.
    #[test]
    fn gantt_consistency(intervals in prop::collection::vec((0.0f64..1e4, 0.0f64..1e3), 1..60)) {
        let mut g = Gantt::default();
        let mut t = 0.0;
        for (i, (gap, dur)) in intervals.iter().enumerate() {
            t += gap;
            g.record(i as u32, "sed0", TraceKind::Execution, t, t + dur);
            t += dur;
        }
        let span = g.makespan();
        for e in &g.events {
            prop_assert!(e.start >= 0.0 && e.end <= span + g.events[0].start + 1e-9);
        }
        let s = g.sed_summaries();
        prop_assert_eq!(s.len(), 1);
        prop_assert!(s[0].busy <= span + 1e-9);
        prop_assert_eq!(s[0].requests, intervals.len());
    }
}
