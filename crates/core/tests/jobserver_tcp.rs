//! The durable campaign jobserver over real sockets: a separate
//! task-queue process (here: a separate listener in-process) that drives
//! campaigns through the MA hierarchy, survives restarts from its WAL,
//! and re-queues work stranded on dead SeDs.

use diet_core::dag::{DagInput, DagNodeSpec, WorkflowSpec};
use diet_core::data::{DietValue, Persistence};
use diet_core::deploy::TcpTopologySpec;
use diet_core::jobserver::{
    serve_jobserver_over_tcp, JobClient, JobServer, JobServerConfig, TaskPayload, TaskState,
};
use diet_core::profile::{ArgTag, Profile, ProfileDesc};
use diet_core::sched::RoundRobin;
use diet_core::sed::{ServiceTable, SolveFn};
use diet_core::transport::ServerConfig;
use diet_core::Obs;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

type SolveCounts = Arc<Mutex<HashMap<i32, u32>>>;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "diet-jstcp-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// `echo` service that counts how many times each input was solved —
/// the probe for the exactly-once-per-done-task guarantee.
fn counting_table(counts: &SolveCounts, delay: Duration) -> ServiceTable {
    let mut d = ProfileDesc::alloc("echo", 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    let counts = counts.clone();
    let solve: SolveFn = Arc::new(move |p: &mut Profile| {
        let x = p.get_i32(0)?;
        *counts.lock().unwrap().entry(x).or_insert(0) += 1;
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        p.set(1, DietValue::ScalarI32(x + 1), Persistence::Volatile)?;
        Ok(0)
    });
    let mut t = ServiceTable::init(2);
    t.add(d, solve).unwrap();
    t
}

fn call_task(x: i32) -> TaskPayload {
    let mut d = ProfileDesc::alloc("echo", 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    let mut p = Profile::alloc(&d);
    p.set(0, DietValue::ScalarI32(x), Persistence::Volatile)
        .unwrap();
    TaskPayload::Call(p)
}

fn dag_task(x: i32) -> TaskPayload {
    // Two chained echo calls: node 1 consumes node 0's output.
    let mut d = ProfileDesc::alloc("echo", 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    let mut a = Profile::alloc(&d);
    a.set(0, DietValue::ScalarI32(x), Persistence::Volatile)
        .unwrap();
    let mut b = DagNodeSpec::new(1, Profile::alloc(&d));
    b.deps = vec![0];
    b.inputs = vec![DagInput {
        arg: 0,
        from_node: 0,
        from_arg: 1,
    }];
    TaskPayload::Dag(WorkflowSpec {
        name: format!("chain-{x}"),
        nodes: vec![DagNodeSpec::new(0, a), b],
    })
}

fn server_config(dir: &PathBuf) -> JobServerConfig {
    let mut cfg = JobServerConfig::new(dir);
    cfg.workers = 3;
    cfg.retry.attempt_timeout = Duration::from_secs(5);
    cfg.heartbeat = Some(Duration::from_millis(100));
    cfg.heartbeat_timeout = Duration::from_millis(100);
    cfg.heartbeat_misses = 2;
    cfg
}

/// A mixed campaign (plain calls + one data-flow DAG) submitted over the
/// wire runs to completion through the MA hierarchy, and the progress
/// feed carries every transition.
#[test]
fn campaign_runs_end_to_end_over_tcp() {
    let counts: SolveCounts = Arc::new(Mutex::new(HashMap::new()));
    let d = TcpTopologySpec::chain(1, 2)
        .deploy(Arc::new(RoundRobin::new()), |_| {
            counting_table(&counts, Duration::ZERO)
        })
        .unwrap();
    let dir = tmpdir("e2e");
    let obs = Arc::new(Obs::new());
    let js = JobServer::spawn(
        server_config(&dir),
        d.ma_client.clone(),
        d.pool.clone(),
        obs.clone(),
    )
    .unwrap();
    let server =
        serve_jobserver_over_tcp(js.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = JobClient::connect(server.local_addr);
    assert!(client.ping(Duration::from_secs(1)));

    let n_calls = 24;
    let mut tasks: Vec<TaskPayload> = (0..n_calls).map(call_task).collect();
    tasks.push(dag_task(1000));
    let (cid, ids) = client.submit_tasks("mixed", tasks).unwrap();
    assert_eq!(ids.len(), n_calls as usize + 1);

    let (summary, events) = client
        .wait(cid, Duration::from_millis(20), Duration::from_secs(30))
        .unwrap();
    assert_eq!(summary.done, n_calls as u64 + 1);
    assert_eq!(summary.failed, 0);
    assert!(summary.finished);

    // Every task's feed starts at its first dispatch and ends Done.
    // (Task creation is a WAL record, not a transition, so Pending only
    // appears in the feed on requeues.)
    for tid in 0..=n_calls as u64 {
        let states: Vec<TaskState> = events
            .iter()
            .filter(|e| e.task_id == tid)
            .map(|e| e.state)
            .collect();
        assert_eq!(states.first(), Some(&TaskState::Dispatched), "task {tid}");
        assert_eq!(states.last(), Some(&TaskState::Done), "task {tid}");
    }
    // Done calls carry the solving SeD's label; the DAG ran in-engine.
    let st = client.task_status(cid, 0).unwrap();
    assert!(st.sed.starts_with("d1/"), "unexpected sed {:?}", st.sed);
    let st = client.task_status(cid, n_calls as u64).unwrap();
    assert_eq!(st.sed, "dag");

    // The solver saw each call input exactly once (two for the DAG chain).
    let counts = counts.lock().unwrap();
    for x in 0..n_calls {
        assert_eq!(counts.get(&x), Some(&1), "input {x} recomputed");
    }
    assert!(obs.metrics.counter("diet_jobserver_tasks_done_total").get() >= n_calls as u64);

    js.shutdown();
    server.kill();
    d.shutdown();
}

/// Submitting the same campaign name twice (a client crash-loop) attaches
/// to the existing campaign instead of duplicating work, and a second
/// client can follow along with its own cursor.
#[test]
fn resubmit_is_idempotent_and_clients_share_cursors() {
    let counts: SolveCounts = Arc::new(Mutex::new(HashMap::new()));
    let d = TcpTopologySpec::chain(1, 2)
        .deploy(Arc::new(RoundRobin::new()), |_| {
            counting_table(&counts, Duration::from_millis(2))
        })
        .unwrap();
    let dir = tmpdir("idem");
    let js = JobServer::spawn(
        server_config(&dir),
        d.ma_client.clone(),
        d.pool.clone(),
        Arc::new(Obs::new()),
    )
    .unwrap();
    let server =
        serve_jobserver_over_tcp(js.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();

    let a = JobClient::connect(server.local_addr);
    let b = JobClient::connect(server.local_addr);
    let n = 16;
    let tasks: Vec<TaskPayload> = (0..n).map(call_task).collect();
    let (cid, _) = a.submit_tasks("camp", tasks).unwrap();
    // Client crash-loop: resubmission returns the same campaign.
    let (cid2, ids2) = a
        .submit_tasks("camp", (0..n).map(call_task).collect())
        .unwrap();
    assert_eq!(cid, cid2);
    assert_eq!(ids2.len(), n as usize);
    // A second process attaches by name and gets the same campaign id.
    let att = b.attach("camp").unwrap();
    assert_eq!(att.campaign_id, cid);

    let (summary, events_a) = a
        .wait(cid, Duration::from_millis(10), Duration::from_secs(30))
        .unwrap();
    assert_eq!(summary.done, n as u64);

    // Client B replays the full history afterwards through paged cursors
    // and sees exactly the same event sequence.
    let mut cursor = 0;
    let mut events_b = Vec::new();
    loop {
        let (s, batch) = b.progress(cid, cursor).unwrap();
        if batch.is_empty() {
            assert!(s.finished);
            break;
        }
        cursor = batch.last().unwrap().seq;
        events_b.extend(batch);
    }
    let sig = |evs: &[diet_core::TaskEventRec]| -> Vec<(u64, u64, TaskState)> {
        evs.iter().map(|e| (e.seq, e.task_id, e.state)).collect()
    };
    assert_eq!(sig(&events_a), sig(&events_b));

    // Exactly-once despite the duplicate submission.
    let counts = counts.lock().unwrap();
    for x in 0..n {
        assert_eq!(counts.get(&x), Some(&1), "input {x} recomputed");
    }

    js.shutdown();
    server.kill();
    d.shutdown();
}

/// Kill a SeD mid-campaign: the heartbeat declares it dead, its stranded
/// tasks are re-queued, and the campaign finishes on the survivor.
#[test]
fn dead_sed_tasks_are_requeued_and_finish_elsewhere() {
    let counts: SolveCounts = Arc::new(Mutex::new(HashMap::new()));
    let d = TcpTopologySpec::chain(1, 2)
        .deploy(Arc::new(RoundRobin::new()), |_| {
            counting_table(&counts, Duration::from_millis(5))
        })
        .unwrap();
    let dir = tmpdir("deadsed");
    let obs = Arc::new(Obs::new());
    let mut cfg = server_config(&dir);
    cfg.workers = 2;
    let js = JobServer::spawn(cfg, d.ma_client.clone(), d.pool.clone(), obs.clone()).unwrap();
    let server =
        serve_jobserver_over_tcp(js.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = JobClient::connect(server.local_addr);

    let n = 40;
    let (cid, _) = client
        .submit_tasks("mortal", (0..n).map(call_task).collect())
        .unwrap();

    // Let the campaign get going, then crash one SeD's listener.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = client.attach("mortal").unwrap();
        if s.done >= 5 {
            break;
        }
        assert!(Instant::now() < deadline, "campaign never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    let victim = &d.sed_servers[0];
    victim.kill();

    let (summary, _) = client
        .wait(cid, Duration::from_millis(20), Duration::from_secs(60))
        .unwrap();
    assert_eq!(summary.done, n as u64, "tasks lost with the dead SeD");
    assert_eq!(summary.failed, 0);
    assert!(
        obs.metrics
            .counter("diet_jobserver_machines_dead_total")
            .get()
            >= 1,
        "heartbeat never declared the killed SeD dead"
    );
    // Everything still solved: dead-SeD attempts either finished before
    // the kill or were re-run elsewhere (at-least-once for in-flight,
    // exactly-once for completed).
    let counts = counts.lock().unwrap();
    for x in 0..n {
        assert!(counts.get(&x).copied().unwrap_or(0) >= 1, "input {x} lost");
    }

    js.shutdown();
    server.kill();
    d.shutdown();
}

/// Restart the jobserver mid-campaign on the same directory: recovery
/// replays the WAL, keeps every completed task done (zero recompute), and
/// finishes the remainder.
#[test]
fn restart_recovers_done_work_without_recompute() {
    let counts: SolveCounts = Arc::new(Mutex::new(HashMap::new()));
    let d = TcpTopologySpec::chain(1, 2)
        .deploy(Arc::new(RoundRobin::new()), |_| {
            counting_table(&counts, Duration::from_millis(5))
        })
        .unwrap();
    let dir = tmpdir("restart");
    let n = 40;

    // Phase 1: run until a third is done, then take the server down.
    let done_before: Vec<u64>;
    {
        let js = JobServer::spawn(
            server_config(&dir),
            d.ma_client.clone(),
            d.pool.clone(),
            Arc::new(Obs::new()),
        )
        .unwrap();
        let server =
            serve_jobserver_over_tcp(js.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
        let client = JobClient::connect(server.local_addr);
        let (cid, _) = client
            .submit_tasks("durable", (0..n).map(call_task).collect())
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let s = client.attach("durable").unwrap();
            if s.done >= n as u64 / 3 {
                break;
            }
            assert!(Instant::now() < deadline, "campaign never progressed");
            std::thread::sleep(Duration::from_millis(10));
        }
        server.kill();
        js.shutdown();
        done_before = (0..n as u64)
            .filter(|&tid| js.store().task_status(cid, tid).unwrap().state == TaskState::Done)
            .collect();
        assert!(!done_before.is_empty());
    }

    // Phase 2: fresh server, same directory. Completed work must survive.
    let obs = Arc::new(Obs::new());
    let js = JobServer::spawn(
        server_config(&dir),
        d.ma_client.clone(),
        d.pool.clone(),
        obs.clone(),
    )
    .unwrap();
    let server =
        serve_jobserver_over_tcp(js.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = JobClient::connect(server.local_addr);
    let att = client.attach("durable").unwrap();
    assert!(
        att.done >= done_before.len() as u64,
        "done work lost in restart"
    );

    let (summary, _) = client
        .wait(
            att.campaign_id,
            Duration::from_millis(20),
            Duration::from_secs(60),
        )
        .unwrap();
    assert_eq!(summary.done, n as u64);
    assert_eq!(summary.failed, 0);

    // The graceful shutdown drained in-flight attempts, so recovery must
    // not have re-run anything: every input solved exactly once.
    let counts = counts.lock().unwrap();
    for x in 0..n {
        assert_eq!(
            counts.get(&x),
            Some(&1),
            "input {x} recomputed after restart"
        );
    }

    js.shutdown();
    server.kill();
    d.shutdown();
}
