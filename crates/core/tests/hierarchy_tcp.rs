//! The distributed hierarchy end to end: MAs, LAs, and SeDs as separate
//! TCP processes (local processes in these tests — separate listeners,
//! separate connections, nothing shared but the wire).

use diet_core::data::{DietValue, Persistence};
use diet_core::deploy::{SedSpec, TcpSiteSpec, TcpTopologySpec};
use diet_core::hierarchy::{
    serve_agent_over_tcp_at, serve_ma_over_tcp, serve_sed_over_tcp, AgentConfig, RemoteAgentClient,
};
use diet_core::profile::{ArgTag, Profile, ProfileDesc};
use diet_core::sched::RoundRobin;
use diet_core::sed::{SedConfig, SedHandle, ServiceTable, SolveFn};
use diet_core::transport::TcpSedPool;
use diet_core::{
    AgentNode, DietClient, DietError, HeartbeatMonitor, MasterAgent, Obs, RetryPolicy,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn table(service: &'static str) -> ServiceTable {
    let mut d = ProfileDesc::alloc(service, 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    let solve: SolveFn = Arc::new(|p: &mut Profile| {
        let x = p.get_i32(0)?;
        p.set(1, DietValue::ScalarI32(x + 1), Persistence::Volatile)?;
        Ok(0)
    });
    let mut t = ServiceTable::init(2);
    t.add(d, solve).unwrap();
    t
}

fn request(service: &str, x: i32) -> Profile {
    let mut d = ProfileDesc::alloc(service, 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    let mut p = Profile::alloc(&d);
    p.set(0, DietValue::ScalarI32(x), Persistence::Volatile)
        .unwrap();
    p
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        attempt_timeout: Duration::from_secs(10),
        max_retries: 6,
        backoff_base: Duration::from_millis(20),
        backoff_cap: Duration::from_millis(200),
        jitter: 0.5,
    }
}

/// The tentpole, end to end: a 3-level MA → LA → LA topology where the
/// client's submit crosses two remote agent hops before a SeD is chosen,
/// and the solve then goes to that SeD directly. One trace covers the
/// whole finding phase across every process.
#[test]
fn three_level_topology_resolves_through_two_remote_hops() {
    let spec = TcpTopologySpec::chain(3, 2);
    let d = spec
        .deploy(Arc::new(RoundRobin::new()), |_| table("echo"))
        .unwrap();
    let client = DietClient::initialize_distributed(d.obs.clone());
    let (out, stats) = client
        .call_distributed(&d.ma_client, &d.pool, request("echo", 41), &policy())
        .unwrap();
    assert_eq!(out.get_i32(1).unwrap(), 42);
    assert!(stats.finding > 0.0, "finding crossed two TCP hops");

    // The winner lives at the bottom of the chain, behind both hops.
    let (label, _) = client.history().pop().unwrap();
    assert!(label.starts_with("d3/"), "winner {label} not a leaf SeD");

    // Trace propagation: the same trace id shows the client's Finding
    // window AND each interior agent's AgentEstimate window — one trace
    // covers the full finding phase across every process.
    let spans = d.obs.tracer.snapshot();
    let trace: Vec<_> = spans
        .iter()
        .filter(|s| s.trace_id == stats.trace_id)
        .collect();
    assert!(trace.iter().any(|s| s.name == "Finding"));
    for hop in ["la1", "la2"] {
        assert!(
            trace
                .iter()
                .any(|s| s.name == "AgentEstimate" && s.resource == hop),
            "trace missing the {hop} hop: {trace:?}"
        );
    }
    d.shutdown();
}

/// Depth 1 still works over the wire: an MA with only MA-local SeDs.
#[test]
fn depth_one_topology_serves_ma_local_seds() {
    let spec = TcpTopologySpec::chain(1, 2);
    let d = spec
        .deploy(Arc::new(RoundRobin::new()), |_| table("echo"))
        .unwrap();
    let label = d
        .ma_client
        .submit("echo", &[], obs::TraceCtx::default())
        .unwrap()
        .expect("a candidate");
    assert!(label.starts_with("d1/"));
    let (out, _, _) = d
        .pool
        .call_traced(
            &label,
            request("echo", 1),
            Duration::from_secs(5),
            obs::TraceCtx::default(),
        )
        .unwrap();
    assert_eq!(out.get_i32(1).unwrap(), 2);
    d.shutdown();
}

/// The failover guarantee: killing an interior LA mid-burst loses zero
/// requests. The MA has two remote subtrees; when one agent process dies,
/// finding skips it (a dead remote is an empty remote) and every request
/// lands on the surviving subtree or on SeDs already chosen.
#[test]
fn interior_la_kill_mid_burst_loses_zero_requests() {
    let spec = TcpTopologySpec {
        ma_name: "MA".into(),
        ma_seds: vec![],
        sites: vec![
            TcpSiteSpec {
                name: "la-a".into(),
                seds: vec![
                    SedSpec {
                        label: "a/s0".into(),
                        speed_factor: 1.0,
                    },
                    SedSpec {
                        label: "a/s1".into(),
                        speed_factor: 1.0,
                    },
                ],
                children: vec![],
            },
            TcpSiteSpec {
                name: "la-b".into(),
                seds: vec![
                    SedSpec {
                        label: "b/s0".into(),
                        speed_factor: 1.0,
                    },
                    SedSpec {
                        label: "b/s1".into(),
                        speed_factor: 1.0,
                    },
                ],
                children: vec![],
            },
        ],
        admission_limit: None,
        child_timeout_ms: 500,
    };
    let d = Arc::new(
        spec.deploy(Arc::new(RoundRobin::new()), |_| table("echo"))
            .unwrap(),
    );
    const BURST: usize = 30;
    let client = Arc::new(DietClient::initialize_distributed(d.obs.clone()));
    let mut workers = Vec::new();
    for i in 0..BURST {
        let dep = d.clone();
        let client = client.clone();
        workers.push(std::thread::spawn(move || {
            let (out, _) = client
                .call_distributed(
                    &dep.ma_client,
                    &dep.pool,
                    request("echo", i as i32),
                    &policy(),
                )
                .unwrap_or_else(|e| panic!("request {i} lost: {e}"));
            assert_eq!(out.get_i32(1).unwrap(), i as i32 + 1);
        }));
        if i == BURST / 2 {
            // Crash the interior agent mid-burst: its listener closes and
            // every live connection is severed.
            assert!(d.kill_agent("la-a"));
        }
    }
    for w in workers {
        w.join().unwrap();
    }
    // After the kill, finding still works and routes around the corpse.
    let label = d
        .ma_client
        .submit("echo", &[], obs::TraceCtx::default())
        .unwrap()
        .expect("surviving subtree serves");
    assert!(label.starts_with("b/"), "routed to dead subtree: {label}");
    if let Ok(d) = Arc::try_unwrap(d) {
        d.shutdown();
    }
}

/// Multi-MA federation: an MA that cannot resolve a service in its own
/// tree forwards to its federation peers and schedules over their
/// estimates; a service that *is* declared locally never federates.
#[test]
fn unknown_service_federates_to_peer_ma() {
    let obs = Arc::new(Obs::new());
    let pool = TcpSedPool::new();

    // MA2's island declares "beta".
    let beta =
        SedHandle::spawn_with_obs(SedConfig::new("beta/s0", 1.0), table("beta"), obs.clone());
    let beta_srv = serve_sed_over_tcp(beta.clone()).unwrap();
    pool.register("beta/s0", beta_srv.local_addr);
    let ma2 = MasterAgent::new_with_obs(
        "MA2",
        vec![AgentNode::leaf("site2", vec![beta.clone()])],
        Arc::new(RoundRobin::new()),
        obs.clone(),
    );
    let cfg = || AgentConfig {
        obs: obs.clone(),
        ..AgentConfig::default()
    };
    let ma2_srv = serve_ma_over_tcp(ma2.clone(), vec![], cfg()).unwrap();

    // MA1's island declares "alpha" and peers with MA2.
    let alpha =
        SedHandle::spawn_with_obs(SedConfig::new("alpha/s0", 1.0), table("alpha"), obs.clone());
    let alpha_srv = serve_sed_over_tcp(alpha.clone()).unwrap();
    pool.register("alpha/s0", alpha_srv.local_addr);
    let ma1 = MasterAgent::new_with_obs(
        "MA1",
        vec![AgentNode::leaf("site1", vec![alpha.clone()])],
        Arc::new(RoundRobin::new()),
        obs.clone(),
    );
    let peer = RemoteAgentClient::new("MA2", ma2_srv.local_addr);
    let ma1_srv = serve_ma_over_tcp(ma1.clone(), vec![peer], cfg()).unwrap();

    let ma1_client = RemoteAgentClient::new("MA1", ma1_srv.local_addr);
    let ctx = obs::TraceCtx::default();

    // "beta" is unknown to MA1's tree → federated to MA2, whose SeD wins.
    let label = ma1_client.submit("beta", &[], ctx).unwrap();
    assert_eq!(label.as_deref(), Some("beta/s0"));
    assert!(obs.metrics.counter("diet_ma_federated_total").get() >= 1);
    // ... and the label is directly callable, exactly like a local winner.
    let (out, _, _) = pool
        .call_traced("beta/s0", request("beta", 7), Duration::from_secs(5), ctx)
        .unwrap();
    assert_eq!(out.get_i32(1).unwrap(), 8);

    // "alpha" is declared locally: excluding its only server yields
    // NoServerAvailable, which must NOT federate.
    let before = obs.metrics.counter("diet_ma_federated_total").get();
    let none = ma1_client
        .submit("alpha", &["alpha/s0".into()], ctx)
        .unwrap();
    assert_eq!(none, None);
    assert_eq!(
        obs.metrics.counter("diet_ma_federated_total").get(),
        before,
        "NoServerAvailable must stay local"
    );

    for s in [&ma1_srv, &ma2_srv, &alpha_srv, &beta_srv] {
        s.kill();
    }
    alpha.shutdown();
    beta.shutdown();
}

/// Tree-shaped liveness: heartbeat loss on an interior agent takes its
/// whole subtree out of routing; when the agent comes back (same address),
/// the next successful probe puts the subtree straight back.
#[test]
fn heartbeat_marks_dead_subtree_and_restores_it_on_return() {
    let spec = TcpTopologySpec {
        ma_name: "MA".into(),
        ma_seds: vec![],
        sites: vec![
            TcpSiteSpec {
                name: "la-a".into(),
                seds: vec![SedSpec {
                    label: "a/s0".into(),
                    speed_factor: 1.0,
                }],
                children: vec![],
            },
            TcpSiteSpec {
                name: "la-b".into(),
                seds: vec![SedSpec {
                    label: "b/s0".into(),
                    speed_factor: 1.0,
                }],
                children: vec![],
            },
        ],
        admission_limit: None,
        child_timeout_ms: 500,
    };
    let d = spec
        .deploy(Arc::new(RoundRobin::new()), |_| table("echo"))
        .unwrap();
    let addr_a = d.agent_addr("la-a").unwrap();
    let slot_a =
        d.ma.remote_slots()
            .into_iter()
            .find(|s| s.name() == "la-a")
            .unwrap();
    let monitor = HeartbeatMonitor::spawn(
        d.ma.clone(),
        Duration::from_millis(30),
        Duration::from_millis(150),
        2,
    );

    assert!(d.kill_agent("la-a"));
    let deadline = Instant::now() + Duration::from_secs(5);
    while slot_a.is_available() {
        assert!(Instant::now() < deadline, "la-a never marked unavailable");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        d.obs
            .metrics
            .counter("diet_heartbeat_agent_evictions_total")
            .get()
            >= 1
    );
    // With the subtree out of routing, every submit lands on la-b — and
    // pays no dial/timeout for the corpse.
    let ctx = obs::TraceCtx::default();
    for _ in 0..4 {
        let label = d.ma_client.submit("echo", &[], ctx).unwrap().unwrap();
        assert_eq!(label, "b/s0");
    }

    // The agent returns on the same address (host reboot): rebuild its
    // node over the still-running SeD and rebind.
    let sed_a = d
        .seds
        .iter()
        .find(|s| s.config.label == "a/s0")
        .unwrap()
        .clone();
    let node = AgentNode::leaf("la-a", vec![sed_a]);
    let revived = serve_agent_over_tcp_at(
        node,
        addr_a,
        AgentConfig {
            obs: d.obs.clone(),
            ..AgentConfig::default()
        },
    )
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !slot_a.is_available() {
        assert!(Instant::now() < deadline, "la-a never restored");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        d.obs
            .metrics
            .counter("diet_heartbeat_agent_restorations_total")
            .get()
            >= 1
    );
    // Its subtree is schedulable again.
    let label = d
        .ma_client
        .submit("echo", &["b/s0".into()], ctx)
        .unwrap()
        .unwrap();
    assert_eq!(label, "a/s0");

    monitor.stop();
    revived.kill();
    d.shutdown();
}

/// Per-agent admission control: an MA serving with a tiny admission limit
/// answers overflow with `Busy` (echoing the request id), and the client's
/// retry loop absorbs it — every request still completes.
#[test]
fn agent_admission_limit_pushes_back_with_busy() {
    let spec = TcpTopologySpec {
        ma_name: "MA".into(),
        ma_seds: vec![SedSpec {
            label: "m/s0".into(),
            speed_factor: 1.0,
        }],
        sites: vec![],
        admission_limit: Some(1),
        child_timeout_ms: 500,
    };
    let d = Arc::new(
        spec.deploy(Arc::new(RoundRobin::new()), |_| table("echo"))
            .unwrap(),
    );
    let client = Arc::new(DietClient::initialize_distributed(d.obs.clone()));
    let mut workers = Vec::new();
    for i in 0..12 {
        let d = d.clone();
        let client = client.clone();
        workers.push(std::thread::spawn(move || {
            client
                .call_distributed(&d.ma_client, &d.pool, request("echo", i), &policy())
                .map(|(out, _)| out.get_i32(1).unwrap())
        }));
    }
    for (i, w) in workers.into_iter().enumerate() {
        assert_eq!(w.join().unwrap().unwrap(), i as i32 + 1);
    }
    if let Ok(d) = Arc::try_unwrap(d) {
        d.shutdown();
    }
}

/// An unknown service with no federation peers is a clean `None`, which
/// the distributed client surfaces as `RetriesExhausted` wrapping
/// `NoServerAvailable` — not a hang, not a transport fault.
#[test]
fn unknown_service_without_peers_is_a_clean_miss() {
    let spec = TcpTopologySpec::chain(2, 1);
    let d = spec
        .deploy(Arc::new(RoundRobin::new()), |_| table("echo"))
        .unwrap();
    let client = DietClient::initialize_distributed(d.obs.clone());
    let fast = RetryPolicy {
        attempt_timeout: Duration::from_secs(2),
        max_retries: 1,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(10),
        jitter: 0.0,
    };
    let err = client
        .call_distributed(&d.ma_client, &d.pool, request("nosuch", 0), &fast)
        .unwrap_err();
    assert!(
        matches!(err, DietError::RetriesExhausted { .. }),
        "got {err:?}"
    );
    d.shutdown();
}
