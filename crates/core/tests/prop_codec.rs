//! Property tests: the wire codec round-trips arbitrary profiles and
//! messages, and never panics on corrupted input.

use bytes::Bytes;
use diet_core::codec::{decode_message, encode_message, Message};
use diet_core::data::{DietValue, Persistence};
use diet_core::jobserver::{CampaignSummary, TaskEventRec, TaskPayload, TaskState, TaskStatusRec};
use diet_core::monitor::Estimate;
use diet_core::profile::Profile;
use diet_core::sched::{DataLocal, MinQueue, RandomSched, RoundRobin, Scheduler, WeightedSpeed};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = DietValue> {
    prop_oneof![
        Just(DietValue::Null),
        any::<i32>().prop_map(DietValue::ScalarI32),
        any::<i64>().prop_map(DietValue::ScalarI64),
        (-1e300f64..1e300).prop_map(DietValue::ScalarF64),
        any::<u8>().prop_map(DietValue::ScalarChar),
        prop::collection::vec(-1e12f64..1e12, 0..50).prop_map(DietValue::vec_f64),
        prop::collection::vec(any::<i32>(), 0..50).prop_map(DietValue::vec_i32),
        ".*".prop_map(|s: String| DietValue::Str(s.into())),
        (
            "[a-z./_-]{0,40}",
            prop::collection::vec(any::<u8>(), 0..256)
        )
            .prop_map(|(name, data)| DietValue::File {
                name,
                data: Bytes::from(data),
            }),
        "[a-z0-9/_.-]{1,40}".prop_map(DietValue::data_ref),
    ]
}

fn arb_persistence() -> impl Strategy<Value = Persistence> {
    prop_oneof![
        Just(Persistence::Volatile),
        Just(Persistence::Persistent),
        Just(Persistence::Sticky),
    ]
}

fn arb_profile() -> impl Strategy<Value = Profile> {
    (
        "[a-zA-Z][a-zA-Z0-9_]{0,30}",
        prop::collection::vec((arb_value(), arb_persistence()), 0..12),
    )
        .prop_map(|(service, args)| {
            let (values, persistence) = args.into_iter().unzip();
            Profile {
                service,
                values,
                persistence,
            }
        })
}

/// Timings that survive an equality-checked roundtrip (NaN != NaN even
/// though its bits roundtrip fine).
fn arb_finite_f64() -> impl Strategy<Value = f64> {
    any::<f64>().prop_map(|f| if f.is_nan() { 0.0 } else { f })
}

/// Estimates as they travel inside `EstimateBatch` frames: finite floats
/// (NaN breaks the equality-checked roundtrip) and both `Option` arms.
fn arb_wire_estimates() -> impl Strategy<Value = Vec<Estimate>> {
    prop::collection::vec(
        (
            "[a-z/0-9]{1,20}",
            0.01f64..100.0,
            any::<u64>(),
            0usize..1000,
            prop::option::of(0.0f64..1e6),
            0.0f64..10.0,
            prop::option::of(0usize..64),
        ),
        0..8,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(server, speed, mem, queue, known, rtt, cap)| Estimate {
                server,
                speed_factor: speed,
                free_memory: mem,
                queue_length: queue,
                completed: queue as u64,
                known_mean_duration: known,
                probe_rtt: rtt,
                data_local_bytes: mem / 2,
                data_miss_bytes: mem / 3,
                admission_limit: cap,
            })
            .collect()
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (
            "[a-z]{1,20}",
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec("[a-z/0-9]{1,20}", 0..6)
        )
            .prop_map(|(service, request_id, trace_id, parent_span, exclude)| {
                Message::Submit {
                    service,
                    request_id,
                    ctx: obs::TraceCtx {
                        trace_id,
                        parent_span,
                    },
                    exclude,
                }
            }),
        (
            "[a-z]{1,20}",
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec("[a-z/0-9]{1,20}", 0..6),
            any::<u8>()
        )
            .prop_map(
                |(service, request_id, trace_id, exclude, ttl)| Message::Forward {
                    request_id,
                    ctx: obs::TraceCtx {
                        trace_id,
                        parent_span: 0,
                    },
                    service,
                    exclude,
                    ttl,
                }
            ),
        (any::<u64>(), arb_wire_estimates()).prop_map(|(request_id, estimates)| {
            Message::EstimateBatch {
                request_id,
                estimates,
            }
        }),
        (any::<u64>(), prop::option::of("[a-z/0-9]{1,20}"))
            .prop_map(|(request_id, server)| Message::SubmitReply { request_id, server }),
        (any::<u64>(), any::<u64>(), any::<u64>(), arb_profile()).prop_map(
            |(request_id, trace_id, parent_span, profile)| Message::Call {
                request_id,
                ctx: obs::TraceCtx {
                    trace_id,
                    parent_span,
                },
                profile
            }
        ),
        (
            any::<u64>(),
            arb_finite_f64(),
            arb_finite_f64(),
            arb_profile()
        )
            .prop_map(|(request_id, queue_wait, solve, p)| Message::CallReply {
                request_id,
                queue_wait,
                solve,
                result: Ok(p)
            }),
        (any::<u64>(), arb_finite_f64(), arb_finite_f64(), ".*").prop_map(
            |(request_id, queue_wait, solve, e)| Message::CallReply {
                request_id,
                queue_wait,
                solve,
                result: Err(e)
            }
        ),
        Just(Message::Ping),
        Just(Message::Pong),
        Just(Message::Shutdown),
        Just(Message::DumpMetrics),
        ".*".prop_map(|text| Message::MetricsReply { text }),
        (any::<u64>(), "[a-z0-9/_.-]{1,40}")
            .prop_map(|(request_id, id)| Message::GetData { request_id, id }),
        (
            any::<u64>(),
            "[a-z0-9/_.-]{1,40}",
            arb_value(),
            arb_persistence()
        )
            .prop_map(|(request_id, id, v, mode)| Message::DataReply {
                request_id,
                id,
                result: Ok((v, mode)),
            },),
        (any::<u64>(), "[a-z0-9/_.-]{1,40}", ".*").prop_map(|(request_id, id, e)| {
            Message::DataReply {
                request_id,
                id,
                result: Err(e),
            }
        }),
        (
            any::<u64>(),
            "[a-z0-9/_.-]{1,40}",
            arb_value(),
            arb_persistence()
        )
            .prop_map(|(request_id, id, value, mode)| Message::PutData {
                request_id,
                id,
                mode,
                value,
            },),
        any::<u64>().prop_map(|request_id| Message::Busy { request_id }),
        (
            any::<u64>(),
            "[a-z][a-z0-9-]{0,24}",
            prop::collection::vec(arb_task_payload(), 0..6)
        )
            .prop_map(|(request_id, campaign, tasks)| Message::SubmitTasks {
                request_id,
                campaign,
                tasks,
            }),
        (
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(any::<u64>(), 0..32)
        )
            .prop_map(|(request_id, cid, ids)| Message::SubmitTasksReply {
                request_id,
                result: Ok((cid, ids)),
            }),
        (any::<u64>(), ".*").prop_map(|(request_id, e)| Message::SubmitTasksReply {
            request_id,
            result: Err(e),
        }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(request_id, campaign_id, task_id)| Message::TaskStatus {
                request_id,
                campaign_id,
                task_id,
            }
        ),
        (
            any::<u64>(),
            any::<u64>(),
            arb_task_state(),
            any::<u32>(),
            "[a-z/0-9]{0,20}"
        )
            .prop_map(|(request_id, task_id, state, attempts, sed)| {
                Message::TaskStatusReply {
                    request_id,
                    result: Ok(TaskStatusRec {
                        task_id,
                        state,
                        attempts,
                        sed,
                    }),
                }
            }),
        (any::<u64>(), "[a-z][a-z0-9-]{0,24}").prop_map(|(request_id, campaign)| {
            Message::AttachCampaign {
                request_id,
                campaign,
            }
        }),
        (any::<u64>(), arb_campaign_summary()).prop_map(|(request_id, s)| Message::AttachReply {
            request_id,
            result: Ok(s),
        }),
        (any::<u64>(), ".*").prop_map(|(request_id, e)| Message::AttachReply {
            request_id,
            result: Err(e),
        }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(request_id, campaign_id, cursor)| {
            Message::CampaignProgress {
                request_id,
                campaign_id,
                cursor,
            }
        }),
        (
            any::<u64>(),
            arb_campaign_summary(),
            prop::collection::vec(arb_task_event(), 0..16)
        )
            .prop_map(|(request_id, summary, events)| Message::ProgressReply {
                request_id,
                result: Ok((summary, events)),
            }),
    ]
}

fn arb_task_state() -> impl Strategy<Value = TaskState> {
    prop_oneof![
        Just(TaskState::Pending),
        Just(TaskState::Dispatched),
        Just(TaskState::Done),
        Just(TaskState::Failed),
    ]
}

fn arb_task_payload() -> impl Strategy<Value = TaskPayload> {
    // DAG payloads exercise the WorkflowSpec sub-encoding via the simplest
    // spec shape; node-level coverage lives in the dag codec tests.
    prop_oneof![
        arb_profile().prop_map(TaskPayload::Call),
        (
            "[a-z][a-z0-9-]{0,16}",
            prop::collection::vec(arb_profile(), 0..3)
        )
            .prop_map(|(name, profiles)| {
                let nodes = profiles
                    .into_iter()
                    .enumerate()
                    .map(|(i, profile)| diet_core::dag::DagNodeSpec {
                        id: i as u32,
                        profile,
                        deps: if i == 0 { vec![] } else { vec![i as u32 - 1] },
                        inputs: vec![],
                        expander: None,
                        params: vec![],
                        max_retries: i as u32,
                    })
                    .collect();
                TaskPayload::Dag(diet_core::dag::WorkflowSpec { name, nodes })
            }),
    ]
}

fn arb_task_event() -> impl Strategy<Value = TaskEventRec> {
    (
        any::<u64>(),
        any::<u64>(),
        arb_task_state(),
        any::<u32>(),
        "[a-z/0-9]{0,20}",
        any::<u64>(),
    )
        .prop_map(|(seq, task_id, state, attempt, sed, ms)| TaskEventRec {
            seq,
            task_id,
            state,
            attempt,
            sed,
            ms,
        })
}

fn arb_campaign_summary() -> impl Strategy<Value = CampaignSummary> {
    (
        any::<u64>(),
        "[a-z][a-z0-9-]{0,24}",
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(campaign_id, name, total, done, failed, resubmissions, finished)| CampaignSummary {
                campaign_id,
                name,
                total,
                done,
                failed,
                resubmissions,
                finished,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode → decode is the identity for every message.
    #[test]
    fn message_roundtrip(m in arb_message()) {
        let enc = encode_message(&m);
        let dec = decode_message(enc).unwrap();
        prop_assert_eq!(dec, m);
    }

    /// Decoding arbitrary bytes errors or succeeds — never panics.
    #[test]
    fn decode_never_panics(raw in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_message(Bytes::from(raw));
    }

    /// Decoding a truncated valid message reports an error (no garbage).
    #[test]
    fn truncation_always_detected(m in arb_message(), frac in 0.0f64..1.0) {
        let enc = encode_message(&m);
        if enc.len() > 1 {
            let cut = ((enc.len() - 1) as f64 * frac) as usize;
            let sliced = enc.slice(0..cut);
            // Either an error, or (for multi-frame-safe prefixes) equality is
            // impossible because the payload is shorter — decode of a strict
            // prefix must never return the original message.
            match decode_message(sliced) {
                Err(_) => {}
                Ok(other) => prop_assert_ne!(other, m),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The transport's configured `max_frame` cap (the length-validation
    /// path) holds for the data-management frames: any `DataReply` one byte
    /// over the reader's limit is rejected before allocation, and the exact
    /// frame length is accepted and round-trips.
    #[test]
    fn data_reply_frames_respect_max_frame(
        id in "[a-z0-9]{1,16}",
        xs in prop::collection::vec(-1e12f64..1e12, 0..64),
        sticky in any::<bool>(),
    ) {
        use diet_core::transport::{Duplex, TcpTransport};
        let mode = if sticky { Persistence::Sticky } else { Persistence::Persistent };
        let msg = Message::DataReply {
            request_id: 9,
            id,
            result: Ok((DietValue::vec_f64(xs), mode)),
        };
        let frame_len = encode_message(&msg).len();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let served = msg.clone();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (s, _) = listener.accept().unwrap();
                let t = TcpTransport::from_stream(s);
                let _ = t.send(&served);
            }
        });
        let strict = TcpTransport::connect(addr)
            .unwrap()
            .with_max_frame(frame_len - 1);
        prop_assert!(strict.recv().is_err(), "over-limit frame must be rejected");
        let exact = TcpTransport::connect(addr)
            .unwrap()
            .with_max_frame(frame_len);
        prop_assert_eq!(exact.recv().unwrap(), msg);
        server.join().unwrap();
    }
}

fn arb_estimates() -> impl Strategy<Value = Vec<Estimate>> {
    prop::collection::vec(
        (
            "[a-z]{1,8}",
            0.1f64..4.0,
            0usize..50,
            prop::option::of(1.0f64..1e4),
        ),
        1..40,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (name, speed, queue, known))| Estimate {
                server: format!("{name}{i}"),
                speed_factor: speed,
                free_memory: 1 << 30,
                queue_length: queue,
                completed: queue as u64,
                known_mean_duration: known,
                // Exercise the locality term too: pseudo-random misses.
                data_miss_bytes: (i as u64) << 20,
                ..Estimate::default()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every scheduler returns an in-range index for any candidate set.
    #[test]
    fn schedulers_select_in_range(ests in arb_estimates(), seed in 1u64..1000) {
        let scheds: Vec<Box<dyn Scheduler>> = vec![
            Box::new(RoundRobin::new()),
            Box::new(RandomSched::new(seed)),
            Box::new(MinQueue),
            Box::new(WeightedSpeed),
            Box::new(DataLocal::default()),
        ];
        for s in &scheds {
            for _ in 0..5 {
                let pick = s.select(&ests);
                prop_assert!(pick < ests.len(), "{} out of range", s.name());
            }
        }
    }

    /// Round-robin over k calls hits every candidate floor(k/n) or
    /// ceil(k/n) times — the paper's 9-or-10 distribution, generalised.
    #[test]
    fn round_robin_balanced(n in 1usize..20, k in 1usize..200) {
        let ests: Vec<Estimate> = (0..n)
            .map(|i| Estimate {
                server: format!("s{i}"),
                speed_factor: 1.0,
                ..Estimate::default()
            })
            .collect();
        let rr = RoundRobin::new();
        let mut counts = vec![0usize; n];
        for _ in 0..k {
            counts[rr.select(&ests)] += 1;
        }
        let lo = k / n;
        let hi = k.div_ceil(n);
        for c in counts {
            prop_assert!(c == lo || c == hi, "count {c} outside {{{lo},{hi}}}");
        }
    }
}
