//! Concurrency torture test for the bounded data store + replica catalog:
//! many threads retain/get/free against one LRU-bounded [`DataManager`]
//! wired to a [`ReplicaCatalog`] exactly like `SedHandle::attach_catalog`
//! does. After the storm the catalog and the store must agree id-for-id,
//! the byte accounting must be exact, and `Sticky` items must have survived
//! the eviction pressure.
//!
//! Publish-before-retain ordering matters: a publish after the retain could
//! race the eviction hook of a concurrent retain and leave a live store
//! entry with no catalog record.

use diet_core::dagda::{self, ReplicaCatalog};
use diet_core::data::{DietValue, Persistence};
use diet_core::datamgr::DataManager;
use std::collections::BTreeSet;
use std::sync::Arc;

const CAPACITY: u64 = 64 * 1024;
const THREADS: usize = 8;
const ITEMS_PER_THREAD: usize = 200;

#[test]
fn concurrent_retain_get_free_keeps_catalog_and_store_consistent() {
    let dm = Arc::new(DataManager::with_capacity(CAPACITY));
    let cat = Arc::new(ReplicaCatalog::new());
    {
        let cat = cat.clone();
        dm.set_evict_hook(move |id| cat.unpublish(id, "sed"));
    }

    // Pinned items that must outlive the pressure (4 × 1 KiB).
    for i in 0..4 {
        let id = format!("sticky{i}");
        let v = DietValue::vec_f64(vec![i as f64; 128]);
        cat.publish(&id, "sed", v.payload_bytes() as u64, dagda::checksum(&v));
        assert!(dm.retain(&id, v, Persistence::Sticky));
    }

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let dm = dm.clone();
            let cat = cat.clone();
            std::thread::spawn(move || {
                for k in 0..ITEMS_PER_THREAD {
                    // Unique ids: an id racing its own eviction would make
                    // the final store/catalog comparison nondeterministic.
                    let id = format!("d{t}_{k}");
                    let v = DietValue::vec_f64(vec![k as f64; 256]); // 2 KiB
                    cat.publish(&id, "sed", v.payload_bytes() as u64, dagda::checksum(&v));
                    assert!(dm.retain(&id, v, Persistence::Persistent));
                    // A get may race this item's eviction by another thread;
                    // both outcomes are legal, it must just never wedge.
                    let _ = dm.get(&id);
                    if k % 7 == 0 {
                        // Explicit departure: the hook unpublishes it.
                        let _ = dm.free(&id);
                    }
                    // Keep the pinned items hot (and assert they're there).
                    assert!(dm.get(&format!("sticky{}", k % 4)).is_ok());
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // Sticky survived ~3 MiB of churn through a 64 KiB store.
    for i in 0..4 {
        assert!(
            dm.get(&format!("sticky{i}")).is_ok(),
            "sticky{i} was evicted under pressure"
        );
    }
    // The pressure actually evicted things (not a vacuous pass).
    assert!(
        dm.evictions() > 0,
        "capacity never filled — the test exerted no pressure"
    );
    // The bound holds once the dust settles.
    assert!(
        dm.stored_bytes() <= CAPACITY,
        "store over budget: {} > {CAPACITY}",
        dm.stored_bytes()
    );
    // O(1) byte accounting matches a full recount.
    assert_eq!(dm.stored_bytes(), dm.recounted_bytes());
    // Catalog and store agree exactly, id for id.
    let store_ids: BTreeSet<String> = dm.ids().into_iter().collect();
    let cat_ids: BTreeSet<String> = cat.ids().into_iter().collect();
    assert_eq!(store_ids, cat_ids, "catalog and store disagree");
}
