//! Log-recovery properties for the jobserver's durable store.
//!
//! The crash model is byte-level: a process can die mid-append, leaving a
//! torn final record. Replay must recover the full prefix and drop only
//! the tail — never panic, never reconstruct corrupted state. And a
//! snapshot must be pure compaction: snapshot + WAL tail replays to
//! exactly the state the WAL alone would have produced.

use diet_core::jobserver::{scan_records, JobStore, JobStoreConfig, TaskPayload, TaskState};
use diet_core::profile::{ArgTag, Profile, ProfileDesc};
use diet_core::{DietValue, Obs, Persistence};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "diet-joblog-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn payload(x: i32) -> TaskPayload {
    let mut d = ProfileDesc::alloc("echo", 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    d.set_arg(1, ArgTag::Scalar).unwrap();
    let mut p = Profile::alloc(&d);
    p.set(0, DietValue::ScalarI32(x), Persistence::Volatile)
        .unwrap();
    TaskPayload::Call(p)
}

fn open(dir: &Path) -> Arc<JobStore> {
    JobStore::open(dir, JobStoreConfig::default(), Arc::new(Obs::new())).unwrap()
}

/// Deterministic op script: submit `n` tasks, then drive the first
/// `outcomes.len()` of them through one dispatch each (true = done,
/// false = failed attempt, which re-queues). FIFO pops make the claim
/// order equal task order.
fn drive(store: &JobStore, n: usize, outcomes: &[bool]) {
    let (cid, _ids) = store
        .submit("camp", (0..n as i32).map(payload).collect())
        .unwrap();
    for (i, &ok) in outcomes.iter().enumerate().take(n) {
        let t = store.next_task(Duration::from_millis(50)).unwrap();
        assert_eq!(t.task_id as usize, i);
        let a = store
            .dispatched(cid, t.task_id, t.epoch, None, "lyon/0")
            .unwrap();
        if ok {
            assert!(store.complete(cid, t.task_id, t.epoch, a, "lyon/0", 3));
        } else {
            store.fail(cid, t.task_id, t.epoch, "injected", 8, false);
        }
    }
}

/// Everything observable about a store's recovered state, for equality
/// checks across recovery paths. Queue order is not part of the signature
/// (recovery re-queues by scan order), so pending task ids are sorted.
fn signature(store: &JobStore) -> String {
    let mut out = String::new();
    for s in store.campaigns() {
        out.push_str(&format!(
            "campaign {} {:?} total={} done={} failed={} resub={} finished={}\n",
            s.campaign_id, s.name, s.total, s.done, s.failed, s.resubmissions, s.finished
        ));
        for tid in 0..s.total {
            let t = store.task_status(s.campaign_id, tid).unwrap();
            out.push_str(&format!(
                "  task {tid} state={:?} attempts={} sed={:?}\n",
                t.state, t.attempts, t.sed
            ));
        }
    }
    out
}

/// Copy a store directory, truncating the WAL to `wal_len` bytes.
fn clone_dir_truncated(src: &Path, dst: &Path, wal_len: u64) -> std::io::Result<()> {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        std::fs::copy(entry.path(), dst.join(entry.file_name()))?;
    }
    let wal = dst.join("wal.log");
    if wal.exists() {
        let f = std::fs::OpenOptions::new().write(true).open(&wal)?;
        f.set_len(wal_len)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Truncate the WAL at EVERY byte boundary of the final record:
    /// replay recovers the full record set or exactly the prefix without
    /// it — nothing else, and never a panic.
    #[test]
    fn torn_final_record_recovers_prefix(
        n in 1usize..6,
        outcomes in prop::collection::vec(any::<bool>(), 0..6),
    ) {
        let src = tmpdir("torn-src");
        {
            let s = open(&src);
            drive(&s, n, &outcomes);
        }
        let wal_bytes = std::fs::read(src.join("wal.log")).unwrap();
        let (records, good_len) = scan_records(&wal_bytes);
        prop_assert_eq!(good_len as usize, wal_bytes.len());
        prop_assert!(!records.is_empty());
        let final_start = wal_bytes.len() - (8 + records.last().unwrap().len());

        // Reference signatures: all records, and all-but-the-last.
        let full_sig = signature(&open(&src));
        let work = tmpdir("torn-work");
        clone_dir_truncated(&src, &work, final_start as u64).unwrap();
        let prefix_sig = signature(&open(&work));

        for cut in final_start..wal_bytes.len() {
            clone_dir_truncated(&src, &work, cut as u64).unwrap();
            let store = open(&work); // must not panic
            let sig = signature(&store);
            prop_assert_eq!(
                &sig, &prefix_sig,
                "cut at byte {} of [{}, {}) must drop exactly the torn tail",
                cut, final_start, wal_bytes.len()
            );
            // The torn tail is truncated away on open: a second open sees
            // a clean log ending at the last good record.
            drop(store);
            let reread = std::fs::read(work.join("wal.log")).unwrap();
            let (_, rescan_len) = scan_records(&reread);
            prop_assert_eq!(rescan_len as usize, reread.len());
        }
        // And the untruncated file replays everything.
        clone_dir_truncated(&src, &work, wal_bytes.len() as u64).unwrap();
        prop_assert_eq!(signature(&open(&work)), full_sig);

        let _ = std::fs::remove_dir_all(&src);
        let _ = std::fs::remove_dir_all(&work);
    }

    /// Snapshot + tail replay ≡ pure WAL replay: the same op script run
    /// with and without a mid-way compaction recovers identical state.
    #[test]
    fn snapshot_plus_tail_equals_pure_wal(
        n in 1usize..8,
        outcomes in prop::collection::vec(any::<bool>(), 0..8),
        snap_after in 0usize..8,
    ) {
        let with_snap = tmpdir("snap-a");
        let without = tmpdir("snap-b");
        {
            let s = open(&with_snap);
            let (cid, _) = s.submit("camp", (0..n as i32).map(payload).collect()).unwrap();
            for (i, &ok) in outcomes.iter().enumerate().take(n) {
                if i == snap_after {
                    s.snapshot_now().unwrap();
                }
                let t = s.next_task(Duration::from_millis(50)).unwrap();
                let a = s.dispatched(cid, t.task_id, t.epoch, None, "lyon/0").unwrap();
                if ok {
                    assert!(s.complete(cid, t.task_id, t.epoch, a, "lyon/0", 3));
                } else {
                    s.fail(cid, t.task_id, t.epoch, "injected", 8, false);
                }
            }
        }
        {
            let s = open(&without);
            drive(&s, n, &outcomes);
        }
        prop_assert!(with_snap.join("snapshot.bin").exists() || snap_after >= n);
        prop_assert_eq!(signature(&open(&with_snap)), signature(&open(&without)));
        let _ = std::fs::remove_dir_all(&with_snap);
        let _ = std::fs::remove_dir_all(&without);
    }
}

/// A crash between the snapshot rename and the WAL truncate leaves the
/// old records in front of the snapshot — replay must skip everything the
/// snapshot already absorbed (LSN guard), not double-apply it.
#[test]
fn stale_wal_records_after_snapshot_are_skipped() {
    let dir = tmpdir("lsn");
    let pre_wal;
    {
        let s = open(&dir);
        let (cid, _) = s.submit("camp", (0..4).map(payload).collect()).unwrap();
        for _ in 0..2 {
            let t = s.next_task(Duration::from_millis(50)).unwrap();
            let a = s
                .dispatched(cid, t.task_id, t.epoch, None, "lyon/0")
                .unwrap();
            assert!(s.complete(cid, t.task_id, t.epoch, a, "lyon/0", 3));
        }
        pre_wal = std::fs::read(s.wal_path()).unwrap();
        s.snapshot_now().unwrap();
        // Post-snapshot tail: one more completion.
        let t = s.next_task(Duration::from_millis(50)).unwrap();
        let a = s
            .dispatched(cid, t.task_id, t.epoch, None, "lyon/0")
            .unwrap();
        assert!(s.complete(cid, t.task_id, t.epoch, a, "lyon/0", 3));
    }
    let reference = signature(&open(&dir));

    // Undo the truncate: prepend the absorbed records to the tail, as if
    // the process died right after the rename.
    let tail = std::fs::read(dir.join("wal.log")).unwrap();
    let mut merged = pre_wal;
    merged.extend_from_slice(&tail);
    std::fs::write(dir.join("wal.log"), &merged).unwrap();

    let s = open(&dir);
    assert_eq!(signature(&s), reference);
    let sum = s.campaigns().pop().unwrap();
    assert_eq!(
        sum.done, 3,
        "snapshot-absorbed completions must not double-apply"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Arbitrary garbage appended to a healthy log never panics replay and
/// never corrupts the recovered prefix.
#[test]
fn garbage_tail_is_dropped() {
    let src = tmpdir("garbage");
    {
        let s = open(&src);
        drive(&s, 3, &[true, false]);
    }
    let reference = signature(&open(&src));
    let healthy = std::fs::read(src.join("wal.log")).unwrap();
    for garbage in [
        &b"\x00"[..],
        &b"\xff\xff\xff\xff"[..],
        &b"\x10\x00\x00\x00\x01\x02\x03\x04 only half a record"[..4],
        &[0x10, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3][..],
    ] {
        let mut bytes = healthy.clone();
        bytes.extend_from_slice(garbage);
        std::fs::write(src.join("wal.log"), &bytes).unwrap();
        assert_eq!(signature(&open(&src)), reference);
    }
    let _ = std::fs::remove_dir_all(&src);
}

#[test]
fn state_enum_is_stable_on_disk() {
    // The WAL encodes states as u8: renumbering the enum would corrupt
    // every existing log. Pin the mapping.
    assert_eq!(TaskState::Pending as u8, 0);
    assert_eq!(TaskState::Dispatched as u8, 1);
    assert_eq!(TaskState::Done as u8, 2);
    assert_eq!(TaskState::Failed as u8, 3);
    assert_eq!(TaskState::from_u8(2), Some(TaskState::Done));
    assert_eq!(TaskState::from_u8(4), None);
}
