//! Distributed telemetry end to end: a 3-level topology where every
//! component (MA, two LAs, two SeDs, the client) keeps a *private* `Obs`
//! and ships it to one collector process over the wire — nothing shared
//! but sockets. The collector must reassemble what the single-process
//! deployments got for free: one stitched trace per request and one
//! merged metrics registry.

use diet_core::data::{DietValue, Persistence};
use diet_core::deploy::{TcpTopologySpec, TelemetrySpec};
use diet_core::profile::{ArgTag, Profile, ProfileDesc};
use diet_core::sched::RoundRobin;
use diet_core::sed::{ServiceTable, SolveFn};
use diet_core::transport::{ServerConfig, TcpSedPool};
use diet_core::{
    serve_collector_over_tcp, Collector, DietClient, RetryPolicy, TelemetryConfig, TelemetryFlusher,
};
use obs::Obs;
use std::sync::Arc;
use std::time::Duration;

fn table(service: &'static str) -> ServiceTable {
    let mut d = ProfileDesc::alloc(service, 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    let solve: SolveFn = Arc::new(|p: &mut Profile| {
        let x = p.get_i32(0)?;
        p.set(1, DietValue::ScalarI32(x + 1), Persistence::Volatile)?;
        Ok(0)
    });
    let mut t = ServiceTable::init(2);
    t.add(d, solve).unwrap();
    t
}

fn request(service: &str, x: i32) -> Profile {
    let mut d = ProfileDesc::alloc(service, 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    let mut p = Profile::alloc(&d);
    p.set(0, DietValue::ScalarI32(x), Persistence::Volatile)
        .unwrap();
    p
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        attempt_timeout: Duration::from_secs(10),
        max_retries: 6,
        backoff_base: Duration::from_millis(20),
        backoff_cap: Duration::from_millis(200),
        jitter: 0.5,
    }
}

/// A flush interval long enough that nothing ships unless the test says so
/// — every assertion below runs against explicit, acked flushes.
const MANUAL: Duration = Duration::from_secs(3600);

/// The tentpole, end to end: each process's private telemetry crosses the
/// wire and the collector reassembles (a) one stitched trace covering
/// every hop of a request, (b) a merged registry whose counters equal the
/// per-process sums, (c) a topology/health view of every reporting
/// process, and (d) its own reactor's instrumentation in the same scrape.
#[test]
fn collector_stitches_cross_process_traces_and_merges_metrics() {
    let collector = Arc::new(Collector::new());
    let col_server =
        serve_collector_over_tcp(collector.clone(), "127.0.0.1:0", ServerConfig::default())
            .unwrap();
    let col_addr = col_server.local_addr;

    // MA -> la1 -> la2 -> 2 SeDs, every component with a private Obs and
    // its own flusher pointed at the collector.
    let spec = TcpTopologySpec::chain(3, 2);
    let d = spec
        .deploy_with_telemetry(
            Arc::new(RoundRobin::new()),
            |_| table("echo"),
            &TelemetrySpec {
                collector: col_addr,
                interval: MANUAL,
            },
        )
        .unwrap();
    assert_eq!(d.flushers.len(), 5, "MA + 2 LAs + 2 SeDs each flush");

    // The client is its own "process": private Obs, own flusher.
    let client_obs = Arc::new(Obs::new());
    let client = DietClient::initialize_distributed(client_obs.clone());
    let client_flusher = TelemetryFlusher::spawn(
        client_obs.clone(),
        TelemetryConfig::new(col_addr, "client", "client-0")
            .site("workstation")
            .interval(MANUAL),
    );

    const CALLS: usize = 6;
    let mut last_trace = 0;
    for i in 0..CALLS {
        let (out, stats) = client
            .call_distributed(&d.ma_client, &d.pool, request("echo", i as i32), &policy())
            .unwrap();
        assert_eq!(out.get_i32(1).unwrap(), i as i32 + 1);
        last_trace = stats.trace_id;
    }

    // Nothing has shipped yet: the collector knows no sources and holds no
    // spans for the trace.
    assert!(collector.sources().is_empty());
    assert!(collector.trace(last_trace).is_empty());

    // Ship everything, synchronously (each flush waits for its ack).
    assert_eq!(d.flush_telemetry(), 0, "component flushes failed");
    client_flusher.flush_now().unwrap();
    assert_eq!(client_flusher.flush_errors(), 0);

    // (a) One stitched trace covers every hop of the last request, across
    // five distinct processes' recordings: the client's Finding/Submission,
    // both interior agents' estimate windows, the winning SeD's queue and
    // solve windows, and the serving loop's result return.
    let trace = collector.trace(last_trace);
    for phase in [
        "Finding",
        "Submission",
        "AgentEstimate",
        "Queued",
        "Execution",
        "ResultReturn",
    ] {
        assert!(
            trace.iter().any(|s| s.name == phase),
            "stitched trace missing {phase}: {trace:?}"
        );
    }
    for hop in ["la1", "la2"] {
        assert!(
            trace
                .iter()
                .any(|s| s.name == "AgentEstimate" && s.resource == hop),
            "trace missing the {hop} hop: {trace:?}"
        );
    }
    // Sorted by start time, and the client's side of the request (the
    // attempt envelope, then its Finding window) opens before the SeD
    // executes — the cross-process ordering survived the wire.
    assert!(trace.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    assert!(matches!(trace.first().unwrap().name, "attempt" | "Finding"));
    let start = |name| trace.iter().find(|s| s.name == name).unwrap().start_ns;
    assert!(start("Finding") <= start("Execution"));

    // (b) Merged counters equal the per-process sums. Each SeD's solve
    // counter carries its label, so the merged registry must agree with
    // the SeD's private registry exactly — and the labeled totals must add
    // up to the calls made.
    let mut total = 0;
    for sed in &d.seds {
        let label = sed.config.label.clone();
        let local = sed
            .obs()
            .metrics
            .counter_with("diet_sed_solves_total", &[("sed", &label)])
            .get();
        let merged = collector
            .obs
            .metrics
            .counter_with("diet_sed_solves_total", &[("sed", &label)])
            .get();
        assert_eq!(merged, local, "merged solve count for {label}");
        total += merged;
    }
    assert_eq!(total as usize, CALLS);

    // (c) The topology view lists every reporting process under its site.
    let topo = collector.view("topology");
    for needle in ["site la2", "d3/s0", "d3/s1", "la1", "ma", "client-0"] {
        assert!(topo.contains(needle), "topology missing {needle}:\n{topo}");
    }
    assert_eq!(collector.sources().len(), 6, "5 components + 1 client");

    // (d) The collector's own Prometheus scrape — fetched over the wire
    // through the correlated dump — includes the merged component series
    // AND the collector reactor's own instrumentation.
    let pool = TcpSedPool::new();
    pool.register("collector", col_addr);
    let prom = pool
        .dump_metrics_correlated("collector", "", Duration::from_secs(5))
        .unwrap();
    for series in [
        "diet_sed_solves_total",
        "diet_reactor_tick_seconds",
        "diet_reactor_dispatch_depth",
        "diet_reactor_write_queue_bytes",
        "diet_collector_spans_ingested_total",
    ] {
        assert!(prom.contains(series), "scrape missing {series}");
    }
    // Chrome export of the merged trace store also serves over the wire.
    let chrome = pool
        .dump_metrics_correlated("collector", "chrome", Duration::from_secs(5))
        .unwrap();
    assert!(chrome.contains("\"Finding\""), "chrome export: {chrome}");

    drop(client_flusher);
    d.shutdown();
    col_server.stop();
}

/// Shutdown is a flush: killing a telemetry deployment ships each
/// component's tail before the flusher threads exit, so a run that never
/// hit its flush interval still reaches the collector intact.
#[test]
fn deployment_shutdown_ships_the_telemetry_tail() {
    let collector = Arc::new(Collector::new());
    let col_server =
        serve_collector_over_tcp(collector.clone(), "127.0.0.1:0", ServerConfig::default())
            .unwrap();

    let spec = TcpTopologySpec::chain(2, 1);
    let d = spec
        .deploy_with_telemetry(
            Arc::new(RoundRobin::new()),
            |_| table("echo"),
            &TelemetrySpec {
                collector: col_server.local_addr,
                interval: MANUAL,
            },
        )
        .unwrap();
    let client_obs = Arc::new(Obs::new());
    let client = DietClient::initialize_distributed(client_obs);
    let (out, stats) = client
        .call_distributed(&d.ma_client, &d.pool, request("echo", 1), &policy())
        .unwrap();
    assert_eq!(out.get_i32(1).unwrap(), 2);

    assert!(collector.trace(stats.trace_id).is_empty());
    d.shutdown(); // final flush happens here, synchronously

    let trace = collector.trace(stats.trace_id);
    assert!(
        trace.iter().any(|s| s.name == "Execution"),
        "tail flush missing the SeD's solve window: {trace:?}"
    );
    assert!(
        collector
            .obs
            .metrics
            .counter_with("diet_sed_solves_total", &[("sed", "d2/s0")])
            .get()
            >= 1
    );
    col_server.stop();
}
