//! Adversarial clients against the readiness-driven serving core: partial
//! frames, slow-loris holds, mid-frame disconnects, and hostile length
//! prefixes. The invariant under test is that a misbehaving peer costs the
//! server one socket registration — never a worker thread, never another
//! connection's latency, never an allocation sized by the attacker.

use bytes::Bytes;
use diet_core::codec::{decode_message, encode_message, Message};
use diet_core::transport::{Duplex, ServerConfig, TcpServer, TcpTransport};
use diet_core::ConnHandle;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A length-prefixed wire frame for `m`.
fn frame_bytes(m: &Message) -> Vec<u8> {
    let payload = encode_message(m);
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Blocking read of one frame off a raw socket.
fn read_frame(s: &mut TcpStream) -> std::io::Result<Message> {
    let mut hdr = [0u8; 4];
    s.read_exact(&mut hdr)?;
    let mut buf = vec![0u8; u32::from_le_bytes(hdr) as usize];
    s.read_exact(&mut buf)?;
    Ok(decode_message(Bytes::from(buf)).expect("server sent an undecodable frame"))
}

/// Ping-only echo server on the framed reactor core.
fn spawn_echo(workers: usize) -> TcpServer {
    TcpServer::spawn_framed(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            accept_queue: 8,
            faults: None,
            obs: None,
        },
        |handle: &ConnHandle, msg: Message| {
            if matches!(msg, Message::Ping) {
                let _ = handle.send(&Message::Pong);
            }
        },
    )
    .expect("bind echo server")
}

/// Poll `cond` until it holds or the deadline passes.
fn wait_for(what: &str, deadline: Duration, cond: impl Fn() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A frame trickled in one byte at a time must be assembled and answered
/// exactly as if it had arrived whole.
#[test]
fn one_byte_at_a_time_frames_are_assembled() {
    let server = spawn_echo(2);
    let mut s = TcpStream::connect(server.local_addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for round in 0..3 {
        for b in frame_bytes(&Message::Ping) {
            s.write_all(&[b]).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let reply = read_frame(&mut s).unwrap();
        assert!(matches!(reply, Message::Pong), "round {round}: {reply:?}");
    }
    server.stop();
}

/// A peer that sends half a header and stalls forever must not occupy a
/// dispatch worker or delay other connections — with a single worker, a
/// second connection's ping still gets its pong while the loris holds.
#[test]
fn slow_loris_does_not_hold_the_only_worker() {
    let server = spawn_echo(1);
    let mut loris = TcpStream::connect(server.local_addr).unwrap();
    loris.write_all(&[0x08, 0x00]).unwrap(); // 2 of 4 header bytes, then silence
    loris.flush().unwrap();
    std::thread::sleep(Duration::from_millis(20));

    let mut live = TcpStream::connect(server.local_addr).unwrap();
    live.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let t0 = Instant::now();
    live.write_all(&frame_bytes(&Message::Ping)).unwrap();
    let reply = read_frame(&mut live).unwrap();
    assert!(matches!(reply, Message::Pong), "got {reply:?}");
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "pong took {:?} behind a slow-loris hold",
        t0.elapsed()
    );
    drop(loris);
    server.stop();
}

/// Disconnecting mid-frame must sever and prune that registration — the
/// tracked connection count returns to the live set, and service continues.
#[test]
fn mid_frame_disconnect_is_pruned() {
    let server = spawn_echo(2);
    {
        let mut s = TcpStream::connect(server.local_addr).unwrap();
        let frame = frame_bytes(&Message::Ping);
        s.write_all(&frame[..frame.len() - 2]).unwrap();
        s.flush().unwrap();
        wait_for("conn registration", Duration::from_secs(5), || {
            server.tracked_connections() == 1
        });
    } // dropped mid-frame
    wait_for("dead conn prune", Duration::from_secs(5), || {
        server.tracked_connections() == 0
    });

    let t = TcpTransport::connect(server.local_addr).unwrap();
    t.send(&Message::Ping).unwrap();
    assert!(matches!(t.recv().unwrap(), Message::Pong));
    server.stop();
}

/// A hostile length prefix (~4 GiB) must be rejected from the 4-byte header
/// alone — the connection is severed before any attacker-sized allocation,
/// and the server keeps serving everyone else.
#[test]
fn oversized_length_prefix_severs_before_allocation() {
    let server = spawn_echo(2);
    let mut s = TcpStream::connect(server.local_addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(&0xFFFF_FFF0u32.to_le_bytes()).unwrap();
    s.flush().unwrap();
    let mut buf = [0u8; 16];
    let severed = match s.read(&mut buf) {
        Ok(0) => true,  // clean FIN
        Ok(_) => false, // server answered a garbage header?!
        Err(_) => true, // reset
    };
    assert!(severed, "oversized header was not rejected");
    wait_for("hostile conn prune", Duration::from_secs(5), || {
        server.tracked_connections() == 0
    });

    let t = TcpTransport::connect(server.local_addr).unwrap();
    t.send(&Message::Ping).unwrap();
    assert!(matches!(t.recv().unwrap(), Message::Pong));
    server.stop();
}

/// Regression for the legacy pooled server's kill-list leak: a closed
/// connection's entry must leave the tracking map when its worker finishes,
/// not accumulate until `kill`.
#[test]
fn pooled_server_prunes_closed_connections() {
    let server = TcpServer::spawn_with_config(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            accept_queue: 8,
            faults: None,
            obs: None,
        },
        |t: TcpTransport| {
            while let Ok(msg) = t.recv() {
                match msg {
                    Message::Ping => {
                        let _ = t.send(&Message::Pong);
                    }
                    _ => break,
                }
            }
        },
    )
    .expect("bind pooled server");

    for _ in 0..8 {
        let t = TcpTransport::connect(server.local_addr).unwrap();
        t.send(&Message::Ping).unwrap();
        assert!(matches!(t.recv().unwrap(), Message::Pong));
        t.send(&Message::Shutdown).unwrap();
    }
    wait_for("pooled conn prune", Duration::from_secs(5), || {
        server.tracked_connections() == 0
    });
    server.stop();
}
