//! The MA-DAG workflow engine over real sockets: data-flow DAGs submitted
//! through `SubmitDag` frames, scheduled inside the hierarchy. The
//! contracts under test are the ones that make engine-side workflows
//! worth having: intermediate snapshots move SeD-to-SeD (never through
//! the client), stragglers are cut short by speculative duplicates,
//! progress streams over the wire, and a dead client cancels its dag.

use diet_core::dag::{DagInput, DagNodeSpec, DagNodeState, WorkflowSpec};
use diet_core::data::{DietValue, Persistence};
use diet_core::deploy::{SedSpec, TcpTopologySpec};
use diet_core::hierarchy::RemoteAgentClient;
use diet_core::profile::{ArgTag, Profile, ProfileDesc};
use diet_core::sched::RoundRobin;
use diet_core::sed::{ServiceTable, SolveFn};
use diet_core::{DietClient, TraceCtx};
use obs::Obs;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn two_sed_topology() -> TcpTopologySpec {
    TcpTopologySpec {
        ma_name: "ma".into(),
        ma_seds: vec![
            SedSpec {
                label: "s0".into(),
                speed_factor: 1.0,
            },
            SedSpec {
                label: "s1".into(),
                speed_factor: 1.0,
            },
        ],
        sites: vec![],
        admission_limit: None,
        child_timeout_ms: 5_000,
    }
}

const VEC_LEN: usize = 10_000; // 80 KB payload — obvious in byte counters

fn stage_a_desc() -> ProfileDesc {
    let mut d = ProfileDesc::alloc("stageA", 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    d.set_arg(1, ArgTag::Vector).unwrap();
    d
}

fn stage_b_desc() -> ProfileDesc {
    let mut d = ProfileDesc::alloc("stageB", 0, 0, 1);
    d.set_arg(0, ArgTag::Vector).unwrap();
    d.set_arg(1, ArgTag::Scalar).unwrap();
    d
}

/// `stageA` lives only on s0, `stageB` only on s1 — the engine has no
/// choice but to move the 80 KB intermediate across SeDs.
fn split_stage_table(label: &str) -> ServiceTable {
    let mut t = ServiceTable::init(1);
    if label == "s0" {
        let solve: SolveFn = Arc::new(|p: &mut Profile| {
            let n = p.get_i32(0)? as usize;
            let v: Vec<f64> = (0..n).map(|i| i as f64).collect();
            p.set(1, DietValue::vec_f64(v), Persistence::Volatile)?;
            Ok(0)
        });
        t.add(stage_a_desc(), solve).unwrap();
    } else {
        let solve: SolveFn = Arc::new(|p: &mut Profile| {
            let v = match p.get(0)? {
                DietValue::VectorF64(v) => v.clone(),
                other => panic!("stageB input not resolved: {}", other.type_name()),
            };
            let sum: f64 = v.iter().sum();
            p.set(1, DietValue::ScalarI32(sum as i32), Persistence::Volatile)?;
            Ok(0)
        });
        t.add(stage_b_desc(), solve).unwrap();
    }
    t
}

/// Tentpole acceptance: a two-stage data-flow dag whose intermediate
/// vector moves SeD-to-SeD through the replica catalog. The client sees
/// only control frames — the outcome carries a grid ref for the heavy
/// output and an inline scalar for the final answer, and the pulling
/// SeD's byte counter accounts for the whole payload.
#[test]
fn intermediates_move_sed_to_sed_not_through_client() {
    let d = two_sed_topology()
        .deploy(Arc::new(RoundRobin::new()), |s| split_stage_table(&s.label))
        .unwrap();
    let client = DietClient::initialize_distributed(Arc::new(Obs::new()));

    let mut a = Profile::alloc(&stage_a_desc());
    a.set(
        0,
        DietValue::ScalarI32(VEC_LEN as i32),
        Persistence::Volatile,
    )
    .unwrap();
    let mut node_b = DagNodeSpec::new(1, Profile::alloc(&stage_b_desc()));
    node_b.deps = vec![0];
    node_b.inputs = vec![DagInput {
        arg: 0,
        from_node: 0,
        from_arg: 1,
    }];
    let spec = WorkflowSpec {
        name: "split-stages".into(),
        nodes: vec![DagNodeSpec::new(0, a), node_b],
    };

    let handle = client.submit_dag(&d.ma_client, &spec).unwrap();
    let (outcome, _events) = client
        .wait_dag(&d.ma_client, &handle, Duration::from_secs(30))
        .unwrap();

    assert!(outcome.ok, "dag failed: {outcome:?}");
    let a_out = outcome.nodes.iter().find(|n| n.node == 0).unwrap();
    let b_out = outcome.nodes.iter().find(|n| n.node == 1).unwrap();
    assert_eq!(a_out.sed, "s0");
    assert_eq!(b_out.sed, "s1");

    // The heavy intermediate came back to the client as a *reference*,
    // never as payload: the outcome lists a tagged grid id for stageA's
    // vector, and the wire events carry only strings.
    let (_, vec_ref) = a_out
        .outputs
        .iter()
        .find(|(arg, _)| *arg == 1)
        .expect("stageA's vector output published as a ref");
    assert!(
        vec_ref.starts_with("stageA@d"),
        "expected a tagged grid id, got {vec_ref:?}"
    );

    // stageB consumed the real data (sum of 0..n), so the intermediate
    // did move — and s1's pull counter accounts for every byte of it,
    // proving the transfer ran SeD-to-SeD through the catalog.
    let expected: f64 = (0..VEC_LEN).map(|i| i as f64).sum();
    let (_, sum) = b_out.scalars.iter().find(|(arg, _)| *arg == 1).unwrap();
    assert_eq!(*sum, expected as i64);
    let pulled = d
        .obs
        .metrics
        .counter_with("diet_data_pull_bytes_total", &[("sed", "s1")])
        .get();
    assert!(
        pulled >= (VEC_LEN * 8) as u64,
        "s1 pulled only {pulled} bytes for an {} byte vector",
        VEC_LEN * 8
    );

    d.shutdown();
}

/// A table whose single `work` service runs in ~20 ms — unless the shared
/// trip-wire is armed, in which case exactly one solve (the straggler)
/// wedges for `stall`.
fn straggler_table(trip: Arc<AtomicBool>, stall: Duration) -> ServiceTable {
    let mut d = ProfileDesc::alloc("work", 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    let solve: SolveFn = Arc::new(move |p: &mut Profile| {
        if trip.swap(false, Ordering::SeqCst) {
            std::thread::sleep(stall);
        } else {
            std::thread::sleep(Duration::from_millis(20));
        }
        let x = p.get_i32(0)?;
        p.set(1, DietValue::ScalarI32(x * 2), Persistence::Volatile)?;
        Ok(0)
    });
    let mut t = ServiceTable::init(1);
    t.add(d, solve).unwrap();
    t
}

fn work_node(id: u32, x: i32) -> DagNodeSpec {
    let mut d = ProfileDesc::alloc("work", 0, 0, 1);
    d.set_arg(0, ArgTag::Scalar).unwrap();
    let mut p = Profile::alloc(&d);
    p.set(0, DietValue::ScalarI32(x), Persistence::Volatile)
        .unwrap();
    DagNodeSpec::new(id, p)
}

/// Straggler speculation: after warm-up dags establish the running median,
/// one solve is wedged far past `speculate_factor` × median. The monitor
/// must launch a duplicate on the other SeD and the dag completes from
/// the duplicate's reply — zero lost dags, wedged original ignored.
#[test]
fn straggler_completes_via_speculative_duplicate() {
    let trip = Arc::new(AtomicBool::new(false));
    let stall = Duration::from_secs(4);
    let d = two_sed_topology()
        .deploy(Arc::new(RoundRobin::new()), {
            let trip = trip.clone();
            move |_| straggler_table(trip.clone(), stall)
        })
        .unwrap();
    let client = DietClient::initialize_distributed(Arc::new(Obs::new()));

    // Warm-up: three clean single-node dags build the duration samples the
    // speculation policy needs (speculate_min_samples).
    for i in 0..3 {
        let spec = WorkflowSpec {
            name: format!("warmup-{i}"),
            nodes: vec![work_node(0, i)],
        };
        let handle = client.submit_dag(&d.ma_client, &spec).unwrap();
        let (outcome, _) = client
            .wait_dag(&d.ma_client, &handle, Duration::from_secs(10))
            .unwrap();
        assert!(outcome.ok);
    }

    // Arm the straggler: the next solve (wherever it lands) wedges for 4 s,
    // ~200x the median. The duplicate lands on the *other* SeD (the
    // engine excludes the straggler's placement) and wins.
    trip.store(true, Ordering::SeqCst);
    let spec = WorkflowSpec {
        name: "straggled".into(),
        nodes: vec![work_node(0, 21)],
    };
    let started = Instant::now();
    let handle = client.submit_dag(&d.ma_client, &spec).unwrap();
    let (outcome, _) = client
        .wait_dag(&d.ma_client, &handle, Duration::from_secs(10))
        .unwrap();

    assert!(outcome.ok, "straggled dag lost: {outcome:?}");
    assert!(
        started.elapsed() < stall,
        "completion waited out the straggler instead of speculating"
    );
    let n = &outcome.nodes[0];
    assert!(n.speculated, "node completed without a duplicate: {n:?}");
    assert!(
        n.scalars.contains(&(1, 42)),
        "wrong result: {:?}",
        n.scalars
    );
    assert!(
        d.obs
            .metrics
            .counter("diet_dag_speculative_launches_total")
            .get()
            >= 1
    );
    assert_eq!(d.obs.metrics.counter("diet_dag_failed_total").get(), 0);

    d.shutdown();
}

/// Progress events stream over the wire via `DagStatus` polling with a
/// cursor, and every node's lifecycle lands as "DagNode" spans under the
/// one workflow trace.
#[test]
fn events_poll_over_wire_and_spans_stitch_under_workflow_trace() {
    let d = two_sed_topology()
        .deploy(Arc::new(RoundRobin::new()), {
            move |_| straggler_table(Arc::new(AtomicBool::new(false)), Duration::ZERO)
        })
        .unwrap();
    let client = DietClient::initialize_distributed(Arc::new(Obs::new()));

    let mut tail = work_node(1, 2);
    tail.deps = vec![0];
    let spec = WorkflowSpec {
        name: "chain".into(),
        nodes: vec![work_node(0, 1), tail],
    };
    let handle = client.submit_dag(&d.ma_client, &spec).unwrap();
    let (outcome, events) = client
        .wait_dag(&d.ma_client, &handle, Duration::from_secs(10))
        .unwrap();
    assert!(outcome.ok);

    // The stream covers each node's full lifecycle, strictly ordered by
    // sequence number, and closes with the dag-level terminal event.
    assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    for node in [0, 1] {
        for state in [
            DagNodeState::Ready,
            DagNodeState::Running,
            DagNodeState::Done,
        ] {
            assert!(
                events.iter().any(|e| e.node == node && e.state == state),
                "missing {state:?} event for node {node}: {events:?}"
            );
        }
    }
    assert_eq!(events.last().unwrap().node, u32::MAX, "dag terminal event");

    // Polling with the cursor past the end returns nothing new — the
    // stream is incremental, not a replay.
    let last_seq = events.last().unwrap().seq;
    let (rest, done) = client
        .poll_dag(&d.ma_client, handle.dag_id, last_seq)
        .unwrap();
    assert!(rest.is_empty());
    assert!(done.is_some());

    // Every node ran as a "DagNode" span under the workflow's trace id —
    // one stitched trace for the whole dag, labeled by executing SeD.
    let spans: Vec<_> = d
        .obs
        .tracer
        .snapshot()
        .into_iter()
        .filter(|s| s.trace_id == handle.trace_id && s.name == "DagNode")
        .collect();
    assert_eq!(spans.len(), 2, "one DagNode span per node: {spans:?}");
    for s in &spans {
        assert!(s.resource == "s0" || s.resource == "s1");
    }

    d.shutdown();
}

/// A client that vanishes mid-dag must not leak work: unplaced nodes are
/// cancelled (and counted), the running root drains, and the dag reaches
/// a terminal outcome.
#[test]
fn client_disconnect_cancels_unplaced_nodes() {
    let d = two_sed_topology()
        .deploy(Arc::new(RoundRobin::new()), {
            // Every solve takes ~700 ms — long enough to drop the client
            // while the root is still running and its children unplaced.
            move |_| straggler_table(Arc::new(AtomicBool::new(true)), Duration::from_millis(700))
        })
        .unwrap();

    let mut left = work_node(1, 2);
    left.deps = vec![0];
    let mut right = work_node(2, 3);
    right.deps = vec![0];
    let spec = WorkflowSpec {
        name: "orphaned".into(),
        nodes: vec![work_node(0, 1), left, right],
    };

    // Submit through a throwaway stub and kill it while the root runs.
    let rac = RemoteAgentClient::new("ma", d.ma_server.local_addr);
    let dag_id = rac.submit_dag(&spec, TraceCtx::default()).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    drop(rac);

    // The engine notices the dead connection and finishes the dag without
    // placing the children.
    let deadline = Instant::now() + Duration::from_secs(10);
    let outcome = loop {
        let (_, outcome) = d.dag.status(dag_id, 0).unwrap();
        if let Some(o) = outcome {
            break o;
        }
        assert!(Instant::now() < deadline, "dag never reached an outcome");
        std::thread::sleep(Duration::from_millis(25));
    };

    assert_eq!(outcome.cancelled, 2, "both children cancelled: {outcome:?}");
    assert!(!outcome.ok);
    for node in [1, 2] {
        let n = outcome.nodes.iter().find(|n| n.node == node).unwrap();
        assert_eq!(n.sed, "", "cancelled node must never have been placed");
    }
    assert_eq!(d.obs.metrics.counter("diet_dag_cancelled_total").get(), 2);

    d.shutdown();
}
