//! The agent hierarchy.
//!
//! "When a Master Agent receives a computation request from a client, agents
//! collect computation abilities from servers (through the hierarchy) and
//! chooses the best one according to some scheduling heuristics. The MA
//! sends back a reference to the chosen server."
//!
//! [`MasterAgent`] sits at the root; [`AgentNode`]s form the tree below it
//! (Local Agents, possibly nested, exactly like DIET's MA/LA hierarchy —
//! Figure 1 of the paper). A submit walks the tree gathering [`Estimate`]s
//! from every SeD declaring the service, then the plug-in [`Scheduler`]
//! picks the winner.

use crate::error::DietError;
use crate::monitor::Estimate;
use crate::sched::Scheduler;
use crate::sed::SedHandle;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// An interior node of the hierarchy: a Local Agent with SeDs and/or child
/// agents below it.
pub struct AgentNode {
    pub name: String,
    pub seds: Vec<Arc<SedHandle>>,
    pub children: Vec<Arc<AgentNode>>,
}

impl AgentNode {
    pub fn leaf(name: &str, seds: Vec<Arc<SedHandle>>) -> Arc<Self> {
        Arc::new(AgentNode {
            name: name.to_string(),
            seds,
            children: vec![],
        })
    }

    pub fn interior(name: &str, children: Vec<Arc<AgentNode>>) -> Arc<Self> {
        Arc::new(AgentNode {
            name: name.to_string(),
            seds: vec![],
            children,
        })
    }

    /// Depth-first collection of estimates for a service.
    fn collect(&self, service: &str, out: &mut Vec<(Estimate, Arc<SedHandle>)>) {
        for sed in &self.seds {
            if let Some(e) = sed.estimate(service) {
                out.push((e, sed.clone()));
            }
        }
        for child in &self.children {
            child.collect(service, out);
        }
    }

    /// Total number of SeDs in this subtree (agent bookkeeping: "the number
    /// of servers that can solve a given problem").
    pub fn sed_count(&self) -> usize {
        self.seds.len() + self.children.iter().map(|c| c.sed_count()).sum::<usize>()
    }

    /// How many SeDs in this subtree declare `service`.
    pub fn solver_count(&self, service: &str) -> usize {
        self.seds
            .iter()
            .filter(|s| s.declares(service))
            .count()
            + self
                .children
                .iter()
                .map(|c| c.solver_count(service))
                .sum::<usize>()
    }
}

/// Statistics of one submit, kept by the MA ("the information stored on an
/// agent is the list of requests ...").
#[derive(Debug, Clone)]
pub struct SubmitRecord {
    pub request_id: u64,
    pub service: String,
    pub chosen: Option<String>,
    /// The paper's "finding time": hierarchy traversal + scheduling decision.
    pub finding_time: f64,
    pub candidates: usize,
}

/// The Master Agent.
pub struct MasterAgent {
    pub name: String,
    children: Vec<Arc<AgentNode>>,
    scheduler: Arc<dyn Scheduler>,
    requests: Mutex<Vec<SubmitRecord>>,
    next_id: Mutex<u64>,
}

impl MasterAgent {
    pub fn new(name: &str, children: Vec<Arc<AgentNode>>, scheduler: Arc<dyn Scheduler>) -> Arc<Self> {
        Arc::new(MasterAgent {
            name: name.to_string(),
            children,
            scheduler,
            requests: Mutex::new(Vec::new()),
            next_id: Mutex::new(0),
        })
    }

    /// Swap the scheduling policy (plug-in scheduler hot swap).
    pub fn with_scheduler(self: &Arc<Self>, scheduler: Arc<dyn Scheduler>) -> Arc<Self> {
        Arc::new(MasterAgent {
            name: self.name.clone(),
            children: self.children.clone(),
            scheduler,
            requests: Mutex::new(Vec::new()),
            next_id: Mutex::new(0),
        })
    }

    /// Handle a client submit: traverse, schedule, return the chosen SeD.
    pub fn submit(&self, service: &str) -> Result<Arc<SedHandle>, DietError> {
        let started = Instant::now();
        let request_id = {
            let mut id = self.next_id.lock();
            *id += 1;
            *id
        };
        let mut candidates: Vec<(Estimate, Arc<SedHandle>)> = Vec::new();
        for child in &self.children {
            child.collect(service, &mut candidates);
        }
        let record_base = SubmitRecord {
            request_id,
            service: service.to_string(),
            chosen: None,
            finding_time: 0.0,
            candidates: candidates.len(),
        };
        if candidates.is_empty() {
            let any_declared = self
                .children
                .iter()
                .any(|c| c.solver_count(service) > 0);
            let mut rec = record_base;
            rec.finding_time = started.elapsed().as_secs_f64();
            self.requests.lock().push(rec);
            return Err(if any_declared {
                DietError::NoServerAvailable(service.to_string())
            } else {
                DietError::ServiceNotFound(service.to_string())
            });
        }
        let ests: Vec<Estimate> = candidates.iter().map(|(e, _)| e.clone()).collect();
        let pick = self.scheduler.select(&ests);
        let chosen = candidates
            .get(pick)
            .ok_or_else(|| {
                DietError::Rejected(format!(
                    "scheduler {} returned out-of-range index {pick}",
                    self.scheduler.name()
                ))
            })?
            .1
            .clone();
        let mut rec = record_base;
        rec.chosen = Some(chosen.config.label.clone());
        rec.finding_time = started.elapsed().as_secs_f64();
        self.requests.lock().push(rec);
        Ok(chosen)
    }

    /// All submit records so far (the Figure 5 "finding time" series).
    pub fn submit_records(&self) -> Vec<SubmitRecord> {
        self.requests.lock().clone()
    }

    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    pub fn sed_count(&self) -> usize {
        self.children.iter().map(|c| c.sed_count()).sum()
    }

    /// Total SeDs declaring `service` ("the number of servers that can solve
    /// a given problem").
    pub fn solver_count(&self, service: &str) -> usize {
        self.children
            .iter()
            .map(|c| c.solver_count(service))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{DietValue, Persistence};
    use crate::profile::{ArgTag, Profile, ProfileDesc};
    use crate::sched::{MinQueue, RoundRobin};
    use crate::sed::{SedConfig, ServiceTable, SolveFn};

    fn echo_table() -> ServiceTable {
        let mut d = ProfileDesc::alloc("echo", 0, 0, 1);
        d.set_arg(0, ArgTag::Scalar).unwrap();
        let solve: SolveFn = Arc::new(|p: &mut Profile| {
            let x = p.get_i32(0)?;
            p.set(1, DietValue::ScalarI32(x), Persistence::Volatile)?;
            Ok(0)
        });
        let mut t = ServiceTable::init(4);
        t.add(d, solve).unwrap();
        t
    }

    fn hierarchy(n_seds_per_la: &[usize]) -> (Arc<MasterAgent>, Vec<Arc<SedHandle>>) {
        let mut all = Vec::new();
        let mut las = Vec::new();
        for (li, &n) in n_seds_per_la.iter().enumerate() {
            let mut seds = Vec::new();
            for s in 0..n {
                let sed = SedHandle::spawn(
                    SedConfig::new(&format!("la{li}/sed{s}"), 1.0),
                    echo_table(),
                );
                all.push(sed.clone());
                seds.push(sed);
            }
            las.push(AgentNode::leaf(&format!("LA{li}"), seds));
        }
        let ma = MasterAgent::new("MA", las, Arc::new(RoundRobin::new()));
        (ma, all)
    }

    #[test]
    fn submit_traverses_whole_hierarchy() {
        let (ma, seds) = hierarchy(&[2, 3, 1]);
        assert_eq!(ma.sed_count(), 6);
        assert_eq!(ma.solver_count("echo"), 6);
        let chosen = ma.submit("echo").unwrap();
        assert!(seds.iter().any(|s| s.config.label == chosen.config.label));
        let recs = ma.submit_records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].candidates, 6);
        assert!(recs[0].finding_time >= 0.0);
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn round_robin_spreads_requests() {
        let (ma, seds) = hierarchy(&[2, 2]);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..8 {
            let c = ma.submit("echo").unwrap();
            *counts.entry(c.config.label.clone()).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 4);
        assert!(counts.values().all(|&v| v == 2));
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn unknown_service_is_not_found() {
        let (ma, seds) = hierarchy(&[1]);
        assert!(matches!(
            ma.submit("nosuch"),
            Err(DietError::ServiceNotFound(_))
        ));
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn nested_agents_are_traversed() {
        let sed_a = SedHandle::spawn(SedConfig::new("deep/a", 1.0), echo_table());
        let sed_b = SedHandle::spawn(SedConfig::new("deep/b", 1.0), echo_table());
        let leaf_a = AgentNode::leaf("leafA", vec![sed_a.clone()]);
        let leaf_b = AgentNode::leaf("leafB", vec![sed_b.clone()]);
        let mid = AgentNode::interior("mid", vec![leaf_a, leaf_b]);
        let ma = MasterAgent::new("MA", vec![mid], Arc::new(RoundRobin::new()));
        assert_eq!(ma.sed_count(), 2);
        let c1 = ma.submit("echo").unwrap().config.label.clone();
        let c2 = ma.submit("echo").unwrap().config.label.clone();
        assert_ne!(c1, c2);
        sed_a.shutdown();
        sed_b.shutdown();
    }

    #[test]
    fn min_queue_prefers_idle_sed() {
        let busy = SedHandle::spawn(SedConfig::new("busy", 1.0), {
            let mut d = ProfileDesc::alloc("echo", 0, 0, 1);
            d.set_arg(0, ArgTag::Scalar).unwrap();
            let solve: SolveFn = Arc::new(|p: &mut Profile| {
                std::thread::sleep(std::time::Duration::from_millis(80));
                let x = p.get_i32(0)?;
                p.set(1, DietValue::ScalarI32(x), Persistence::Volatile)?;
                Ok(0)
            });
            let mut t = ServiceTable::init(1);
            t.add(d, solve).unwrap();
            t
        });
        let idle = SedHandle::spawn(SedConfig::new("idle", 1.0), echo_table());
        let la = AgentNode::leaf("LA", vec![busy.clone(), idle.clone()]);
        let ma = MasterAgent::new("MA", vec![la], Arc::new(MinQueue));

        // Fill busy's queue.
        let d = ProfileDesc::alloc("echo", 0, 0, 1);
        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::ScalarI32(1), Persistence::Volatile)
            .unwrap();
        let _pending = busy.submit(p).unwrap();

        let chosen = ma.submit("echo").unwrap();
        assert_eq!(chosen.config.label, "idle");
        busy.shutdown();
        idle.shutdown();
    }

    #[test]
    fn records_accumulate_with_ids() {
        let (ma, seds) = hierarchy(&[1, 1]);
        for _ in 0..5 {
            ma.submit("echo").unwrap();
        }
        let recs = ma.submit_records();
        assert_eq!(recs.len(), 5);
        let ids: Vec<u64> = recs.iter().map(|r| r.request_id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        for s in seds {
            s.shutdown();
        }
    }
}
