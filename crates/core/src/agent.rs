//! The agent hierarchy.
//!
//! "When a Master Agent receives a computation request from a client, agents
//! collect computation abilities from servers (through the hierarchy) and
//! chooses the best one according to some scheduling heuristics. The MA
//! sends back a reference to the chosen server."
//!
//! [`MasterAgent`] sits at the root; [`AgentNode`]s form the tree below it
//! (Local Agents, possibly nested, exactly like DIET's MA/LA hierarchy —
//! Figure 1 of the paper). A submit walks the tree gathering [`Estimate`]s
//! from every SeD declaring the service, then the plug-in [`Scheduler`]
//! picks the winner.

use crate::dagda::ReplicaCatalog;
use crate::error::DietError;
use crate::faults::{FaultAction, FaultPlan};
use crate::monitor::Estimate;
use crate::sched::Scheduler;
use crate::sed::SedHandle;
use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use obs::{Obs, TraceCtx};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A child agent that lives in another process and is reachable only over
/// the wire. The local tree sees it as an opaque estimate source: `collect`
/// carries a submit down to it (a `Forward` frame, in the TCP
/// implementation) and returns the subtree's aggregated estimates.
/// [`crate::hierarchy::RemoteAgentClient`] is the TCP implementation;
/// tests can plug in in-process fakes.
pub trait RemoteSubtree: Send + Sync {
    /// Agent name (for liveness bookkeeping and diagnostics).
    fn name(&self) -> String;
    /// Gather estimates for `service` from the whole remote subtree.
    /// An error means the subtree is unreachable — callers treat it as
    /// empty, never as fatal.
    fn collect(
        &self,
        service: &str,
        exclude: &[String],
        ctx: TraceCtx,
    ) -> Result<Vec<Estimate>, DietError>;
    /// Liveness probe of the remote agent process.
    fn ping(&self, timeout: Duration) -> bool;
}

/// A [`RemoteSubtree`] plus its availability bit, flipped by the heartbeat
/// monitor: an agent that misses its heartbeats has its whole subtree's
/// SeDs pulled from routing (collect skips the slot), and a successful
/// probe later re-registers them — the slot is marked, never removed.
pub struct RemoteSlot {
    remote: Arc<dyn RemoteSubtree>,
    available: AtomicBool,
}

impl RemoteSlot {
    pub fn new(remote: Arc<dyn RemoteSubtree>) -> Arc<Self> {
        Arc::new(RemoteSlot {
            remote,
            available: AtomicBool::new(true),
        })
    }

    pub fn name(&self) -> String {
        self.remote.name()
    }

    pub fn remote(&self) -> &Arc<dyn RemoteSubtree> {
        &self.remote
    }

    /// Is this subtree currently part of routing?
    pub fn is_available(&self) -> bool {
        self.available.load(Ordering::Acquire)
    }

    pub fn set_available(&self, v: bool) {
        self.available.store(v, Ordering::Release);
    }
}

/// An interior node of the hierarchy: a Local Agent with SeDs and/or child
/// agents below it. SeD membership is dynamic — agents deregister servers
/// that die (heartbeat misses or failed calls) and can attach new ones.
/// Children come in two flavours: in-process [`AgentNode`]s and
/// [`RemoteSlot`]s fronting agents in other processes.
pub struct AgentNode {
    pub name: String,
    seds: RwLock<Vec<Arc<SedHandle>>>,
    pub children: Vec<Arc<AgentNode>>,
    /// Remote child agents (other processes), attached at runtime.
    remotes: RwLock<Vec<Arc<RemoteSlot>>>,
    /// Failure injection for the *agent itself* (stall/kill during estimate
    /// collection) — how tests make a whole subtree go quiet.
    faults: RwLock<Option<Arc<FaultPlan>>>,
}

impl AgentNode {
    pub fn leaf(name: &str, seds: Vec<Arc<SedHandle>>) -> Arc<Self> {
        Arc::new(AgentNode {
            name: name.to_string(),
            seds: RwLock::new(seds),
            children: vec![],
            remotes: RwLock::new(vec![]),
            faults: RwLock::new(None),
        })
    }

    pub fn interior(name: &str, children: Vec<Arc<AgentNode>>) -> Arc<Self> {
        Arc::new(AgentNode {
            name: name.to_string(),
            seds: RwLock::new(vec![]),
            children,
            remotes: RwLock::new(vec![]),
            faults: RwLock::new(None),
        })
    }

    /// Snapshot of the SeDs attached directly to this agent.
    pub fn seds(&self) -> Vec<Arc<SedHandle>> {
        self.seds.read().clone()
    }

    /// Attach a SeD to this agent at runtime.
    pub fn add_sed(&self, sed: Arc<SedHandle>) {
        self.seds.write().push(sed);
    }

    /// Attach a remote child agent; returns its slot so deployment code
    /// (or the heartbeat monitor) can flip its availability.
    pub fn add_remote(&self, remote: Arc<dyn RemoteSubtree>) -> Arc<RemoteSlot> {
        let slot = RemoteSlot::new(remote);
        self.remotes.write().push(slot.clone());
        slot
    }

    /// Snapshot of the remote child slots attached directly to this agent.
    pub fn remotes(&self) -> Vec<Arc<RemoteSlot>> {
        self.remotes.read().clone()
    }

    /// Arm failure injection on this agent's collection path.
    pub fn set_faults(&self, plan: Arc<FaultPlan>) {
        *self.faults.write() = Some(plan);
    }

    /// Remove every SeD with this label from the subtree — all of them,
    /// not just the first: a label accidentally registered at two nodes
    /// (double registration) must not leave a stale handle the scheduler
    /// can still pick. Returns how many handles were removed.
    pub fn remove_sed(&self, label: &str) -> usize {
        let mut removed = {
            let mut seds = self.seds.write();
            let before = seds.len();
            seds.retain(|s| s.config.label != label);
            before - seds.len()
        };
        for child in &self.children {
            removed += child.remove_sed(label);
        }
        removed
    }

    /// Depth-first collection of estimates for a service, skipping excluded
    /// labels (servers a retrying client has just seen fail). Local SeDs
    /// carry their handle; estimates from remote subtrees carry `None` —
    /// the caller reaches those SeDs by label over the wire. An unreachable
    /// remote subtree contributes nothing (it is skipped, never fatal).
    pub(crate) fn collect(
        &self,
        service: &str,
        exclude: &[String],
        ctx: TraceCtx,
        out: &mut Vec<(Estimate, Option<Arc<SedHandle>>)>,
    ) {
        if let Some(plan) = self.faults.read().clone() {
            // Stall is applied inside on_request; Kill makes the whole
            // subtree go dark mid-collection.
            if plan.on_request() == FaultAction::Kill {
                return;
            }
        }
        for sed in self.seds.read().iter() {
            if exclude.iter().any(|l| *l == sed.config.label) {
                continue;
            }
            if let Some(e) = sed.estimate(service) {
                out.push((e, Some(sed.clone())));
            }
        }
        for child in &self.children {
            child.collect(service, exclude, ctx, out);
        }
        for slot in self.remotes.read().iter() {
            if !slot.is_available() {
                continue;
            }
            let t0 = Instant::now();
            if let Ok(ests) = slot.remote.collect(service, exclude, ctx) {
                // The measured hop round-trip is this parent's proximity
                // signal for everything below the remote agent.
                let hop = t0.elapsed().as_secs_f64();
                for mut e in ests {
                    if exclude.contains(&e.server) {
                        continue;
                    }
                    e.probe_rtt += hop;
                    out.push((e, None));
                }
            }
        }
    }

    /// Public estimate collection (the LA-side serving loop aggregates
    /// these into an `EstimateBatch` frame).
    pub fn estimates(&self, service: &str, exclude: &[String], ctx: TraceCtx) -> Vec<Estimate> {
        let mut out = Vec::new();
        self.collect(service, exclude, ctx, &mut out);
        out.into_iter().map(|(e, _)| e).collect()
    }

    /// Every SeD in this subtree (for liveness sweeps). Remote subtrees'
    /// SeDs are not visible here — their own process monitors them.
    fn collect_all(&self, out: &mut Vec<Arc<SedHandle>>) {
        out.extend(self.seds.read().iter().cloned());
        for child in &self.children {
            child.collect_all(out);
        }
    }

    /// Every remote slot in this subtree (for agent liveness sweeps).
    fn collect_remote_slots(&self, out: &mut Vec<Arc<RemoteSlot>>) {
        out.extend(self.remotes.read().iter().cloned());
        for child in &self.children {
            child.collect_remote_slots(out);
        }
    }

    /// Total number of SeDs in this subtree (agent bookkeeping: "the number
    /// of servers that can solve a given problem").
    pub fn sed_count(&self) -> usize {
        self.seds.read().len() + self.children.iter().map(|c| c.sed_count()).sum::<usize>()
    }

    /// How many SeDs in this subtree declare `service`.
    pub fn solver_count(&self, service: &str) -> usize {
        self.seds
            .read()
            .iter()
            .filter(|s| s.declares(service))
            .count()
            + self
                .children
                .iter()
                .map(|c| c.solver_count(service))
                .sum::<usize>()
    }
}

/// Statistics of one submit, kept by the MA ("the information stored on an
/// agent is the list of requests ...").
#[derive(Debug, Clone)]
pub struct SubmitRecord {
    pub request_id: u64,
    pub service: String,
    pub chosen: Option<String>,
    /// The paper's "finding time": hierarchy traversal + scheduling decision.
    pub finding_time: f64,
    pub candidates: usize,
}

/// How many failed calls (while the SeD still answers liveness probes) it
/// takes before the MA deregisters it anyway.
const FAILURE_STRIKES: u32 = 3;

/// The Master Agent.
pub struct MasterAgent {
    pub name: String,
    children: Vec<Arc<AgentNode>>,
    scheduler: Arc<dyn Scheduler>,
    requests: Mutex<Vec<SubmitRecord>>,
    next_id: Mutex<u64>,
    /// Labels removed from the hierarchy (dead or repeatedly failing SeDs).
    deregistered: Mutex<Vec<String>>,
    /// Failed-call strikes per still-alive label.
    strikes: Mutex<HashMap<String, u32>>,
    /// Metrics sink: submits, scheduler decisions, finding-time histogram,
    /// deregistrations, heartbeat counters.
    obs: Arc<Obs>,
    /// Hierarchy-wide replica catalog (DAGDA). When registered, estimates
    /// gain locality terms and deregistration drops the dead SeD's replicas.
    catalog: RwLock<Option<Arc<ReplicaCatalog>>>,
    /// Per-subtree estimate-collection deadline. When set, each direct
    /// child is collected on its own thread and a subtree that fails to
    /// answer in time is treated exactly like an empty one — skipped, never
    /// fatal. `None` (the default) collects synchronously, preserving the
    /// in-process fast path.
    collect_timeout: RwLock<Option<Duration>>,
}

impl MasterAgent {
    pub fn new(
        name: &str,
        children: Vec<Arc<AgentNode>>,
        scheduler: Arc<dyn Scheduler>,
    ) -> Arc<Self> {
        Self::new_with_obs(name, children, scheduler, Arc::new(Obs::new()))
    }

    /// Like [`MasterAgent::new`] but recording into an injected
    /// observability sink.
    pub fn new_with_obs(
        name: &str,
        children: Vec<Arc<AgentNode>>,
        scheduler: Arc<dyn Scheduler>,
        obs: Arc<Obs>,
    ) -> Arc<Self> {
        Arc::new(MasterAgent {
            name: name.to_string(),
            children,
            scheduler,
            requests: Mutex::new(Vec::new()),
            next_id: Mutex::new(0),
            deregistered: Mutex::new(Vec::new()),
            strikes: Mutex::new(HashMap::new()),
            obs,
            catalog: RwLock::new(None),
            collect_timeout: RwLock::new(None),
        })
    }

    /// Swap the scheduling policy (plug-in scheduler hot swap).
    pub fn with_scheduler(self: &Arc<Self>, scheduler: Arc<dyn Scheduler>) -> Arc<Self> {
        Arc::new(MasterAgent {
            name: self.name.clone(),
            children: self.children.clone(),
            scheduler,
            requests: Mutex::new(Vec::new()),
            next_id: Mutex::new(0),
            deregistered: Mutex::new(Vec::new()),
            strikes: Mutex::new(HashMap::new()),
            obs: self.obs.clone(),
            catalog: RwLock::new(self.catalog.read().clone()),
            collect_timeout: RwLock::new(*self.collect_timeout.read()),
        })
    }

    /// Bound how long a submit waits for any one child subtree's estimates.
    /// Mandatory once children are remote: a stalled or dead LA must cost
    /// one deadline, not the whole submit.
    pub fn set_collect_timeout(&self, d: Duration) {
        *self.collect_timeout.write() = Some(d);
    }

    /// Register the hierarchy-wide replica catalog and attach it to every
    /// SeD currently in the hierarchy (publish-on-retain / unpublish-on-
    /// evict). Estimates gain data-locality terms from here on, and
    /// [`MasterAgent::deregister`] drops a dead SeD's catalog entries.
    pub fn register_catalog(&self, catalog: Arc<ReplicaCatalog>) {
        for sed in self.all_seds() {
            sed.attach_catalog(catalog.clone());
        }
        *self.catalog.write() = Some(catalog);
    }

    /// The registered replica catalog, if any.
    pub fn catalog(&self) -> Option<Arc<ReplicaCatalog>> {
        self.catalog.read().clone()
    }

    /// This agent's observability sink.
    pub fn obs(&self) -> Arc<Obs> {
        self.obs.clone()
    }

    /// This agent's metrics registry (convenience for assertions/dumps).
    pub fn metrics(&self) -> &obs::Registry {
        &self.obs.metrics
    }

    /// Handle a client submit: traverse, schedule, return the chosen SeD.
    pub fn submit(&self, service: &str) -> Result<Arc<SedHandle>, DietError> {
        self.submit_excluding(service, &[])
    }

    /// Like [`submit`](Self::submit), but skipping `exclude`d labels — the
    /// resubmission path: a retrying client excludes the servers that just
    /// failed it so the scheduler must pick a different one.
    pub fn submit_excluding(
        &self,
        service: &str,
        exclude: &[String],
    ) -> Result<Arc<SedHandle>, DietError> {
        self.submit_with_data(service, &[], exclude)
    }

    /// Data-aware submit: `data_ids` are the request's grid-data references.
    /// With a catalog registered, every candidate estimate gains the
    /// locality split (bytes already local vs. bytes it would pull), so
    /// data-aware schedulers can prefer the SeDs holding the inputs.
    pub fn submit_with_data(
        &self,
        service: &str,
        data_ids: &[String],
        exclude: &[String],
    ) -> Result<Arc<SedHandle>, DietError> {
        let (est, handle) = self.schedule(service, data_ids, exclude, TraceCtx::default())?;
        handle.ok_or_else(|| {
            DietError::Rejected(format!(
                "chosen server {} lives behind a remote agent; resolve by label instead",
                est.server
            ))
        })
    }

    /// Submit returning only the winning SeD's *label* — the form the wire
    /// protocol needs (a `SubmitReply` carries a name, and the client
    /// reaches the SeD through its own connection pool). Works whether the
    /// winner is a local handle or an estimate that travelled up from a
    /// remote subtree.
    pub fn resolve(
        &self,
        service: &str,
        data_ids: &[String],
        exclude: &[String],
        ctx: TraceCtx,
    ) -> Result<String, DietError> {
        self.schedule(service, data_ids, exclude, ctx)
            .map(|(est, _)| est.server)
    }

    /// Collect candidates from every child subtree, honouring the
    /// per-subtree deadline when one is armed.
    fn collect_candidates(
        &self,
        service: &str,
        exclude: &[String],
        ctx: TraceCtx,
    ) -> Vec<(Estimate, Option<Arc<SedHandle>>)> {
        let timeout = *self.collect_timeout.read();
        let Some(deadline) = timeout else {
            let mut out = Vec::new();
            for child in &self.children {
                child.collect(service, exclude, ctx, &mut out);
            }
            return out;
        };
        // One collector thread per direct child: a subtree that stalls past
        // the deadline is skipped (its thread finishes in the background and
        // its late answer is discarded with the channel).
        let (tx, rx) = bounded::<Vec<(Estimate, Option<Arc<SedHandle>>)>>(self.children.len());
        let expected = self.children.len();
        for child in &self.children {
            let child = child.clone();
            let tx = tx.clone();
            let service = service.to_string();
            let exclude = exclude.to_vec();
            std::thread::spawn(move || {
                let mut part = Vec::new();
                child.collect(&service, &exclude, ctx, &mut part);
                let _ = tx.send(part);
            });
        }
        drop(tx);
        let hard_deadline = Instant::now() + deadline;
        let mut out = Vec::new();
        let mut received = 0usize;
        while received < expected {
            let remaining = hard_deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(remaining) {
                Ok(part) => {
                    out.extend(part);
                    received += 1;
                }
                Err(_) => break,
            }
        }
        if received < expected {
            self.obs
                .metrics
                .counter("diet_ma_subtree_timeouts_total")
                .add((expected - received) as u64);
        }
        out
    }

    /// The scheduling core every submit variant funnels through: collect,
    /// inject locality, drop saturated candidates, pick.
    fn schedule(
        &self,
        service: &str,
        data_ids: &[String],
        exclude: &[String],
        ctx: TraceCtx,
    ) -> Result<(Estimate, Option<Arc<SedHandle>>), DietError> {
        let started = Instant::now();
        let request_id = {
            let mut id = self.next_id.lock();
            *id += 1;
            *id
        };
        let mut candidates = self.collect_candidates(service, exclude, ctx);
        if !data_ids.is_empty() {
            if let Some(cat) = self.catalog.read().as_ref() {
                for (est, _) in candidates.iter_mut() {
                    let (local, miss) = cat.locality(&est.server, data_ids);
                    est.data_local_bytes = local;
                    est.data_miss_bytes = miss;
                }
                self.obs
                    .metrics
                    .counter("diet_ma_data_aware_submits_total")
                    .inc();
            }
        }
        // Admission-aware spreading: a saturated SeD (queue at its admission
        // limit) would reject the request with `Busy` anyway, so drop it from
        // consideration while any unsaturated candidate remains. When *every*
        // candidate is saturated, keep them all — a Busy bounce plus client
        // backoff beats a spurious NoServerAvailable.
        if candidates.iter().any(|(e, _)| !e.is_saturated())
            && candidates.iter().any(|(e, _)| e.is_saturated())
        {
            let dropped = candidates.iter().filter(|(e, _)| e.is_saturated()).count();
            candidates.retain(|(e, _)| !e.is_saturated());
            self.obs
                .metrics
                .counter("diet_ma_saturated_skipped_total")
                .add(dropped as u64);
        }
        let record_base = SubmitRecord {
            request_id,
            service: service.to_string(),
            chosen: None,
            finding_time: 0.0,
            candidates: candidates.len(),
        };
        self.obs.metrics.counter("diet_ma_submits_total").inc();
        if candidates.is_empty() {
            let any_declared = self.children.iter().any(|c| c.solver_count(service) > 0);
            let mut rec = record_base;
            rec.finding_time = started.elapsed().as_secs_f64();
            self.requests.lock().push(rec);
            self.obs.metrics.counter("diet_ma_no_candidate_total").inc();
            return Err(if any_declared {
                DietError::NoServerAvailable(service.to_string())
            } else {
                DietError::ServiceNotFound(service.to_string())
            });
        }
        let ests: Vec<Estimate> = candidates.iter().map(|(e, _)| e.clone()).collect();
        let pick = self.scheduler.select(&ests);
        let (chosen_est, chosen_handle) = candidates.get(pick).cloned().ok_or_else(|| {
            DietError::Rejected(format!(
                "scheduler {} returned out-of-range index {pick}",
                self.scheduler.name()
            ))
        })?;
        let mut rec = record_base;
        rec.chosen = Some(chosen_est.server.clone());
        rec.finding_time = started.elapsed().as_secs_f64();
        // Every scheduler decision is a labelled counter tick; the finding
        // time feeds the histogram the Figure-5 percentiles come from.
        self.obs
            .metrics
            .counter_with(
                "diet_ma_scheduled_total",
                &[
                    ("sed", &chosen_est.server),
                    ("policy", self.scheduler.name()),
                ],
            )
            .inc();
        self.obs
            .metrics
            .histogram("diet_ma_finding_seconds")
            .observe(rec.finding_time);
        self.requests.lock().push(rec);
        Ok((chosen_est, chosen_handle))
    }

    /// All submit records so far (the Figure 5 "finding time" series).
    pub fn submit_records(&self) -> Vec<SubmitRecord> {
        self.requests.lock().clone()
    }

    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// The scheduling policy itself — the federation path schedules
    /// peer-collected estimates with the same policy local submits use.
    pub fn scheduler_handle(&self) -> Arc<dyn Scheduler> {
        self.scheduler.clone()
    }

    /// This MA's whole tree reduced to bare estimates — what it answers
    /// when consulted *as* a federation peer (or as a remote subtree of a
    /// larger hierarchy). Honours the collect deadline when one is armed.
    pub fn estimates(&self, service: &str, exclude: &[String], ctx: TraceCtx) -> Vec<Estimate> {
        self.collect_candidates(service, exclude, ctx)
            .into_iter()
            .map(|(e, _)| e)
            .collect()
    }

    pub fn sed_count(&self) -> usize {
        self.children.iter().map(|c| c.sed_count()).sum()
    }

    /// Total SeDs declaring `service` ("the number of servers that can solve
    /// a given problem").
    pub fn solver_count(&self, service: &str) -> usize {
        self.children.iter().map(|c| c.solver_count(service)).sum()
    }

    /// Every SeD currently registered anywhere in the hierarchy.
    pub fn all_seds(&self) -> Vec<Arc<SedHandle>> {
        let mut out = Vec::new();
        for child in &self.children {
            child.collect_all(&mut out);
        }
        out
    }

    /// Every remote agent slot anywhere in the local tree (for liveness
    /// sweeps — each process monitors its own direct view of the wire).
    pub fn remote_slots(&self) -> Vec<Arc<RemoteSlot>> {
        let mut out = Vec::new();
        for child in &self.children {
            child.collect_remote_slots(&mut out);
        }
        out
    }

    /// Remove a SeD from the hierarchy by label — every registration of it,
    /// across the whole tree. Returns true if at least one handle was
    /// removed. Deregistered labels never reappear in candidate sets.
    pub fn deregister(&self, label: &str) -> bool {
        let removed = self
            .children
            .iter()
            .map(|c| c.remove_sed(label))
            .sum::<usize>()
            > 0;
        if removed {
            let mut dead = self.deregistered.lock();
            if !dead.iter().any(|l| l == label) {
                dead.push(label.to_string());
            }
            self.obs
                .metrics
                .counter("diet_ma_sed_deregistered_total")
                .inc();
            // A deregistered SeD's replicas are unreachable: drop them so
            // no scheduler or puller chases a dead location. Both heartbeat
            // evictions and failure-report removals funnel through here.
            if let Some(cat) = self.catalog.read().as_ref() {
                let dropped = cat.drop_sed(label);
                if dropped > 0 {
                    self.obs
                        .metrics
                        .counter("diet_ma_catalog_dropped_total")
                        .add(dropped as u64);
                }
            }
        }
        removed
    }

    /// Labels deregistered so far, in removal order.
    pub fn deregistered(&self) -> Vec<String> {
        self.deregistered.lock().clone()
    }

    /// A client (or transport) reports that a call to this SeD failed at
    /// the middleware level (timeout, connection loss — not an application
    /// error). A dead SeD is deregistered immediately; one that still
    /// answers liveness probes is deregistered after [`FAILURE_STRIKES`]
    /// consecutive reports. Returns true when the SeD was deregistered.
    pub fn report_failure(&self, sed: &SedHandle) -> bool {
        let label = &sed.config.label;
        self.obs
            .metrics
            .counter("diet_ma_failure_reports_total")
            .inc();
        if !sed.is_alive() {
            return self.deregister(label);
        }
        let strikes = {
            let mut s = self.strikes.lock();
            let n = s.entry(label.clone()).or_insert(0);
            *n += 1;
            *n
        };
        if strikes >= FAILURE_STRIKES {
            self.strikes.lock().remove(label);
            self.deregister(label)
        } else {
            false
        }
    }
}

/// Agent-side SeD liveness: a background thread that pings every registered
/// SeD on a fixed interval and deregisters the ones that miss
/// `miss_threshold` consecutive heartbeats — so `collect` stops offering
/// them as candidates even if no client ever calls them again.
///
/// Wires the codec's `Ping`/`Pong` liveness messages into the agent: each
/// probe goes through the SeD's command queue exactly like a wire ping, so
/// a wedged worker fails the probe even though its process is technically
/// still there.
pub struct HeartbeatMonitor {
    stop: Sender<()>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatMonitor {
    pub fn spawn(
        ma: Arc<MasterAgent>,
        interval: Duration,
        ping_timeout: Duration,
        miss_threshold: u32,
    ) -> HeartbeatMonitor {
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let thread = std::thread::spawn(move || {
            let mut misses: HashMap<String, u32> = HashMap::new();
            let mut agent_misses: HashMap<String, u32> = HashMap::new();
            let metrics = ma.obs();
            let m_beats = metrics.metrics.counter("diet_heartbeat_beats_total");
            let m_missed = metrics.metrics.counter("diet_heartbeat_misses_total");
            let m_evicted = metrics.metrics.counter("diet_heartbeat_evictions_total");
            let m_agent_evicted = metrics
                .metrics
                .counter("diet_heartbeat_agent_evictions_total");
            let m_agent_restored = metrics
                .metrics
                .counter("diet_heartbeat_agent_restorations_total");
            // Runs until a stop is requested or the monitor is dropped.
            while let Err(RecvTimeoutError::Timeout) = stop_rx.recv_timeout(interval) {
                for sed in ma.all_seds() {
                    let label = sed.config.label.clone();
                    m_beats.inc();
                    // A worker deep in a long solve can't answer the queued
                    // ping in time, but it is busy, not dead — only a probe
                    // failure on an idle (or exited) worker counts as a miss.
                    if sed.ping(ping_timeout) || (sed.is_alive() && sed.is_busy()) {
                        misses.remove(&label);
                    } else {
                        m_missed.inc();
                        let n = misses.entry(label.clone()).or_insert(0);
                        *n += 1;
                        if *n >= miss_threshold {
                            if ma.deregister(&label) {
                                m_evicted.inc();
                            }
                            misses.remove(&label);
                        }
                    }
                }
                // Remote agent sweep: an interior agent that misses its
                // heartbeats takes its whole subtree's SeDs out of routing
                // (the slot is marked unavailable); a probe answered later
                // puts them straight back — agents are marked, not removed,
                // because the far process may just have restarted.
                for slot in ma.remote_slots() {
                    let name = slot.name();
                    m_beats.inc();
                    if slot.remote().ping(ping_timeout) {
                        if !slot.is_available() {
                            slot.set_available(true);
                            m_agent_restored.inc();
                        }
                        agent_misses.remove(&name);
                    } else {
                        m_missed.inc();
                        let n = agent_misses.entry(name.clone()).or_insert(0);
                        *n += 1;
                        if *n >= miss_threshold {
                            if slot.is_available() {
                                slot.set_available(false);
                                m_agent_evicted.inc();
                            }
                            agent_misses.remove(&name);
                        }
                    }
                }
            }
        });
        HeartbeatMonitor {
            stop: stop_tx,
            thread: Some(thread),
        }
    }

    /// Stop the monitor and wait for its thread to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let _ = self.stop.try_send(());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HeartbeatMonitor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{DietValue, Persistence};
    use crate::profile::{ArgTag, Profile, ProfileDesc};
    use crate::sched::{MinQueue, RoundRobin};
    use crate::sed::{SedConfig, ServiceTable, SolveFn};

    fn echo_table() -> ServiceTable {
        let mut d = ProfileDesc::alloc("echo", 0, 0, 1);
        d.set_arg(0, ArgTag::Scalar).unwrap();
        let solve: SolveFn = Arc::new(|p: &mut Profile| {
            let x = p.get_i32(0)?;
            p.set(1, DietValue::ScalarI32(x), Persistence::Volatile)?;
            Ok(0)
        });
        let mut t = ServiceTable::init(4);
        t.add(d, solve).unwrap();
        t
    }

    fn hierarchy(n_seds_per_la: &[usize]) -> (Arc<MasterAgent>, Vec<Arc<SedHandle>>) {
        let mut all = Vec::new();
        let mut las = Vec::new();
        for (li, &n) in n_seds_per_la.iter().enumerate() {
            let mut seds = Vec::new();
            for s in 0..n {
                let sed =
                    SedHandle::spawn(SedConfig::new(&format!("la{li}/sed{s}"), 1.0), echo_table());
                all.push(sed.clone());
                seds.push(sed);
            }
            las.push(AgentNode::leaf(&format!("LA{li}"), seds));
        }
        let ma = MasterAgent::new("MA", las, Arc::new(RoundRobin::new()));
        (ma, all)
    }

    #[test]
    fn submit_traverses_whole_hierarchy() {
        let (ma, seds) = hierarchy(&[2, 3, 1]);
        assert_eq!(ma.sed_count(), 6);
        assert_eq!(ma.solver_count("echo"), 6);
        let chosen = ma.submit("echo").unwrap();
        assert!(seds.iter().any(|s| s.config.label == chosen.config.label));
        let recs = ma.submit_records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].candidates, 6);
        assert!(recs[0].finding_time >= 0.0);
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn round_robin_spreads_requests() {
        let (ma, seds) = hierarchy(&[2, 2]);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..8 {
            let c = ma.submit("echo").unwrap();
            *counts.entry(c.config.label.clone()).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 4);
        assert!(counts.values().all(|&v| v == 2));
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn saturated_seds_are_skipped_while_alternatives_exist() {
        // sed "full" reports an admission limit of 0 → saturated from the
        // first estimate; sed "open" is unbounded. The MA must never pick
        // the saturated one while the open one is a candidate.
        let full = SedHandle::spawn(
            SedConfig::new("full", 1.0).with_admission_limit(0),
            echo_table(),
        );
        let open = SedHandle::spawn(SedConfig::new("open", 1.0), echo_table());
        let la = AgentNode::leaf("LA", vec![full.clone(), open.clone()]);
        let ma = MasterAgent::new("MA", vec![la], Arc::new(MinQueue));
        for _ in 0..4 {
            let chosen = ma.submit("echo").unwrap();
            assert_eq!(chosen.config.label, "open");
        }
        assert_eq!(
            ma.metrics()
                .counter_value("diet_ma_saturated_skipped_total"),
            4
        );
        // Every remaining candidate saturated: still schedulable (the SeD
        // will answer Busy and the client backs off), not NoServerAvailable.
        let only_full = SedHandle::spawn(
            SedConfig::new("full2", 1.0).with_admission_limit(0),
            echo_table(),
        );
        let la2 = AgentNode::leaf("LA", vec![only_full.clone()]);
        let ma2 = MasterAgent::new("MA", vec![la2], Arc::new(MinQueue));
        assert_eq!(ma2.submit("echo").unwrap().config.label, "full2");
        full.shutdown();
        open.shutdown();
        only_full.shutdown();
    }

    #[test]
    fn unknown_service_is_not_found() {
        let (ma, seds) = hierarchy(&[1]);
        assert!(matches!(
            ma.submit("nosuch"),
            Err(DietError::ServiceNotFound(_))
        ));
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn nested_agents_are_traversed() {
        let sed_a = SedHandle::spawn(SedConfig::new("deep/a", 1.0), echo_table());
        let sed_b = SedHandle::spawn(SedConfig::new("deep/b", 1.0), echo_table());
        let leaf_a = AgentNode::leaf("leafA", vec![sed_a.clone()]);
        let leaf_b = AgentNode::leaf("leafB", vec![sed_b.clone()]);
        let mid = AgentNode::interior("mid", vec![leaf_a, leaf_b]);
        let ma = MasterAgent::new("MA", vec![mid], Arc::new(RoundRobin::new()));
        assert_eq!(ma.sed_count(), 2);
        let c1 = ma.submit("echo").unwrap().config.label.clone();
        let c2 = ma.submit("echo").unwrap().config.label.clone();
        assert_ne!(c1, c2);
        sed_a.shutdown();
        sed_b.shutdown();
    }

    #[test]
    fn min_queue_prefers_idle_sed() {
        let busy = SedHandle::spawn(SedConfig::new("busy", 1.0), {
            let mut d = ProfileDesc::alloc("echo", 0, 0, 1);
            d.set_arg(0, ArgTag::Scalar).unwrap();
            let solve: SolveFn = Arc::new(|p: &mut Profile| {
                std::thread::sleep(std::time::Duration::from_millis(80));
                let x = p.get_i32(0)?;
                p.set(1, DietValue::ScalarI32(x), Persistence::Volatile)?;
                Ok(0)
            });
            let mut t = ServiceTable::init(1);
            t.add(d, solve).unwrap();
            t
        });
        let idle = SedHandle::spawn(SedConfig::new("idle", 1.0), echo_table());
        let la = AgentNode::leaf("LA", vec![busy.clone(), idle.clone()]);
        let ma = MasterAgent::new("MA", vec![la], Arc::new(MinQueue));

        // Fill busy's queue.
        let d = ProfileDesc::alloc("echo", 0, 0, 1);
        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::ScalarI32(1), Persistence::Volatile)
            .unwrap();
        let _pending = busy.submit(p).unwrap();

        let chosen = ma.submit("echo").unwrap();
        assert_eq!(chosen.config.label, "idle");
        busy.shutdown();
        idle.shutdown();
    }

    #[test]
    fn submit_excluding_skips_failed_servers() {
        let (ma, seds) = hierarchy(&[2]);
        let excluded = vec!["la0/sed0".to_string()];
        for _ in 0..4 {
            let c = ma.submit_excluding("echo", &excluded).unwrap();
            assert_eq!(c.config.label, "la0/sed1");
        }
        // Excluding everything looks like "declared but unreachable".
        let all = vec!["la0/sed0".to_string(), "la0/sed1".to_string()];
        assert!(matches!(
            ma.submit_excluding("echo", &all),
            Err(DietError::NoServerAvailable(_))
        ));
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn deregister_removes_sed_from_candidates() {
        let (ma, seds) = hierarchy(&[1, 1]);
        assert_eq!(ma.sed_count(), 2);
        assert!(ma.deregister("la1/sed0"));
        assert!(!ma.deregister("la1/sed0"), "already removed");
        assert_eq!(ma.sed_count(), 1);
        assert_eq!(ma.deregistered(), vec!["la1/sed0".to_string()]);
        for _ in 0..3 {
            assert_eq!(ma.submit("echo").unwrap().config.label, "la0/sed0");
        }
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn report_failure_deregisters_dead_sed_immediately() {
        let (ma, seds) = hierarchy(&[2]);
        let victim = seds[0].clone();
        victim.shutdown();
        while victim.is_alive() {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(ma.report_failure(&victim));
        assert_eq!(ma.deregistered(), vec![victim.config.label.clone()]);
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn report_failure_needs_strikes_for_live_sed() {
        let (ma, seds) = hierarchy(&[2]);
        let suspect = seds[0].clone();
        // Alive but repeatedly failing calls: two strikes keep it, the
        // third removes it.
        assert!(!ma.report_failure(&suspect));
        assert!(!ma.report_failure(&suspect));
        assert!(ma.report_failure(&suspect));
        assert_eq!(ma.sed_count(), 1);
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn heartbeat_monitor_deregisters_dead_sed() {
        let (ma, seds) = hierarchy(&[2]);
        let monitor = HeartbeatMonitor::spawn(
            ma.clone(),
            std::time::Duration::from_millis(10),
            std::time::Duration::from_millis(100),
            2,
        );
        // Kill one SeD abruptly (no orderly drain).
        seds[1].faults().kill_at_request(1);
        let d = ProfileDesc::alloc("echo", 0, 0, 1);
        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::ScalarI32(1), Persistence::Volatile)
            .unwrap();
        let _ = seds[1].submit(p);
        // The monitor notices within a few beats.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while ma.sed_count() == 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(ma.sed_count(), 1);
        assert_eq!(ma.deregistered(), vec![seds[1].config.label.clone()]);
        monitor.stop();
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn heartbeat_monitor_spares_a_busy_sed() {
        // A worker deep in a long solve can't answer queued pings, but it
        // is busy, not dead — the monitor must not evict it mid-solve.
        let mut table = ServiceTable::init(1);
        let d = ProfileDesc::alloc("slow", 0, 0, 1);
        let solve: crate::sed::SolveFn = Arc::new(|_p| {
            std::thread::sleep(std::time::Duration::from_millis(400));
            Ok(0)
        });
        table.add(d.clone(), solve).unwrap();
        let sed = SedHandle::spawn(SedConfig::new("busy/0", 1.0), table);
        let la = AgentNode::leaf("LA", vec![sed.clone()]);
        let ma = MasterAgent::new("MA", vec![la], Arc::new(RoundRobin::new()));
        let monitor = HeartbeatMonitor::spawn(
            ma.clone(),
            std::time::Duration::from_millis(10),
            std::time::Duration::from_millis(20),
            2,
        );
        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::ScalarI32(0), Persistence::Volatile)
            .unwrap();
        let rx = sed.submit(p).unwrap();
        // Many monitor sweeps elapse during the solve; the SeD survives.
        let out = rx.recv().unwrap();
        assert!(out.result.is_ok());
        assert_eq!(ma.sed_count(), 1);
        assert!(ma.deregistered().is_empty());
        monitor.stop();
        sed.shutdown();
    }

    #[test]
    fn data_aware_submit_prefers_the_replica_holder() {
        use crate::dagda::ReplicaCatalog;
        use crate::sched::DataLocal;
        let (ma, seds) = hierarchy(&[2]);
        let ma = ma.with_scheduler(Arc::new(DataLocal::default()));
        let cat = Arc::new(ReplicaCatalog::new());
        ma.register_catalog(cat.clone());
        // sed1 holds a 100 MB input; both SeDs are otherwise identical.
        seds[1].store_data(
            "ic",
            DietValue::vec_f64(vec![0.0; 4]),
            Persistence::Persistent,
        );
        // Catalog says the payload is large even though the test value is
        // small — locality is judged from catalog metadata.
        cat.publish(
            "ic",
            "la0/sed1",
            100 << 20,
            crate::dagda::checksum(&DietValue::vec_f64(vec![0.0; 4])),
        );
        let ids = vec!["ic".to_string()];
        for _ in 0..5 {
            let chosen = ma.submit_with_data("echo", &ids, &[]).unwrap();
            assert_eq!(chosen.config.label, "la0/sed1");
        }
        // Without data ids the policy degrades to expected finish and the
        // label tie-break picks sed0.
        assert_eq!(ma.submit("echo").unwrap().config.label, "la0/sed0");
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn deregister_drops_the_dead_seds_replicas() {
        use crate::dagda::ReplicaCatalog;
        let (ma, seds) = hierarchy(&[2]);
        let cat = Arc::new(ReplicaCatalog::new());
        ma.register_catalog(cat.clone());
        seds[0].store_data("a", DietValue::ScalarI32(1), Persistence::Persistent);
        seds[1].store_data("a", DietValue::ScalarI32(1), Persistence::Persistent);
        seds[1].store_data("b", DietValue::ScalarI32(2), Persistence::Sticky);
        assert_eq!(cat.holders("a").len(), 2);
        assert!(ma.deregister(&seds[1].config.label));
        assert_eq!(cat.holders("a"), vec!["la0/sed0"]);
        assert!(cat.locate("b").is_none());
        assert_eq!(
            ma.metrics().counter_value("diet_ma_catalog_dropped_total"),
            2
        );
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn duplicate_registration_is_fully_removed() {
        // The same label accidentally attached at two nodes (double
        // registration): deregistration must purge *both* handles, not just
        // the first match, or the scheduler can still pick the stale one.
        let sed = SedHandle::spawn(SedConfig::new("dup/0", 1.0), echo_table());
        let twin = SedHandle::spawn(SedConfig::new("dup/0", 1.0), echo_table());
        let la0 = AgentNode::leaf("LA0", vec![sed.clone()]);
        let la1 = AgentNode::leaf("LA1", vec![twin.clone()]);
        let ma = MasterAgent::new("MA", vec![la0.clone(), la1], Arc::new(RoundRobin::new()));
        assert_eq!(ma.sed_count(), 2);
        assert!(ma.deregister("dup/0"));
        assert_eq!(ma.sed_count(), 0, "every registration of the label gone");
        assert!(matches!(
            ma.submit("echo"),
            Err(DietError::ServiceNotFound(_))
        ));
        // The node-level API reports the count directly.
        let a = AgentNode::leaf("A", vec![sed.clone()]);
        let b = AgentNode::leaf("B", vec![sed.clone(), twin.clone()]);
        let root = AgentNode::interior("root", vec![a, b]);
        assert_eq!(root.remove_sed("dup/0"), 3);
        assert_eq!(root.remove_sed("dup/0"), 0);
        sed.shutdown();
        twin.shutdown();
    }

    #[test]
    fn stalled_subtree_is_skipped_not_fatal() {
        // One LA wedges during estimate collection (the FaultPlan stall
        // hook); with a collect timeout armed the submit must treat that
        // subtree as empty and schedule from the healthy one.
        let (ma, seds) = hierarchy(&[1, 1]);
        let stalled_la = &ma.children[0];
        let plan = FaultPlan::new();
        plan.set_stall(Duration::from_secs(2));
        stalled_la.set_faults(plan);
        ma.set_collect_timeout(Duration::from_millis(100));
        let t0 = Instant::now();
        for _ in 0..2 {
            let chosen = ma.submit("echo").unwrap();
            assert_eq!(chosen.config.label, "la1/sed0");
        }
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "submits must not wait out the stall"
        );
        assert!(ma.metrics().counter_value("diet_ma_subtree_timeouts_total") >= 2);
        for s in seds {
            s.shutdown();
        }
    }

    struct FakeRemote {
        name: String,
        label: String,
        fail: AtomicBool,
    }

    impl RemoteSubtree for FakeRemote {
        fn name(&self) -> String {
            self.name.clone()
        }
        fn collect(
            &self,
            service: &str,
            exclude: &[String],
            _ctx: TraceCtx,
        ) -> Result<Vec<Estimate>, DietError> {
            if self.fail.load(Ordering::Relaxed) {
                return Err(DietError::Transport("remote agent unreachable".into()));
            }
            if service != "echo" || exclude.contains(&self.label) {
                return Ok(vec![]);
            }
            Ok(vec![Estimate {
                server: self.label.clone(),
                speed_factor: 10.0,
                ..Estimate::default()
            }])
        }
        fn ping(&self, _timeout: Duration) -> bool {
            !self.fail.load(Ordering::Relaxed)
        }
    }

    #[test]
    fn remote_subtree_estimates_join_local_candidates() {
        use crate::sched::WeightedSpeed;
        let (ma, seds) = hierarchy(&[1]);
        let ma = ma.with_scheduler(Arc::new(WeightedSpeed));
        let remote = Arc::new(FakeRemote {
            name: "LA-remote".into(),
            label: "remote/sed0".into(),
            fail: AtomicBool::new(false),
        });
        let slot = ma.children[0].add_remote(remote.clone());
        // The remote SeD is 10x faster: the scheduler picks it, and the
        // label-only resolve path hands its name back.
        let label = ma
            .resolve("echo", &[], &[], TraceCtx::default())
            .expect("resolve");
        assert_eq!(label, "remote/sed0");
        // The handle-returning path cannot hand out a remote SeD.
        assert!(matches!(ma.submit("echo"), Err(DietError::Rejected(_))));
        // Excluding the remote label falls back to the local SeD.
        let label = ma
            .resolve(
                "echo",
                &[],
                &["remote/sed0".to_string()],
                TraceCtx::default(),
            )
            .unwrap();
        assert_eq!(label, "la0/sed0");
        // An unreachable remote subtree is skipped, never fatal.
        remote.fail.store(true, Ordering::Relaxed);
        let label = ma.resolve("echo", &[], &[], TraceCtx::default()).unwrap();
        assert_eq!(label, "la0/sed0");
        remote.fail.store(false, Ordering::Relaxed);
        // An unavailable slot (heartbeat evicted) is out of routing even
        // though the far process would answer.
        slot.set_available(false);
        let label = ma.resolve("echo", &[], &[], TraceCtx::default()).unwrap();
        assert_eq!(label, "la0/sed0");
        slot.set_available(true);
        assert_eq!(
            ma.resolve("echo", &[], &[], TraceCtx::default()).unwrap(),
            "remote/sed0"
        );
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn heartbeat_monitor_marks_and_restores_remote_agents() {
        let (ma, seds) = hierarchy(&[1]);
        let remote = Arc::new(FakeRemote {
            name: "LA-remote".into(),
            label: "remote/sed0".into(),
            fail: AtomicBool::new(false),
        });
        let slot = ma.children[0].add_remote(remote.clone());
        let monitor = HeartbeatMonitor::spawn(
            ma.clone(),
            Duration::from_millis(10),
            Duration::from_millis(50),
            2,
        );
        // Healthy: stays available.
        std::thread::sleep(Duration::from_millis(50));
        assert!(slot.is_available());
        // Goes quiet: evicted after the miss threshold.
        remote.fail.store(true, Ordering::Relaxed);
        let deadline = Instant::now() + Duration::from_secs(5);
        while slot.is_available() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(!slot.is_available(), "agent eviction never happened");
        // Comes back: restored on the next successful probe.
        remote.fail.store(false, Ordering::Relaxed);
        let deadline = Instant::now() + Duration::from_secs(5);
        while !slot.is_available() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(slot.is_available(), "agent restoration never happened");
        let mm = ma.metrics();
        assert!(mm.counter_value("diet_heartbeat_agent_evictions_total") >= 1);
        assert!(mm.counter_value("diet_heartbeat_agent_restorations_total") >= 1);
        monitor.stop();
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn records_accumulate_with_ids() {
        let (ma, seds) = hierarchy(&[1, 1]);
        for _ in 0..5 {
            ma.submit("echo").unwrap();
        }
        let recs = ma.submit_records();
        assert_eq!(recs.len(), 5);
        let ids: Vec<u64> = recs.iter().map(|r| r.request_id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        for s in seds {
            s.shutdown();
        }
    }
}
