//! Durable campaign jobserver: a crash-recoverable task queue in front of
//! the MA hierarchy.
//!
//! The paper's zoom campaigns are long: part 1 plus one part-2 run per
//! detected halo, times hundreds of parameter points. The in-memory
//! campaign driver loses everything when the submitting process dies, so
//! this module adds the batch-queue layer every production middleware
//! grows: a standalone process ([`JobServer`], served by
//! [`serve_jobserver_over_tcp`] or the `diet_jobserver` binary) that
//! accepts campaign submissions over the wire, owns the per-task state
//! machine (`Pending → Dispatched → Done | Failed{attempt}`), and drives
//! execution through the existing machinery — finding via the MA
//! hierarchy's `Submit`, solving via the [`TcpSedPool`], DAG payloads via
//! the MA's workflow engine.
//!
//! # Durability
//!
//! Every state transition is appended to a write-ahead log before it is
//! applied: CRC-framed records (`[u32 len][u32 crc32][payload]`, payload
//! led by a monotone LSN) in `wal.log` under the server's data directory.
//! Periodically the whole store is compacted into `snapshot.bin`
//! (written to a temp file, fsynced, atomically renamed) and the log is
//! truncated; the snapshot remembers the last LSN it absorbed so a crash
//! between rename and truncate replays no record twice. On startup the
//! server loads the snapshot, replays the log tail — tolerating a torn
//! final record, which is truncated away — and re-queues any task that
//! was `Dispatched` when the process died. `Done` work is never
//! recomputed.
//!
//! The log is flushed (not fsynced) per record: the tested failure mode
//! is process death (`kill -9`), which the OS page cache survives.
//! Power-loss durability would want an `fsync` knob; the experiment in
//! `exp_jobserver` kills the process, not the host.
//!
//! # Clients
//!
//! Any number of [`JobClient`]s attach to a campaign by name
//! ([`Message::AttachCampaign`]) and poll a resumable event cursor
//! ([`Message::CampaignProgress`]); submission is idempotent by campaign
//! name, so a client that dies mid-submit can simply resubmit and be
//! handed the existing campaign.

use crate::client::RetryPolicy;
use crate::codec::{self, Message};
use crate::dag::WorkflowSpec;
use crate::error::DietError;
use crate::hierarchy::RemoteAgentClient;
use crate::profile::Profile;
use crate::transport::{Duplex, MuxConn, ServerConfig, TcpSedPool, TcpServer, TcpTransport};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use obs::Obs;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

// ------------------------------------------------------------------- types

/// Lifecycle of one task in a campaign. Transitions are logged before
/// they are applied; the numeric values are the wire/WAL encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TaskState {
    /// Queued, waiting for a dispatcher (also the re-queued state after a
    /// failed attempt or a dead-SeD recovery).
    Pending = 0,
    /// Handed to the hierarchy: a dispatcher resolved a SeD and is
    /// waiting on the solve.
    Dispatched = 1,
    /// Solve succeeded; the task will never run again.
    Done = 2,
    /// Terminally failed (attempt budget exhausted or a non-retryable
    /// rejection).
    Failed = 3,
}

impl TaskState {
    pub fn from_u8(v: u8) -> Option<TaskState> {
        match v {
            0 => Some(TaskState::Pending),
            1 => Some(TaskState::Dispatched),
            2 => Some(TaskState::Done),
            3 => Some(TaskState::Failed),
            _ => None,
        }
    }
}

/// What a task executes: a single GridRPC call resolved through the MA,
/// or a whole workflow DAG admitted into the MA's engine (the multi-stage
/// task shape — part-1-then-fan-out as one queue entry).
#[derive(Debug, Clone, PartialEq)]
pub enum TaskPayload {
    Call(Profile),
    Dag(WorkflowSpec),
}

impl TaskPayload {
    /// Service name shown in status rows ("dag:<name>" for workflows).
    pub fn service(&self) -> String {
        match self {
            TaskPayload::Call(p) => p.service.clone(),
            TaskPayload::Dag(s) => format!("dag:{}", s.name),
        }
    }
}

/// One entry in a campaign's progress feed: a state transition with the
/// monotone per-campaign sequence number clients use as a poll cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskEventRec {
    pub seq: u64,
    pub task_id: u64,
    pub state: TaskState,
    /// Dispatch attempts so far (after this transition applied).
    pub attempt: u32,
    /// SeD label involved ("" when none — e.g. a failure before resolve).
    pub sed: String,
    /// Solve duration for `Done` (milliseconds); 0 otherwise.
    pub ms: u64,
}

/// Aggregate view of a campaign, returned by attach and every progress
/// poll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSummary {
    pub campaign_id: u64,
    pub name: String,
    pub total: u64,
    pub done: u64,
    pub failed: u64,
    /// Dispatches beyond each task's first — the live analogue of the
    /// simulator's resubmission count.
    pub resubmissions: u64,
    /// Every task reached a terminal state.
    pub finished: bool,
}

/// Point-in-time status of a single task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskStatusRec {
    pub task_id: u64,
    pub state: TaskState,
    pub attempts: u32,
    pub sed: String,
}

// ------------------------------------------------------------------- crc32

/// CRC-32 (IEEE, reflected, poly 0xEDB88320) — the framing checksum for
/// WAL records and the snapshot body. Table built on first use.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ----------------------------------------------------------------- job log

/// Append-only CRC-framed record log. Each record is
/// `[u32 len][u32 crc32(payload)][payload]`, little-endian. Reading stops
/// at the first short or corrupt record (a torn tail from a crash), and
/// [`JobLog::open`] truncates the file back to the last good boundary so
/// fresh appends never follow garbage.
pub struct JobLog {
    file: File,
    path: PathBuf,
    records: u64,
}

/// Records larger than this are rejected on append and treated as
/// corruption on read — a length-field bit flip must not allocate gigabytes.
pub const MAX_WAL_RECORD: usize = 64 << 20;

impl JobLog {
    /// Open (creating if absent) the log at `path`, scan it, truncate any
    /// torn tail, and position for appending. Returns the log plus the
    /// records that survived the scan.
    pub fn open(path: impl Into<PathBuf>) -> Result<(JobLog, Vec<Vec<u8>>), DietError> {
        let path = path.into();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => {
                return Err(DietError::Transport(format!(
                    "read {}: {e}",
                    path.display()
                )))
            }
        };
        let (records, good_len) = scan_records(&bytes);
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| DietError::Transport(format!("open {}: {e}", path.display())))?;
        file.set_len(good_len)
            .and_then(|_| file.seek(SeekFrom::End(0)))
            .map_err(|e| DietError::Transport(format!("truncate {}: {e}", path.display())))?;
        let n = records.len() as u64;
        Ok((
            JobLog {
                file,
                path,
                records: n,
            },
            records,
        ))
    }

    /// Append one record (length + CRC framing) and flush it to the OS.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), DietError> {
        if payload.len() > MAX_WAL_RECORD {
            return Err(DietError::Rejected(format!(
                "wal record of {} bytes exceeds the {} byte cap",
                payload.len(),
                MAX_WAL_RECORD
            )));
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .and_then(|_| self.file.flush())
            .map_err(|e| DietError::Transport(format!("wal append: {e}")))?;
        self.records += 1;
        Ok(())
    }

    /// Records appended (or recovered) through this handle's lifetime.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Truncate the log to empty — called right after a snapshot absorbed
    /// everything. A crash before this truncate is safe: replay skips
    /// records at or below the snapshot's LSN.
    pub fn reset(&mut self) -> Result<(), DietError> {
        self.file
            .set_len(0)
            .and_then(|_| self.file.seek(SeekFrom::Start(0)))
            .map_err(|e| DietError::Transport(format!("wal reset: {e}")))?;
        self.records = 0;
        Ok(())
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parse `[len][crc][payload]` frames out of `bytes`; stop at the first
/// short, oversized, or CRC-mismatching record. Returns the good records
/// and the byte offset just past the last one.
pub fn scan_records(bytes: &[u8]) -> (Vec<Vec<u8>>, u64) {
    let mut records = Vec::new();
    let mut off = 0usize;
    while bytes.len() - off >= 8 {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        if len > MAX_WAL_RECORD || bytes.len() - off - 8 < len {
            break;
        }
        let payload = &bytes[off + 8..off + 8 + len];
        if crc32(payload) != crc {
            break;
        }
        records.push(payload.to_vec());
        off += 8 + len;
    }
    (records, off as u64)
}

// -------------------------------------------------------------- wal records

/// One logged mutation. `Transition.attempts` is the absolute value after
/// the transition (not a delta), so replay is insensitive to how the
/// attempt was produced.
#[derive(Debug, Clone, PartialEq)]
enum WalRec {
    CampaignCreate {
        cid: u64,
        name: String,
    },
    TaskAdd {
        cid: u64,
        tid: u64,
        payload: TaskPayload,
    },
    Transition {
        cid: u64,
        tid: u64,
        state: TaskState,
        attempts: u32,
        sed: String,
        ms: u64,
        note: String,
    },
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, DietError> {
    if buf.remaining() < 4 {
        return Err(DietError::Codec("truncated wal string length".into()));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(DietError::Codec("truncated wal string body".into()));
    }
    let raw = buf.copy_to_bytes(n);
    String::from_utf8(raw.to_vec()).map_err(|e| DietError::Codec(format!("wal utf8: {e}")))
}

fn encode_wal_rec(lsn: u64, rec: &WalRec) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u64_le(lsn);
    match rec {
        WalRec::CampaignCreate { cid, name } => {
            buf.put_u8(1);
            buf.put_u64_le(*cid);
            put_str(&mut buf, name);
        }
        WalRec::TaskAdd { cid, tid, payload } => {
            buf.put_u8(2);
            buf.put_u64_le(*cid);
            buf.put_u64_le(*tid);
            codec::encode_task_payload(&mut buf, payload);
        }
        WalRec::Transition {
            cid,
            tid,
            state,
            attempts,
            sed,
            ms,
            note,
        } => {
            buf.put_u8(3);
            buf.put_u64_le(*cid);
            buf.put_u64_le(*tid);
            buf.put_u8(*state as u8);
            buf.put_u32_le(*attempts);
            put_str(&mut buf, sed);
            buf.put_u64_le(*ms);
            put_str(&mut buf, note);
        }
    }
    buf.to_vec()
}

fn decode_wal_rec(payload: &[u8]) -> Result<(u64, WalRec), DietError> {
    let mut buf = Bytes::copy_from_slice(payload);
    if buf.remaining() < 9 {
        return Err(DietError::Codec("short wal record".into()));
    }
    let lsn = buf.get_u64_le();
    let kind = buf.get_u8();
    let need_u64 = |buf: &mut Bytes| -> Result<u64, DietError> {
        if buf.remaining() < 8 {
            Err(DietError::Codec("truncated wal u64".into()))
        } else {
            Ok(buf.get_u64_le())
        }
    };
    let rec = match kind {
        1 => WalRec::CampaignCreate {
            cid: need_u64(&mut buf)?,
            name: get_str(&mut buf)?,
        },
        2 => WalRec::TaskAdd {
            cid: need_u64(&mut buf)?,
            tid: need_u64(&mut buf)?,
            payload: codec::decode_task_payload(&mut buf)?,
        },
        3 => {
            let cid = need_u64(&mut buf)?;
            let tid = need_u64(&mut buf)?;
            if buf.remaining() < 5 {
                return Err(DietError::Codec("truncated wal transition".into()));
            }
            let state = TaskState::from_u8(buf.get_u8())
                .ok_or_else(|| DietError::Codec("bad wal task state".into()))?;
            let attempts = buf.get_u32_le();
            let sed = get_str(&mut buf)?;
            let ms = need_u64(&mut buf)?;
            let note = get_str(&mut buf)?;
            WalRec::Transition {
                cid,
                tid,
                state,
                attempts,
                sed,
                ms,
                note,
            }
        }
        k => return Err(DietError::Codec(format!("unknown wal record kind {k}"))),
    };
    Ok((lsn, rec))
}

// --------------------------------------------------------------- job store

/// Tuning for the durable store.
#[derive(Debug, Clone)]
pub struct JobStoreConfig {
    /// Compact the log into a snapshot after this many appended records.
    pub snapshot_every: u64,
    /// Progress events kept in memory per campaign; older entries fall off
    /// the feed (the summary stays exact — events are a bounded stream,
    /// not the source of truth).
    pub events_cap: usize,
}

impl Default for JobStoreConfig {
    fn default() -> Self {
        JobStoreConfig {
            snapshot_every: 4096,
            events_cap: 1 << 17,
        }
    }
}

struct TaskRec {
    payload: TaskPayload,
    state: TaskState,
    attempts: u32,
    /// Requeue generation — bumped on every return to `Pending`, checked
    /// by every mutation so a dispatcher holding a stale claim (its task
    /// was requeued by the heartbeat while it was still running) cannot
    /// corrupt the newer attempt. Live-only; rebuilt as 0 on recovery.
    epoch: u32,
    sed: String,
}

struct Campaign {
    id: u64,
    name: String,
    tasks: Vec<TaskRec>,
    events: VecDeque<TaskEventRec>,
    next_seq: u64,
    resubmissions: u64,
    done: u64,
    failed: u64,
}

impl Campaign {
    fn summary(&self) -> CampaignSummary {
        let total = self.tasks.len() as u64;
        CampaignSummary {
            campaign_id: self.id,
            name: self.name.clone(),
            total,
            done: self.done,
            failed: self.failed,
            resubmissions: self.resubmissions,
            finished: total > 0 && self.done + self.failed == total,
        }
    }
}

struct StoreInner {
    campaigns: Vec<Campaign>,
    by_name: HashMap<String, u64>,
    wal: JobLog,
    next_lsn: u64,
    since_snapshot: u64,
}

/// A popped queue entry: the dispatcher's claim on one task attempt.
#[derive(Debug, Clone)]
pub struct PoppedTask {
    pub campaign_id: u64,
    pub task_id: u64,
    /// Claim token — every subsequent [`JobStore`] mutation for this task
    /// must present it, and is dropped as stale if the task was requeued
    /// meanwhile.
    pub epoch: u32,
    pub payload: TaskPayload,
}

/// What [`JobStore::fail`] did with the attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailOutcome {
    /// The claim was stale (task already requeued/finished) — dropped.
    Stale,
    /// Logged the failure and put the task back on the queue.
    Requeued,
    /// Attempt budget exhausted (or non-retryable): terminally failed.
    Terminal,
}

/// The durable campaign store: WAL + snapshot + in-memory state + the
/// pending-task queue dispatchers block on.
pub struct JobStore {
    dir: PathBuf,
    cfg: JobStoreConfig,
    inner: Mutex<StoreInner>,
    // The queue pair uses std sync types: the vendored parking_lot has no
    // Condvar, and the store lock (parking_lot) never nests inside it.
    queue: StdMutex<VecDeque<(u64, u64, u32)>>,
    queue_cv: StdCondvar,
    obs: Arc<Obs>,
    /// Tasks whose `Dispatched` state was recovered (re-queued) at open.
    recovered_inflight: u64,
    /// Tasks recovered already `Done` at open — never recomputed.
    recovered_done: u64,
}

const WAL_FILE: &str = "wal.log";
const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_MAGIC: u32 = 0x4453_4A31; // "1JSD" LE = "DJS1" on disk

impl JobStore {
    /// Open the store under `dir` (created if missing): load the
    /// snapshot, replay the WAL tail, truncate any torn record, and
    /// re-queue recovered work.
    pub fn open(
        dir: impl Into<PathBuf>,
        cfg: JobStoreConfig,
        obs: Arc<Obs>,
    ) -> Result<Arc<JobStore>, DietError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| DietError::Transport(format!("create {}: {e}", dir.display())))?;

        let mut campaigns: Vec<Campaign> = Vec::new();
        let mut by_name = HashMap::new();
        let mut last_lsn = 0u64;
        if let Some((snap_lsn, snap_campaigns)) = load_snapshot(&dir.join(SNAPSHOT_FILE), &cfg)? {
            last_lsn = snap_lsn;
            campaigns = snap_campaigns;
            for c in &campaigns {
                by_name.insert(c.name.clone(), c.id);
            }
        }

        let (wal, records) = JobLog::open(dir.join(WAL_FILE))?;
        let mut inner = StoreInner {
            campaigns,
            by_name,
            wal,
            next_lsn: last_lsn + 1,
            since_snapshot: 0,
        };
        let mut replayed = 0u64;
        for raw in &records {
            // A record that frames correctly but decodes badly is treated
            // like a torn tail: stop replaying, keep the prefix.
            let Ok((lsn, rec)) = decode_wal_rec(raw) else {
                break;
            };
            if lsn < inner.next_lsn {
                continue; // absorbed by the snapshot before the crash
            }
            apply_rec(&mut inner, &rec, &cfg);
            inner.next_lsn = lsn + 1;
            replayed += 1;
        }
        inner.since_snapshot = replayed;

        let store = JobStore {
            dir,
            cfg,
            inner: Mutex::new(inner),
            queue: StdMutex::new(VecDeque::new()),
            queue_cv: StdCondvar::new(),
            obs,
            recovered_inflight: 0,
            recovered_done: 0,
        };
        let mut store = store;
        store.recover_queue()?;
        let store = Arc::new(store);
        store
            .obs
            .metrics
            .counter("diet_jobserver_wal_replayed_total")
            .add(replayed);
        store
            .obs
            .metrics
            .counter("diet_jobserver_recovered_inflight_total")
            .add(store.recovered_inflight);
        store
            .obs
            .metrics
            .counter("diet_jobserver_recovered_done_total")
            .add(store.recovered_done);
        Ok(store)
    }

    /// Re-queue every `Pending` task and demote every `Dispatched` one
    /// (its dispatcher died with the process) back to `Pending`.
    fn recover_queue(&mut self) -> Result<(), DietError> {
        let mut inner = self.inner.lock();
        let mut queue = self.queue.lock().unwrap();
        let mut demote = Vec::new();
        for c in &inner.campaigns {
            for (tid, t) in c.tasks.iter().enumerate() {
                match t.state {
                    TaskState::Pending => queue.push_back((c.id, tid as u64, t.epoch)),
                    TaskState::Dispatched => {
                        demote.push((c.id, tid as u64));
                        self.recovered_inflight += 1;
                    }
                    TaskState::Done => self.recovered_done += 1,
                    TaskState::Failed => {}
                }
            }
        }
        for (cid, tid) in demote {
            let attempts = {
                let c = &inner.campaigns[(cid - 1) as usize];
                c.tasks[tid as usize].attempts
            };
            let rec = WalRec::Transition {
                cid,
                tid,
                state: TaskState::Pending,
                attempts,
                sed: String::new(),
                ms: 0,
                note: "recovered in-flight".into(),
            };
            log_and_apply(&mut inner, &rec, &self.cfg)?;
            let epoch = inner.campaigns[(cid - 1) as usize].tasks[tid as usize].epoch;
            queue.push_back((cid, tid, epoch));
        }
        Ok(())
    }

    pub fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }

    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }

    /// In-flight `Dispatched` tasks re-queued during the last open.
    pub fn recovered_inflight(&self) -> u64 {
        self.recovered_inflight
    }

    /// Tasks loaded already `Done` during the last open.
    pub fn recovered_done(&self) -> u64 {
        self.recovered_done
    }

    // ------------------------------------------------------------ clients

    /// Create (or idempotently re-attach to) the campaign called `name`.
    /// A name that already exists returns the existing campaign id and
    /// task ids without adding anything — the resubmit-after-client-crash
    /// path.
    pub fn submit(
        &self,
        name: &str,
        payloads: Vec<TaskPayload>,
    ) -> Result<(u64, Vec<u64>), DietError> {
        if name.is_empty() {
            return Err(DietError::Rejected(
                "campaign name must be non-empty".into(),
            ));
        }
        let mut inner = self.inner.lock();
        if let Some(&cid) = inner.by_name.get(name) {
            let n = inner.campaigns[(cid - 1) as usize].tasks.len() as u64;
            return Ok((cid, (0..n).collect()));
        }
        if payloads.is_empty() {
            return Err(DietError::Rejected("empty campaign".into()));
        }
        let cid = inner.campaigns.len() as u64 + 1;
        log_and_apply(
            &mut inner,
            &WalRec::CampaignCreate {
                cid,
                name: name.to_string(),
            },
            &self.cfg,
        )?;
        let mut ids = Vec::with_capacity(payloads.len());
        let mut fresh = Vec::with_capacity(payloads.len());
        for (tid, payload) in payloads.into_iter().enumerate() {
            let tid = tid as u64;
            log_and_apply(
                &mut inner,
                &WalRec::TaskAdd { cid, tid, payload },
                &self.cfg,
            )?;
            ids.push(tid);
            fresh.push((cid, tid, 0u32));
        }
        self.obs
            .metrics
            .counter("diet_jobserver_campaigns_total")
            .inc();
        self.obs
            .metrics
            .counter("diet_jobserver_tasks_total")
            .add(ids.len() as u64);
        drop(inner);
        let mut queue = self.queue.lock().unwrap();
        queue.extend(fresh);
        drop(queue);
        self.queue_cv.notify_all();
        Ok((cid, ids))
    }

    /// Summary for the campaign called `name`, if any.
    pub fn attach(&self, name: &str) -> Option<CampaignSummary> {
        let inner = self.inner.lock();
        let cid = *inner.by_name.get(name)?;
        Some(inner.campaigns[(cid - 1) as usize].summary())
    }

    pub fn summary(&self, cid: u64) -> Option<CampaignSummary> {
        let inner = self.inner.lock();
        Some(campaign(&inner, cid)?.summary())
    }

    pub fn campaigns(&self) -> Vec<CampaignSummary> {
        let inner = self.inner.lock();
        inner.campaigns.iter().map(|c| c.summary()).collect()
    }

    /// Events with `seq > cursor` (bounded per poll) plus the current
    /// summary. Unknown campaign ids are rejected.
    pub fn progress(
        &self,
        cid: u64,
        cursor: u64,
    ) -> Result<(CampaignSummary, Vec<TaskEventRec>), DietError> {
        const MAX_EVENTS_PER_POLL: usize = 4096;
        let inner = self.inner.lock();
        let c = campaign(&inner, cid)
            .ok_or_else(|| DietError::Rejected(format!("unknown campaign {cid}")))?;
        let events = c
            .events
            .iter()
            .filter(|e| e.seq > cursor)
            .take(MAX_EVENTS_PER_POLL)
            .cloned()
            .collect();
        Ok((c.summary(), events))
    }

    pub fn task_status(&self, cid: u64, tid: u64) -> Option<TaskStatusRec> {
        let inner = self.inner.lock();
        let t = campaign(&inner, cid)?.tasks.get(tid as usize)?;
        Some(TaskStatusRec {
            task_id: tid,
            state: t.state,
            attempts: t.attempts,
            sed: t.sed.clone(),
        })
    }

    // --------------------------------------------------------- dispatchers

    /// Block up to `wait` for a pending task; returns the claim (with its
    /// payload cloned out) or `None` on timeout. Entries whose epoch went
    /// stale while queued are skipped.
    pub fn next_task(&self, wait: Duration) -> Option<PoppedTask> {
        let deadline = Instant::now() + wait;
        let mut queue = self.queue.lock().unwrap();
        loop {
            while let Some((cid, tid, epoch)) = queue.pop_front() {
                // Validate under the store lock: the task must still be
                // Pending at this epoch (not re-queued again, not finished).
                let inner = self.inner.lock();
                if let Some(t) = campaign(&inner, cid).and_then(|c| c.tasks.get(tid as usize)) {
                    if t.state == TaskState::Pending && t.epoch == epoch {
                        return Some(PoppedTask {
                            campaign_id: cid,
                            task_id: tid,
                            epoch,
                            payload: t.payload.clone(),
                        });
                    }
                }
                drop(inner);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (q, res) = self.queue_cv.wait_timeout(queue, deadline - now).unwrap();
            queue = q;
            if res.timed_out() && queue.is_empty() {
                return None;
            }
        }
    }

    /// Log one dispatch attempt: the claim's task moves (or stays) in
    /// `Dispatched` aimed at `sed`, and `attempts` increments. `prior`
    /// is `None` for the first resolve of this claim (task must still be
    /// `Pending`) or `Some(attempts)` when re-resolving after a retryable
    /// call failure (task must still be `Dispatched` at that count).
    /// Returns the new attempt count, or `None` if the claim is stale.
    pub fn dispatched(
        &self,
        cid: u64,
        tid: u64,
        epoch: u32,
        prior: Option<u32>,
        sed: &str,
    ) -> Option<u32> {
        let mut inner = self.inner.lock();
        let t = campaign(&inner, cid)?.tasks.get(tid as usize)?;
        let valid = t.epoch == epoch
            && match prior {
                None => t.state == TaskState::Pending,
                Some(a) => t.state == TaskState::Dispatched && t.attempts == a,
            };
        if !valid {
            self.obs
                .metrics
                .counter("diet_jobserver_stale_outcomes_total")
                .inc();
            return None;
        }
        let attempts = t.attempts + 1;
        let rec = WalRec::Transition {
            cid,
            tid,
            state: TaskState::Dispatched,
            attempts,
            sed: sed.to_string(),
            ms: 0,
            note: String::new(),
        };
        if log_and_apply(&mut inner, &rec, &self.cfg).is_err() {
            return None;
        }
        self.obs
            .metrics
            .counter("diet_jobserver_dispatches_total")
            .inc();
        if attempts > 1 {
            self.obs
                .metrics
                .counter("diet_jobserver_resubmissions_total")
                .inc();
        }
        Some(attempts)
    }

    /// Record a successful solve for the claimed attempt. Returns `false`
    /// (and changes nothing) if the claim went stale.
    pub fn complete(
        &self,
        cid: u64,
        tid: u64,
        epoch: u32,
        attempt: u32,
        sed: &str,
        ms: u64,
    ) -> bool {
        let mut inner = self.inner.lock();
        let Some(t) = campaign(&inner, cid).and_then(|c| c.tasks.get(tid as usize)) else {
            return false;
        };
        if t.epoch != epoch || t.state != TaskState::Dispatched || t.attempts != attempt {
            self.obs
                .metrics
                .counter("diet_jobserver_stale_outcomes_total")
                .inc();
            return false;
        }
        let rec = WalRec::Transition {
            cid,
            tid,
            state: TaskState::Done,
            attempts: attempt,
            sed: sed.to_string(),
            ms,
            note: String::new(),
        };
        if log_and_apply(&mut inner, &rec, &self.cfg).is_err() {
            return false;
        }
        self.obs
            .metrics
            .counter("diet_jobserver_tasks_done_total")
            .inc();
        self.obs
            .metrics
            .histogram("diet_jobserver_task_ms")
            .observe(ms as f64);
        true
    }

    /// Record a failed attempt. Unless `force_terminal`, the task is
    /// re-queued while its attempt/requeue budget (`max_attempts`) lasts.
    pub fn fail(
        &self,
        cid: u64,
        tid: u64,
        epoch: u32,
        note: &str,
        max_attempts: u32,
        force_terminal: bool,
    ) -> FailOutcome {
        let mut inner = self.inner.lock();
        let Some(t) = campaign(&inner, cid).and_then(|c| c.tasks.get(tid as usize)) else {
            return FailOutcome::Stale;
        };
        let claim_ok =
            t.epoch == epoch && matches!(t.state, TaskState::Pending | TaskState::Dispatched);
        if !claim_ok {
            self.obs
                .metrics
                .counter("diet_jobserver_stale_outcomes_total")
                .inc();
            return FailOutcome::Stale;
        }
        let attempts = t.attempts;
        let sed = t.sed.clone();
        // The budget bounds both resolve attempts and requeue rounds, so a
        // task that can never even resolve (no server ever found) still
        // terminates.
        let terminal = force_terminal || attempts >= max_attempts || t.epoch + 1 >= max_attempts;
        let rec = WalRec::Transition {
            cid,
            tid,
            state: TaskState::Failed,
            attempts,
            sed,
            ms: 0,
            note: note.to_string(),
        };
        if log_and_apply(&mut inner, &rec, &self.cfg).is_err() {
            return FailOutcome::Stale;
        }
        if terminal {
            self.obs
                .metrics
                .counter("diet_jobserver_tasks_failed_total")
                .inc();
            return FailOutcome::Terminal;
        }
        let rec = WalRec::Transition {
            cid,
            tid,
            state: TaskState::Pending,
            attempts,
            sed: String::new(),
            ms: 0,
            note: "requeued".into(),
        };
        if log_and_apply(&mut inner, &rec, &self.cfg).is_err() {
            return FailOutcome::Stale;
        }
        let epoch = campaign(&inner, cid).unwrap().tasks[tid as usize].epoch;
        drop(inner);
        self.obs
            .metrics
            .counter("diet_jobserver_requeues_total")
            .inc();
        self.queue.lock().unwrap().push_back((cid, tid, epoch));
        self.queue_cv.notify_one();
        FailOutcome::Requeued
    }

    /// Return every task currently `Dispatched` at `label` to the queue —
    /// the heartbeat's dead-SeD recovery. Late outcomes from the dead
    /// dispatch are dropped by the epoch guard. Returns how many tasks
    /// moved.
    pub fn requeue_dead_sed(&self, label: &str) -> usize {
        let mut inner = self.inner.lock();
        let mut hits = Vec::new();
        for c in &inner.campaigns {
            for (tid, t) in c.tasks.iter().enumerate() {
                if t.state == TaskState::Dispatched && t.sed == label {
                    hits.push((c.id, tid as u64));
                }
            }
        }
        let mut moved = Vec::new();
        for (cid, tid) in &hits {
            let attempts = campaign(&inner, *cid).unwrap().tasks[*tid as usize].attempts;
            let rec = WalRec::Transition {
                cid: *cid,
                tid: *tid,
                state: TaskState::Pending,
                attempts,
                sed: String::new(),
                ms: 0,
                note: format!("sed {label} dead"),
            };
            if log_and_apply(&mut inner, &rec, &self.cfg).is_ok() {
                let epoch = campaign(&inner, *cid).unwrap().tasks[*tid as usize].epoch;
                moved.push((*cid, *tid, epoch));
            }
        }
        drop(inner);
        if !moved.is_empty() {
            self.obs
                .metrics
                .counter("diet_jobserver_requeues_total")
                .add(moved.len() as u64);
            let n = moved.len();
            let mut queue = self.queue.lock().unwrap();
            queue.extend(moved);
            drop(queue);
            self.queue_cv.notify_all();
            return n;
        }
        0
    }

    pub fn pending(&self) -> usize {
        self.queue.lock().unwrap().len()
    }

    // ----------------------------------------------------------- snapshot

    /// Compact to a snapshot if the WAL has grown past the configured
    /// threshold. Returns whether a snapshot was taken.
    pub fn maybe_snapshot(&self) -> Result<bool, DietError> {
        let due = {
            let inner = self.inner.lock();
            inner.since_snapshot >= self.cfg.snapshot_every
        };
        if due {
            self.snapshot_now()?;
        }
        Ok(due)
    }

    /// Write the full state to `snapshot.bin` (tmp + fsync + atomic
    /// rename) and truncate the WAL.
    pub fn snapshot_now(&self) -> Result<(), DietError> {
        let mut inner = self.inner.lock();
        let body = encode_snapshot(inner.next_lsn - 1, &inner.campaigns);
        let tmp = self.dir.join("snapshot.tmp");
        let path = self.snapshot_path();
        let mut f = File::create(&tmp)
            .map_err(|e| DietError::Transport(format!("create {}: {e}", tmp.display())))?;
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
        header.extend_from_slice(&(body.len() as u32).to_le_bytes());
        header.extend_from_slice(&crc32(&body).to_le_bytes());
        f.write_all(&header)
            .and_then(|_| f.write_all(&body))
            .and_then(|_| f.sync_data())
            .map_err(|e| DietError::Transport(format!("write snapshot: {e}")))?;
        drop(f);
        std::fs::rename(&tmp, &path)
            .map_err(|e| DietError::Transport(format!("rename snapshot: {e}")))?;
        inner.wal.reset()?;
        inner.since_snapshot = 0;
        self.obs
            .metrics
            .counter("diet_jobserver_snapshots_total")
            .inc();
        Ok(())
    }
}

fn campaign(inner: &StoreInner, cid: u64) -> Option<&Campaign> {
    if cid == 0 {
        return None;
    }
    inner.campaigns.get((cid - 1) as usize)
}

/// Append to the WAL, then mutate in-memory state — write-ahead order, so
/// a crash after the append replays to exactly the state we are about to
/// expose.
fn log_and_apply(
    inner: &mut StoreInner,
    rec: &WalRec,
    cfg: &JobStoreConfig,
) -> Result<(), DietError> {
    let lsn = inner.next_lsn;
    let payload = encode_wal_rec(lsn, rec);
    inner.wal.append(&payload)?;
    inner.next_lsn = lsn + 1;
    inner.since_snapshot += 1;
    apply_rec(inner, rec, cfg);
    Ok(())
}

/// Apply one record to in-memory state. Shared verbatim between the live
/// path and replay so recovery reconstructs exactly the live state.
fn apply_rec(inner: &mut StoreInner, rec: &WalRec, cfg: &JobStoreConfig) {
    match rec {
        WalRec::CampaignCreate { cid, name } => {
            // Ids are dense (index + 1); replay re-creates them in order.
            debug_assert_eq!(*cid, inner.campaigns.len() as u64 + 1);
            inner.campaigns.push(Campaign {
                id: *cid,
                name: name.clone(),
                tasks: Vec::new(),
                events: VecDeque::new(),
                next_seq: 1,
                resubmissions: 0,
                done: 0,
                failed: 0,
            });
            inner.by_name.insert(name.clone(), *cid);
        }
        WalRec::TaskAdd { cid, tid, payload } => {
            if let Some(c) = inner.campaigns.get_mut((*cid - 1) as usize) {
                debug_assert_eq!(*tid, c.tasks.len() as u64);
                c.tasks.push(TaskRec {
                    payload: payload.clone(),
                    state: TaskState::Pending,
                    attempts: 0,
                    epoch: 0,
                    sed: String::new(),
                });
            }
        }
        WalRec::Transition {
            cid,
            tid,
            state,
            attempts,
            sed,
            ms,
            ..
        } => {
            let Some(c) = inner.campaigns.get_mut((*cid - 1) as usize) else {
                return;
            };
            let Some(t) = c.tasks.get_mut(*tid as usize) else {
                return;
            };
            // Symmetric counter maintenance: a Failed that is later
            // requeued (Failed → Pending in the log) un-counts itself.
            match t.state {
                TaskState::Done => c.done -= 1,
                TaskState::Failed => c.failed -= 1,
                _ => {}
            }
            if *state == TaskState::Pending && t.state != TaskState::Pending {
                t.epoch += 1;
            }
            if *state == TaskState::Dispatched && *attempts > 1 {
                c.resubmissions += 1;
            }
            t.state = *state;
            t.attempts = *attempts;
            if !sed.is_empty() || *state == TaskState::Pending {
                t.sed = sed.clone();
            }
            match *state {
                TaskState::Done => c.done += 1,
                TaskState::Failed => c.failed += 1,
                _ => {}
            }
            let ev = TaskEventRec {
                seq: c.next_seq,
                task_id: *tid,
                state: *state,
                attempt: *attempts,
                sed: sed.clone(),
                ms: *ms,
            };
            c.next_seq += 1;
            c.events.push_back(ev);
            while c.events.len() > cfg.events_cap {
                c.events.pop_front();
            }
        }
    }
}

fn encode_snapshot(last_lsn: u64, campaigns: &[Campaign]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_u64_le(last_lsn);
    buf.put_u32_le(campaigns.len() as u32);
    for c in campaigns {
        buf.put_u64_le(c.id);
        put_str(&mut buf, &c.name);
        buf.put_u64_le(c.next_seq);
        buf.put_u64_le(c.resubmissions);
        buf.put_u64_le(c.tasks.len() as u64);
        for t in &c.tasks {
            buf.put_u8(t.state as u8);
            buf.put_u32_le(t.attempts);
            put_str(&mut buf, &t.sed);
            codec::encode_task_payload(&mut buf, &t.payload);
        }
    }
    buf.to_vec()
}

/// Load and CRC-check the snapshot; a missing, short, or corrupt file is
/// treated as "no snapshot" (the WAL alone still recovers everything
/// since the last successful compaction... which is exactly when a valid
/// snapshot would exist, so in practice corruption here means starting
/// from whatever the WAL holds).
fn load_snapshot(
    path: &Path,
    _cfg: &JobStoreConfig,
) -> Result<Option<(u64, Vec<Campaign>)>, DietError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(DietError::Transport(format!("read snapshot: {e}"))),
    };
    if bytes.len() < 12 {
        return Ok(None);
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if magic != SNAPSHOT_MAGIC || bytes.len() < 12 + len || crc32(&bytes[12..12 + len]) != crc {
        return Ok(None);
    }
    let mut buf = Bytes::copy_from_slice(&bytes[12..12 + len]);
    let mut parse = || -> Result<(u64, Vec<Campaign>), DietError> {
        if buf.remaining() < 12 {
            return Err(DietError::Codec("short snapshot body".into()));
        }
        let last_lsn = buf.get_u64_le();
        let n_campaigns = buf.get_u32_le() as usize;
        let mut campaigns = Vec::with_capacity(n_campaigns.min(1024));
        for _ in 0..n_campaigns {
            if buf.remaining() < 8 {
                return Err(DietError::Codec("truncated snapshot campaign".into()));
            }
            let id = buf.get_u64_le();
            let name = get_str(&mut buf)?;
            if buf.remaining() < 24 {
                return Err(DietError::Codec("truncated snapshot campaign tail".into()));
            }
            let next_seq = buf.get_u64_le();
            let resubmissions = buf.get_u64_le();
            let n_tasks = buf.get_u64_le() as usize;
            let mut tasks = Vec::with_capacity(n_tasks.min(1 << 20));
            let (mut done, mut failed) = (0u64, 0u64);
            for _ in 0..n_tasks {
                if buf.remaining() < 5 {
                    return Err(DietError::Codec("truncated snapshot task".into()));
                }
                let state = TaskState::from_u8(buf.get_u8())
                    .ok_or_else(|| DietError::Codec("bad snapshot task state".into()))?;
                let attempts = buf.get_u32_le();
                let sed = get_str(&mut buf)?;
                let payload = codec::decode_task_payload(&mut buf)?;
                match state {
                    TaskState::Done => done += 1,
                    TaskState::Failed => failed += 1,
                    _ => {}
                }
                tasks.push(TaskRec {
                    payload,
                    state,
                    attempts,
                    epoch: 0,
                    sed,
                });
            }
            campaigns.push(Campaign {
                id,
                name,
                tasks,
                events: VecDeque::new(),
                next_seq,
                resubmissions,
                done,
                failed,
            });
        }
        Ok((last_lsn, campaigns))
    };
    match parse() {
        Ok(v) => Ok(Some(v)),
        // Framing said the body was intact but it did not parse — treat
        // like a missing snapshot rather than refusing to start.
        Err(_) => Ok(None),
    }
}

// ------------------------------------------------------------ machine pool

struct MachineState {
    misses: u32,
    dead: bool,
}

/// Heartbeat-aware view of the SeD fleet the jobserver dispatches to.
/// Labels come from the [`TcpSedPool`]'s registrations plus anything a
/// dispatch resolves; the probe loop pings each one on a dedicated
/// connection (`Pong` carries no correlation id, so it cannot ride the
/// mux) and declares a machine dead after `miss_threshold` consecutive
/// silent probes.
pub struct MachinePool {
    pool: Arc<TcpSedPool>,
    states: Mutex<HashMap<String, MachineState>>,
    obs: Arc<Obs>,
}

impl MachinePool {
    pub fn new(pool: Arc<TcpSedPool>, obs: Arc<Obs>) -> Arc<MachinePool> {
        Arc::new(MachinePool {
            pool,
            states: Mutex::new(HashMap::new()),
            obs,
        })
    }

    /// Make sure `label` is tracked (called on every resolve).
    pub fn observe(&self, label: &str) {
        self.states
            .lock()
            .entry(label.to_string())
            .or_insert(MachineState {
                misses: 0,
                dead: false,
            });
    }

    /// Labels currently considered dead — excluded from resolution.
    pub fn dead_labels(&self) -> Vec<String> {
        self.states
            .lock()
            .iter()
            .filter(|(_, s)| s.dead)
            .map(|(l, _)| l.clone())
            .collect()
    }

    pub fn is_dead(&self, label: &str) -> bool {
        self.states.lock().get(label).is_some_and(|s| s.dead)
    }

    /// Probe every tracked label plus everything registered in the pool.
    /// Returns the labels that just crossed the death threshold.
    pub fn probe_all(&self, timeout: Duration, miss_threshold: u32) -> Vec<String> {
        let mut labels: Vec<String> = self.pool.labels();
        {
            let states = self.states.lock();
            for l in states.keys() {
                if !labels.contains(l) {
                    labels.push(l.clone());
                }
            }
        }
        let mut newly_dead = Vec::new();
        for label in labels {
            let alive = self
                .pool
                .endpoint(&label)
                .map(|addr| ping_addr(addr, timeout))
                .unwrap_or(false);
            let mut states = self.states.lock();
            let s = states.entry(label.clone()).or_insert(MachineState {
                misses: 0,
                dead: false,
            });
            if alive {
                if s.dead {
                    self.obs
                        .metrics
                        .counter("diet_jobserver_machines_revived_total")
                        .inc();
                }
                s.misses = 0;
                s.dead = false;
            } else {
                s.misses += 1;
                if !s.dead && s.misses >= miss_threshold {
                    s.dead = true;
                    self.obs
                        .metrics
                        .counter("diet_jobserver_machines_dead_total")
                        .inc();
                    newly_dead.push(label);
                }
            }
        }
        newly_dead
    }
}

fn ping_addr(addr: SocketAddr, timeout: Duration) -> bool {
    let Ok(conn) = TcpTransport::connect(addr) else {
        return false;
    };
    if conn.send(&Message::Ping).is_err() {
        return false;
    }
    matches!(conn.recv_timeout(timeout), Ok(Some(Message::Pong)))
}

// -------------------------------------------------------------- job server

/// Tuning for a [`JobServer`].
#[derive(Debug, Clone)]
pub struct JobServerConfig {
    /// Data directory for the WAL and snapshots.
    pub dir: PathBuf,
    /// Dispatcher threads draining the queue.
    pub workers: usize,
    /// Resolve/solve policy for one dispatch round (per-attempt deadline,
    /// in-round retries, backoff shape) — the `call_with_retry` knobs.
    pub retry: RetryPolicy,
    /// Task-level budget: total dispatch attempts (and requeue rounds)
    /// before a task fails terminally.
    pub max_task_attempts: u32,
    /// Store compaction threshold (WAL records between snapshots).
    pub snapshot_every: u64,
    /// Probe the SeD fleet this often (`None` disables the heartbeat).
    pub heartbeat: Option<Duration>,
    /// Per-probe reply deadline.
    pub heartbeat_timeout: Duration,
    /// Consecutive missed probes before a machine is declared dead.
    pub heartbeat_misses: u32,
    /// Poll interval for DAG task payloads.
    pub dag_poll: Duration,
    /// Give up on a DAG payload after this long.
    pub dag_timeout: Duration,
}

impl JobServerConfig {
    pub fn new(dir: impl Into<PathBuf>) -> JobServerConfig {
        JobServerConfig {
            dir: dir.into(),
            workers: 4,
            retry: RetryPolicy {
                attempt_timeout: Duration::from_secs(10),
                max_retries: 3,
                backoff_base: Duration::from_millis(20),
                backoff_cap: Duration::from_millis(500),
                jitter: 0.5,
            },
            max_task_attempts: 8,
            snapshot_every: 4096,
            heartbeat: Some(Duration::from_millis(500)),
            heartbeat_timeout: Duration::from_millis(250),
            heartbeat_misses: 2,
            dag_poll: Duration::from_millis(50),
            dag_timeout: Duration::from_secs(120),
        }
    }
}

/// The campaign jobserver: durable store + dispatcher pool + heartbeat,
/// executing through a remote MA (finding) and the SeD pool (solving).
pub struct JobServer {
    store: Arc<JobStore>,
    ma: Arc<RemoteAgentClient>,
    pool: Arc<TcpSedPool>,
    machines: Arc<MachinePool>,
    obs: Arc<Obs>,
    cfg: JobServerConfig,
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl JobServer {
    /// Open (recovering) the store under `cfg.dir` and start the
    /// dispatcher and heartbeat threads.
    pub fn spawn(
        cfg: JobServerConfig,
        ma: Arc<RemoteAgentClient>,
        pool: Arc<TcpSedPool>,
        obs: Arc<Obs>,
    ) -> Result<Arc<JobServer>, DietError> {
        let store = JobStore::open(
            &cfg.dir,
            JobStoreConfig {
                snapshot_every: cfg.snapshot_every,
                ..JobStoreConfig::default()
            },
            obs.clone(),
        )?;
        let machines = MachinePool::new(pool.clone(), obs.clone());
        let js = Arc::new(JobServer {
            store,
            ma,
            pool,
            machines,
            obs,
            cfg,
            stop: Arc::new(AtomicBool::new(false)),
            threads: Mutex::new(Vec::new()),
        });
        let mut threads = Vec::new();
        for _ in 0..js.cfg.workers.max(1) {
            let me = js.clone();
            threads.push(std::thread::spawn(move || me.dispatch_loop()));
        }
        if let Some(interval) = js.cfg.heartbeat {
            let me = js.clone();
            threads.push(std::thread::spawn(move || me.heartbeat_loop(interval)));
        }
        *js.threads.lock() = threads;
        Ok(js)
    }

    pub fn store(&self) -> &Arc<JobStore> {
        &self.store
    }

    pub fn machines(&self) -> &Arc<MachinePool> {
        &self.machines
    }

    /// Stop dispatchers and the heartbeat; in-flight attempts finish.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    fn dispatch_loop(&self) {
        while !self.stop.load(Ordering::SeqCst) {
            let Some(claim) = self.store.next_task(Duration::from_millis(100)) else {
                continue;
            };
            self.run_task(claim);
            let _ = self.store.maybe_snapshot();
        }
    }

    fn heartbeat_loop(&self, interval: Duration) {
        while !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(interval);
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            let newly_dead = self
                .machines
                .probe_all(self.cfg.heartbeat_timeout, self.cfg.heartbeat_misses);
            for label in newly_dead {
                let moved = self.store.requeue_dead_sed(&label);
                if moved > 0 {
                    self.obs
                        .metrics
                        .counter("diet_jobserver_redispatch_total")
                        .add(moved as u64);
                }
            }
        }
    }

    fn run_task(&self, claim: PoppedTask) {
        let trace = self.obs.tracer.new_trace();
        let span = self.obs.tracer.span(trace, 0, "task", "jobserver");
        match claim.payload.clone() {
            TaskPayload::Call(profile) => self.run_call(&claim, profile, span.ctx()),
            TaskPayload::Dag(spec) => self.run_dag(&claim, spec, span.ctx()),
        }
        span.end();
    }

    /// One dispatch round for a plain call: resolve via the MA, solve via
    /// the pool, with in-round retries per the policy — the distributed
    /// `call_with_retry`, minus the parts the store owns (the cross-round
    /// budget and the requeue).
    fn run_call(&self, claim: &PoppedTask, profile: Profile, ctx: obs::TraceCtx) {
        let policy = &self.cfg.retry;
        let mut excluded = self.machines.dead_labels();
        let mut prior: Option<u32> = None;
        let mut last_err = String::from("no attempt made");
        let started = Instant::now();
        for try_no in 0..=policy.max_retries {
            if self.stop.load(Ordering::SeqCst) {
                return; // the claim replays as in-flight on restart
            }
            if try_no > 0 {
                std::thread::sleep(
                    policy.backoff_jittered(try_no - 1, ctx.trace_id ^ claim.task_id),
                );
            }
            let label = match self.ma.submit(&profile.service, &excluded, ctx) {
                Ok(Some(l)) => l,
                Ok(None) => {
                    last_err = "no server available".into();
                    continue;
                }
                Err(DietError::Busy) => {
                    last_err = "hierarchy busy".into();
                    continue;
                }
                Err(e) if is_retryable(&e) => {
                    last_err = format!("finding: {e}");
                    continue;
                }
                Err(e) => {
                    self.store.fail(
                        claim.campaign_id,
                        claim.task_id,
                        claim.epoch,
                        &format!("finding rejected: {e}"),
                        self.cfg.max_task_attempts,
                        true,
                    );
                    return;
                }
            };
            self.machines.observe(&label);
            let Some(attempt) =
                self.store
                    .dispatched(claim.campaign_id, claim.task_id, claim.epoch, prior, &label)
            else {
                return; // claim went stale (heartbeat requeued us)
            };
            prior = Some(attempt);
            let t0 = Instant::now();
            match self
                .pool
                .call_traced(&label, profile.clone(), policy.attempt_timeout, ctx)
            {
                Ok((_out, _queue_wait, _solve)) => {
                    self.store.complete(
                        claim.campaign_id,
                        claim.task_id,
                        claim.epoch,
                        attempt,
                        &label,
                        t0.elapsed().as_millis() as u64,
                    );
                    self.obs
                        .metrics
                        .histogram("diet_jobserver_dispatch_ms")
                        .observe(started.elapsed().as_millis() as f64);
                    return;
                }
                Err(DietError::Busy) => {
                    last_err = format!("{label} busy");
                    // Back off without blaming the (healthy) server.
                }
                Err(e) if is_retryable(&e) => {
                    last_err = format!("{label}: {e}");
                    excluded.push(label);
                }
                Err(e) => {
                    self.store.fail(
                        claim.campaign_id,
                        claim.task_id,
                        claim.epoch,
                        &format!("{label} rejected: {e}"),
                        self.cfg.max_task_attempts,
                        true,
                    );
                    return;
                }
            }
        }
        self.store.fail(
            claim.campaign_id,
            claim.task_id,
            claim.epoch,
            &last_err,
            self.cfg.max_task_attempts,
            false,
        );
    }

    /// A DAG payload: admit the workflow into the MA's engine and poll to
    /// completion. The engine owns node-level retries; a failed outcome is
    /// terminal here.
    fn run_dag(&self, claim: &PoppedTask, spec: WorkflowSpec, ctx: obs::TraceCtx) {
        let Some(attempt) =
            self.store
                .dispatched(claim.campaign_id, claim.task_id, claim.epoch, None, "dag")
        else {
            return;
        };
        let dag_id = match self.ma.submit_dag(&spec, ctx) {
            Ok(id) => id,
            Err(e) => {
                let terminal = !is_retryable(&e) && !matches!(e, DietError::Busy);
                self.store.fail(
                    claim.campaign_id,
                    claim.task_id,
                    claim.epoch,
                    &format!("dag admit: {e}"),
                    self.cfg.max_task_attempts,
                    terminal,
                );
                return;
            }
        };
        let t0 = Instant::now();
        let mut since = 0u64;
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            if t0.elapsed() > self.cfg.dag_timeout {
                self.store.fail(
                    claim.campaign_id,
                    claim.task_id,
                    claim.epoch,
                    "dag timed out",
                    self.cfg.max_task_attempts,
                    false,
                );
                return;
            }
            match self.ma.dag_status(dag_id, since) {
                Ok((events, outcome)) => {
                    if let Some(last) = events.last() {
                        since = last.seq;
                    }
                    if let Some(o) = outcome {
                        if o.ok {
                            self.store.complete(
                                claim.campaign_id,
                                claim.task_id,
                                claim.epoch,
                                attempt,
                                "dag",
                                o.makespan_ms,
                            );
                        } else {
                            self.store.fail(
                                claim.campaign_id,
                                claim.task_id,
                                claim.epoch,
                                "dag failed",
                                self.cfg.max_task_attempts,
                                true,
                            );
                        }
                        return;
                    }
                }
                Err(e) if is_retryable(&e) || matches!(e, DietError::Busy) => {}
                Err(e) => {
                    self.store.fail(
                        claim.campaign_id,
                        claim.task_id,
                        claim.epoch,
                        &format!("dag poll: {e}"),
                        self.cfg.max_task_attempts,
                        true,
                    );
                    return;
                }
            }
            std::thread::sleep(self.cfg.dag_poll);
        }
    }
}

fn is_retryable(e: &DietError) -> bool {
    matches!(e, DietError::Transport(_) | DietError::Timeout { .. })
}

// ------------------------------------------------------------------ serving

/// Serve a [`JobServer`]'s client protocol on `addr` with the reactor
/// core: SubmitTasks / AttachCampaign / CampaignProgress / TaskStatus,
/// plus Ping and the correlated metrics dump.
pub fn serve_jobserver_over_tcp(
    js: Arc<JobServer>,
    addr: impl std::net::ToSocketAddrs + Clone,
    cfg: ServerConfig,
) -> Result<TcpServer, DietError> {
    let obs = js.obs.clone();
    TcpServer::spawn_framed(addr, cfg, move |h, msg| {
        let reply = match msg {
            Message::SubmitTasks {
                request_id,
                campaign,
                tasks,
            } => Message::SubmitTasksReply {
                request_id,
                result: js.store.submit(&campaign, tasks).map_err(|e| e.to_string()),
            },
            Message::AttachCampaign {
                request_id,
                campaign,
            } => Message::AttachReply {
                request_id,
                result: js
                    .store
                    .attach(&campaign)
                    .ok_or_else(|| format!("unknown campaign {campaign:?}")),
            },
            Message::CampaignProgress {
                request_id,
                campaign_id,
                cursor,
            } => Message::ProgressReply {
                request_id,
                result: js
                    .store
                    .progress(campaign_id, cursor)
                    .map_err(|e| e.to_string()),
            },
            Message::TaskStatus {
                request_id,
                campaign_id,
                task_id,
            } => Message::TaskStatusReply {
                request_id,
                result: js
                    .store
                    .task_status(campaign_id, task_id)
                    .ok_or_else(|| format!("unknown task {campaign_id}/{task_id}")),
            },
            Message::Ping => Message::Pong,
            Message::DumpMetricsRid { request_id, .. } => Message::MetricsReplyRid {
                request_id,
                text: obs.metrics.render_prometheus(),
            },
            _ => return,
        };
        let _ = h.send(&reply);
    })
}

// ------------------------------------------------------------------- client

/// Client stub for a jobserver: one lazily-dialed multiplexed connection,
/// redialed when dead, shared by any number of threads.
pub struct JobClient {
    addr: SocketAddr,
    mux: Mutex<Option<Arc<MuxConn>>>,
    next_id: AtomicU64,
    timeout: Duration,
}

impl JobClient {
    pub fn connect(addr: SocketAddr) -> Arc<JobClient> {
        Self::with_timeout(addr, Duration::from_secs(5))
    }

    pub fn with_timeout(addr: SocketAddr, timeout: Duration) -> Arc<JobClient> {
        Arc::new(JobClient {
            addr,
            mux: Mutex::new(None),
            next_id: AtomicU64::new(0),
            timeout,
        })
    }

    fn mux(&self) -> Result<Arc<MuxConn>, DietError> {
        let mut slot = self.mux.lock();
        if let Some(mux) = slot.as_ref() {
            if !mux.is_dead() {
                return Ok(mux.clone());
            }
        }
        let fresh = Arc::new(MuxConn::connect(self.addr)?);
        *slot = Some(fresh.clone());
        Ok(fresh)
    }

    fn rid(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Liveness probe on a dedicated connection (used by the recovery
    /// experiment to time how long a restart takes to come back).
    pub fn ping(&self, timeout: Duration) -> bool {
        ping_addr(self.addr, timeout)
    }

    /// Submit (or idempotently re-attach to) a campaign; returns the
    /// campaign id and the per-campaign task ids.
    pub fn submit_tasks(
        &self,
        campaign: &str,
        tasks: Vec<TaskPayload>,
    ) -> Result<(u64, Vec<u64>), DietError> {
        let request_id = self.rid();
        let reply = self.mux()?.request(
            &Message::SubmitTasks {
                request_id,
                campaign: campaign.to_string(),
                tasks,
            },
            request_id,
            self.timeout,
        )?;
        match reply {
            Message::SubmitTasksReply { result, .. } => result.map_err(DietError::Rejected),
            Message::Busy { .. } => Err(DietError::Busy),
            other => Err(DietError::Transport(format!(
                "unexpected reply to submit_tasks: {other:?}"
            ))),
        }
    }

    pub fn attach(&self, campaign: &str) -> Result<CampaignSummary, DietError> {
        let request_id = self.rid();
        let reply = self.mux()?.request(
            &Message::AttachCampaign {
                request_id,
                campaign: campaign.to_string(),
            },
            request_id,
            self.timeout,
        )?;
        match reply {
            Message::AttachReply { result, .. } => result.map_err(DietError::Rejected),
            Message::Busy { .. } => Err(DietError::Busy),
            other => Err(DietError::Transport(format!(
                "unexpected reply to attach: {other:?}"
            ))),
        }
    }

    /// Poll the progress feed from `cursor` (0 = from the start of what
    /// the server retains). Returns the summary and events with
    /// `seq > cursor`; advance the cursor to the last event's `seq`.
    pub fn progress(
        &self,
        campaign_id: u64,
        cursor: u64,
    ) -> Result<(CampaignSummary, Vec<TaskEventRec>), DietError> {
        let request_id = self.rid();
        let reply = self.mux()?.request(
            &Message::CampaignProgress {
                request_id,
                campaign_id,
                cursor,
            },
            request_id,
            self.timeout,
        )?;
        match reply {
            Message::ProgressReply { result, .. } => result.map_err(DietError::Rejected),
            Message::Busy { .. } => Err(DietError::Busy),
            other => Err(DietError::Transport(format!(
                "unexpected reply to progress: {other:?}"
            ))),
        }
    }

    pub fn task_status(&self, campaign_id: u64, task_id: u64) -> Result<TaskStatusRec, DietError> {
        let request_id = self.rid();
        let reply = self.mux()?.request(
            &Message::TaskStatus {
                request_id,
                campaign_id,
                task_id,
            },
            request_id,
            self.timeout,
        )?;
        match reply {
            Message::TaskStatusReply { result, .. } => result.map_err(DietError::Rejected),
            Message::Busy { .. } => Err(DietError::Busy),
            other => Err(DietError::Transport(format!(
                "unexpected reply to task_status: {other:?}"
            ))),
        }
    }

    /// Poll until the campaign finishes (every task terminal), collecting
    /// the whole event feed from cursor 0. Transport errors are retried
    /// within the deadline — the server may be restarting mid-campaign.
    pub fn wait(
        &self,
        campaign_id: u64,
        poll: Duration,
        timeout: Duration,
    ) -> Result<(CampaignSummary, Vec<TaskEventRec>), DietError> {
        let deadline = Instant::now() + timeout;
        let mut cursor = 0u64;
        let mut events = Vec::new();
        loop {
            match self.progress(campaign_id, cursor) {
                Ok((summary, batch)) => {
                    if let Some(last) = batch.last() {
                        cursor = last.seq;
                    }
                    events.extend(batch);
                    if summary.finished {
                        return Ok((summary, events));
                    }
                }
                Err(DietError::Rejected(e)) => return Err(DietError::Rejected(e)),
                Err(_) => {} // server restarting; keep polling
            }
            if Instant::now() >= deadline {
                return Err(DietError::Timeout {
                    after_secs: timeout.as_secs_f64(),
                });
            }
            std::thread::sleep(poll);
        }
    }
}

// -------------------------------------------------------------------- tests

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DietValue;
    use crate::profile::ProfileDesc;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "diet-jobserver-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn call_payload(x: i32) -> TaskPayload {
        let mut d = ProfileDesc::alloc("echo", 0, 0, 1);
        d.set_arg(0, crate::profile::ArgTag::Scalar).unwrap();
        d.set_arg(1, crate::profile::ArgTag::Scalar).unwrap();
        let mut p = Profile::alloc(&d);
        p.set(
            0,
            DietValue::ScalarI32(x),
            crate::data::Persistence::Volatile,
        )
        .unwrap();
        TaskPayload::Call(p)
    }

    fn store(dir: &Path) -> Arc<JobStore> {
        JobStore::open(dir, JobStoreConfig::default(), Arc::new(Obs::new())).unwrap()
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn wal_roundtrip_and_torn_tail() {
        let dir = tmpdir("wal");
        let path = dir.join("t.log");
        {
            let (mut log, recovered) = JobLog::open(&path).unwrap();
            assert!(recovered.is_empty());
            log.append(b"alpha").unwrap();
            log.append(b"beta-beta").unwrap();
        }
        // Corrupt the tail: append garbage that frames as a record start.
        let mut bytes = std::fs::read(&path).unwrap();
        let good = bytes.len();
        bytes.extend_from_slice(&[9, 0, 0, 0, 1, 2, 3, 4, 42]);
        std::fs::write(&path, &bytes).unwrap();
        let (log, recovered) = JobLog::open(&path).unwrap();
        assert_eq!(recovered, vec![b"alpha".to_vec(), b"beta-beta".to_vec()]);
        assert_eq!(log.records(), 2);
        // The torn tail was truncated away.
        assert_eq!(std::fs::metadata(&path).unwrap().len() as usize, good);
    }

    #[test]
    fn submit_is_idempotent_by_name() {
        let dir = tmpdir("idem");
        let s = store(&dir);
        let (cid, ids) = s
            .submit("camp", vec![call_payload(1), call_payload(2)])
            .unwrap();
        let (cid2, ids2) = s.submit("camp", vec![call_payload(1)]).unwrap();
        assert_eq!(cid, cid2);
        assert_eq!(ids, ids2);
        assert_eq!(s.summary(cid).unwrap().total, 2);
        assert_eq!(s.pending(), 2);
    }

    #[test]
    fn state_machine_and_recovery() {
        let dir = tmpdir("recover");
        let cid;
        {
            let s = store(&dir);
            let (c, ids) = s
                .submit(
                    "camp",
                    vec![call_payload(1), call_payload(2), call_payload(3)],
                )
                .unwrap();
            cid = c;
            assert_eq!(ids, vec![0, 1, 2]);
            // Task 0: dispatched and done.
            let t0 = s.next_task(Duration::from_millis(10)).unwrap();
            let a = s
                .dispatched(cid, t0.task_id, t0.epoch, None, "lyon/0")
                .unwrap();
            assert!(s.complete(cid, t0.task_id, t0.epoch, a, "lyon/0", 7));
            // Task 1: dispatched, then the process "crashes" mid-flight.
            let t1 = s.next_task(Duration::from_millis(10)).unwrap();
            s.dispatched(cid, t1.task_id, t1.epoch, None, "lyon/1")
                .unwrap();
            // Task 2 stays pending.
        }
        let s = store(&dir);
        assert_eq!(s.recovered_done(), 1);
        assert_eq!(s.recovered_inflight(), 1);
        let sum = s.summary(cid).unwrap();
        assert_eq!(sum.done, 1);
        assert_eq!(sum.failed, 0);
        // Both the in-flight and the pending task are queued again; the
        // done task is not.
        let mut queued = Vec::new();
        while let Some(t) = s.next_task(Duration::from_millis(10)) {
            queued.push(t.task_id);
        }
        queued.sort_unstable();
        assert_eq!(queued, vec![1, 2]);
        let st = s.task_status(cid, 0).unwrap();
        assert_eq!(st.state, TaskState::Done);
        assert_eq!(st.sed, "lyon/0");
    }

    #[test]
    fn stale_claims_are_dropped() {
        let dir = tmpdir("stale");
        let s = store(&dir);
        let (cid, _) = s.submit("camp", vec![call_payload(1)]).unwrap();
        let t = s.next_task(Duration::from_millis(10)).unwrap();
        let a = s.dispatched(cid, 0, t.epoch, None, "lyon/0").unwrap();
        // Heartbeat decides lyon/0 died and requeues the task.
        assert_eq!(s.requeue_dead_sed("lyon/0"), 1);
        // The original dispatcher's outcome is now stale.
        assert!(!s.complete(cid, 0, t.epoch, a, "lyon/0", 5));
        assert_eq!(
            s.fail(cid, 0, t.epoch, "late", 8, false),
            FailOutcome::Stale
        );
        // The requeued claim works fine.
        let t2 = s.next_task(Duration::from_millis(10)).unwrap();
        assert_ne!(t2.epoch, t.epoch);
        let a2 = s.dispatched(cid, 0, t2.epoch, None, "lyon/1").unwrap();
        assert_eq!(a2, 2);
        assert!(s.complete(cid, 0, t2.epoch, a2, "lyon/1", 5));
        let sum = s.summary(cid).unwrap();
        assert_eq!(sum.done, 1);
        assert_eq!(sum.resubmissions, 1);
        assert!(sum.finished);
    }

    #[test]
    fn fail_budget_terminates() {
        let dir = tmpdir("budget");
        let s = store(&dir);
        let (cid, _) = s.submit("camp", vec![call_payload(1)]).unwrap();
        let max = 3u32;
        let mut rounds = 0;
        loop {
            let t = s.next_task(Duration::from_millis(10)).unwrap();
            s.dispatched(cid, 0, t.epoch, None, "lyon/0").unwrap();
            rounds += 1;
            match s.fail(cid, 0, t.epoch, "boom", max, false) {
                FailOutcome::Requeued => continue,
                FailOutcome::Terminal => break,
                FailOutcome::Stale => panic!("claim can't be stale here"),
            }
        }
        assert_eq!(rounds, max as usize);
        let sum = s.summary(cid).unwrap();
        assert_eq!(sum.failed, 1);
        assert!(sum.finished);
        assert_eq!(s.task_status(cid, 0).unwrap().state, TaskState::Failed);
    }

    #[test]
    fn snapshot_compacts_and_recovers() {
        let dir = tmpdir("snap");
        let cid;
        {
            let s = store(&dir);
            let (c, _) = s
                .submit("camp", (0..10).map(call_payload).collect())
                .unwrap();
            cid = c;
            for _ in 0..4 {
                let t = s.next_task(Duration::from_millis(10)).unwrap();
                let a = s
                    .dispatched(cid, t.task_id, t.epoch, None, "sed/0")
                    .unwrap();
                assert!(s.complete(cid, t.task_id, t.epoch, a, "sed/0", 3));
            }
            s.snapshot_now().unwrap();
            // Post-snapshot activity lands in the fresh WAL tail.
            let t = s.next_task(Duration::from_millis(10)).unwrap();
            let a = s
                .dispatched(cid, t.task_id, t.epoch, None, "sed/1")
                .unwrap();
            assert!(s.complete(cid, t.task_id, t.epoch, a, "sed/1", 3));
            assert!(s.snapshot_path().exists());
        }
        let s = store(&dir);
        let sum = s.summary(cid).unwrap();
        assert_eq!(sum.done, 5);
        assert_eq!(sum.total, 10);
        assert_eq!(s.recovered_done(), 5);
        // Progress cursors: events regenerated from the tail only, but
        // sequence numbers continue from the snapshot's next_seq.
        let (_, events) = s.progress(cid, 0).unwrap();
        assert!(!events.is_empty());
        assert!(events.first().unwrap().seq > 1);
    }

    #[test]
    fn events_paginate_by_cursor() {
        let dir = tmpdir("cursor");
        let s = store(&dir);
        let (cid, _) = s
            .submit("camp", vec![call_payload(1), call_payload(2)])
            .unwrap();
        for _ in 0..2 {
            let t = s.next_task(Duration::from_millis(10)).unwrap();
            let a = s
                .dispatched(cid, t.task_id, t.epoch, None, "sed/0")
                .unwrap();
            assert!(s.complete(cid, t.task_id, t.epoch, a, "sed/0", 1));
        }
        let (sum, all) = s.progress(cid, 0).unwrap();
        assert!(sum.finished);
        assert_eq!(all.len(), 4); // 2 × (Dispatched, Done)
        let mid = all[1].seq;
        let (_, rest) = s.progress(cid, mid).unwrap();
        assert_eq!(rest.len(), 2);
        assert!(rest.iter().all(|e| e.seq > mid));
    }
}
