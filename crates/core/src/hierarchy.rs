//! The distributed MA/LA hierarchy: agents as separate TCP processes.
//!
//! The in-process tree ([`crate::agent`]) models the paper's hierarchy
//! inside one address space. This module puts each agent behind a real
//! socket, the deployment shape DIET ran on the grid: a Master Agent
//! process at the top, Local Agent processes per site, SeD processes at
//! the leaves, every edge a TCP connection speaking the frame codec.
//!
//! Frame flow for one finding phase (client submit, depth 2):
//!
//! ```text
//! client ──Submit──────────▶ MA process
//!                             │  Forward (mux, rid)
//!                             ▼
//!                            LA process ──estimates()──▶ local SeDs
//!                             │                 │ Forward to its own
//!                             │                 ▼ remote children...
//!                             │  EstimateBatch (echoes rid)
//!                             ▼
//!                            MA schedules over the aggregate
//! client ◀─SubmitReply(label)┘
//! client ──Call(label)──────▶ chosen SeD directly (the DIET shortcut:
//!                             data never relays through the agents)
//! ```
//!
//! Estimates hop up the tree inside [`Message::EstimateBatch`] frames;
//! each parent adds the measured hop RTT to every child estimate's
//! `probe_rtt`, so by the time an estimate reaches the scheduler its
//! probe time reflects the real path down the tree. Trace contexts ride
//! inside `Forward` frames, so one trace covers the whole finding phase
//! across every process.
//!
//! Federation: when an MA cannot resolve a service in its own tree
//! (`ServiceNotFound`), it forwards the request to its federation peers
//! (other MAs) with `ttl = 0` — peers consult only their own trees, so
//! a cycle of MAs cannot loop a request. `NoServerAvailable` (declared
//! but currently saturated/excluded) does **not** federate: the service
//! exists here, the client should back off and retry locally.
//!
//! Failure semantics: every agent process answers `Ping` on a dedicated
//! connection so [`crate::agent::HeartbeatMonitor`] can probe it; a
//! subtree whose agent misses its deadline is marked unavailable and
//! skipped by collection (never removed — a returning agent is restored
//! on its next successful probe). A stalled or dead subtree costs one
//! collection deadline, not the whole submit.

use crate::agent::{AgentNode, MasterAgent, RemoteSubtree};
use crate::codec::Message;
use crate::dag::{DagEngine, DagEventRec, DagOutcome, WorkflowSpec};
use crate::data::DietValue;
use crate::error::DietError;
use crate::monitor::Estimate;
use crate::reactor::ConnHandle;
use crate::sed::SedHandle;
use crate::transport::{Duplex, MuxConn, ServerConfig, TcpServer, TcpTransport};
use obs::{Obs, TraceCtx};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------- SeD serving

/// Expose a live SeD over TCP — the serving half of the CORBA role in the
/// original DIET. Each accepted connection streams `Call`/`CallReply` frames
/// and answers `Ping` with `Pong` so remote heartbeat monitors can probe the
/// node. Uses [`ServerConfig::default`] pool sizing; see
/// [`serve_sed_over_tcp_with_config`].
pub fn serve_sed_over_tcp(sed: Arc<SedHandle>) -> Result<TcpServer, DietError> {
    serve_sed_over_tcp_with_config(sed, ServerConfig::default())
}

/// [`serve_sed_over_tcp`] with explicit worker-pool sizing and fault hooks.
///
/// Rides the readiness-driven serving core ([`TcpServer::spawn_framed`]):
/// one reactor thread owns every connection, and complete frames are
/// dispatched to the bounded worker pool. The path is **pipelined** end to
/// end — a `Call` frame is admitted into the SeD's solve queue via
/// [`SedHandle::submit_with_callback`] and the dispatch worker is free
/// immediately; when the solve completes, its callback queues the
/// `CallReply` straight onto the connection's write queue (replies may
/// overtake each other — that is the point; the request id pairs them).
/// No per-connection pump thread, no parked worker: an idle connection
/// costs a registered buffer. Data and control frames (`GetData`/
/// `PutData`/`Ping`/`DumpMetrics`) are answered inline on the dispatch
/// workers.
///
/// Admission control: when the SeD's `admission_limit` is reached (or the
/// fault plan forces it), a `Call` is answered with [`Message::Busy`]
/// echoing its id instead of queueing without bound — the client backs off
/// and resubmits; the MA meanwhile sees the saturation in `Estimate` and
/// routes around it.
///
/// Failure semantics, chosen so clients can tell application errors from
/// crashes:
///
/// * Submission rejections and solve errors travel back as `CallReply` with
///   an `Err` string — the request *was* handled, it just failed, so the
///   client must not silently resubmit it.
/// * If the SeD worker dies mid-call its completion fires `None` and the
///   connection is severed **without** a reply: the client observes a
///   transport error, which the retry layer treats as retryable and
///   resubmits through the Master Agent.
/// * Reply frames that cannot be delivered (client gone, socket reset) are
///   recorded on the SeD's load tracker via
///   [`SedHandle::note_reply_failure`] instead of being swallowed.
pub fn serve_sed_over_tcp_with_config(
    sed: Arc<SedHandle>,
    mut cfg: ServerConfig,
) -> Result<TcpServer, DietError> {
    // Unless the caller routed the reactor's instrumentation elsewhere, it
    // lands in this SeD's own registry — so a telemetry flusher ships tick
    // latency and queue depths to the collector alongside the solve metrics.
    if cfg.obs.is_none() {
        cfg.obs = Some(sed.obs());
    }
    TcpServer::spawn_framed("127.0.0.1:0", cfg, move |handle, msg| {
        match msg {
            Message::Call {
                request_id,
                ctx,
                profile,
            } => {
                // Admission control: a full queue answers Busy (echoing
                // the id so the mux client wakes exactly this caller)
                // instead of queueing without bound. The fault plan can
                // force it to simulate overload.
                if sed.faults().force_busy() || !sed.admits() {
                    sed.obs().metrics.counter("diet_sed_busy_total").inc();
                    let _ = handle.send(&Message::Busy { request_id });
                    return;
                }
                let h = handle.clone();
                let cb_sed = sed.clone();
                let res = sed.submit_with_callback(profile, ctx, move |outcome| {
                    match outcome {
                        Some(o) => {
                            let reply = Message::CallReply {
                                request_id,
                                queue_wait: o.queue_wait,
                                solve: o.solve_time,
                                result: o.result.map_err(|e| e.to_string()),
                            };
                            // The reply frame *is* the result-return phase:
                            // span it so the trace covers the hand-off back
                            // toward the client.
                            let obs = cb_sed.obs();
                            let ret_start_ns = obs.tracer.now_ns();
                            let sent = h.send(&reply);
                            if ctx.is_active() {
                                obs.tracer.record_window(
                                    ctx.trace_id,
                                    ctx.parent_span,
                                    "ResultReturn",
                                    &cb_sed.config.label,
                                    ret_start_ns,
                                    obs.tracer.now_ns(),
                                );
                            }
                            if sent.is_err() {
                                // Client gone: record the lost delivery.
                                cb_sed.note_reply_failure();
                                h.close();
                            }
                        }
                        // Worker crashed while holding the request (or the
                        // queue rejected it): the reply can never come.
                        // Sever the connection so every caller on it sees a
                        // transport fault and retries elsewhere.
                        None => {
                            cb_sed.note_reply_failure();
                            h.close();
                        }
                    }
                });
                if res.is_err() {
                    // The SeD worker is gone — a crash, not an application
                    // rejection. The rejected job's completion has already
                    // fired `None` above (counting the failure and closing
                    // the connection); this close is an idempotent backstop.
                    handle.close();
                }
            }
            // DAGDA's SeD-to-SeD pull: another SeD (or a client) asks
            // for a catalogued item by id; serve it out of the local
            // store. A miss is an application-level `Err`, not a
            // dropped connection — the puller falls back to re-shipping.
            Message::GetData { request_id, id } => {
                let result = sed.datamgr.get_with_mode(&id).map_err(|e| e.to_string());
                let _ = handle.send(&Message::DataReply {
                    request_id,
                    id,
                    result,
                });
            }
            // The client-side `store_data` leg: retain + publish to the
            // catalog, ack with an empty DataReply. Volatile payloads
            // are refused — there is nothing to persist.
            Message::PutData {
                request_id,
                id,
                mode,
                value,
            } => {
                let result = if sed.store_data(&id, value, mode) {
                    Ok((DietValue::Null, mode))
                } else {
                    Err(format!("store_data({id}): volatile data is not retained"))
                };
                let _ = handle.send(&Message::DataReply {
                    request_id,
                    id,
                    result,
                });
            }
            // The `dump-metrics` request: ship this SeD's registry as
            // Prometheus text over the same transport the solves use.
            Message::DumpMetrics => {
                let text = sed.obs().metrics.render_prometheus();
                let _ = handle.send(&Message::MetricsReply { text });
            }
            // Correlated variant: rides a shared mux like `Call`, and the
            // selector picks the exported view.
            Message::DumpMetricsRid { request_id, what } => {
                let text = component_view(&sed.obs(), &what);
                let _ = handle.send(&Message::MetricsReplyRid { request_id, text });
            }
            Message::Ping => {
                let _ = handle.send(&Message::Pong);
            }
            Message::Shutdown => handle.close(),
            _ => {}
        }
    })
}

/// Shared [`Message::DumpMetricsRid`] view dispatch for single-component
/// processes (SeDs and agents): the selector picks the Prometheus text or
/// the Chrome trace of the component's own spans. (`"topology"` is a
/// collector-level view; see `crate::collector`.)
fn component_view(obs: &Obs, what: &str) -> String {
    match what {
        "" | "prometheus" => obs.metrics.render_prometheus(),
        "chrome" => obs::chrome_trace(&obs.tracer.snapshot()),
        other => format!("unknown metrics view {other:?}\n"),
    }
}

// --------------------------------------------------------------- agent client

/// Client stub for a remote agent process: one multiplexed connection
/// carrying `Forward`/`Submit` frames, redialed transparently when it dies.
///
/// A parent agent holds one of these per remote child (via the
/// [`RemoteSubtree`] impl); a client holds one for the MA it submits
/// through; an MA holds one per federation peer.
pub struct RemoteAgentClient {
    name: String,
    addr: SocketAddr,
    mux: Mutex<Option<Arc<MuxConn>>>,
    next_id: AtomicU64,
    timeout: Duration,
}

impl RemoteAgentClient {
    /// A stub for the agent at `addr`. Dials lazily on first use, so the
    /// stub can be built before (or while) the agent process comes up.
    pub fn new(name: &str, addr: SocketAddr) -> Arc<Self> {
        Self::with_timeout(name, addr, Duration::from_secs(5))
    }

    /// [`RemoteAgentClient::new`] with an explicit per-request deadline —
    /// the bound on how long one hop down the tree may take.
    pub fn with_timeout(name: &str, addr: SocketAddr, timeout: Duration) -> Arc<Self> {
        Arc::new(RemoteAgentClient {
            name: name.to_string(),
            addr,
            mux: Mutex::new(None),
            next_id: AtomicU64::new(0),
            timeout,
        })
    }

    /// The remote agent's address (for heartbeat probes and redials).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live multiplexed connection, dialing if absent or dead.
    fn mux(&self) -> Result<Arc<MuxConn>, DietError> {
        let mut slot = self.mux.lock();
        if let Some(mux) = slot.as_ref() {
            if !mux.is_dead() {
                return Ok(mux.clone());
            }
        }
        let fresh = Arc::new(MuxConn::connect(self.addr)?);
        *slot = Some(fresh.clone());
        Ok(fresh)
    }

    fn rid(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// One finding hop: forward a request down to this agent and wait for
    /// the aggregated estimates of its whole subtree. `ttl` bounds
    /// *sideways* (federation) forwarding at the receiver; tree-downward
    /// collection always recurses.
    pub fn forward(
        &self,
        service: &str,
        exclude: &[String],
        ctx: TraceCtx,
        ttl: u8,
    ) -> Result<Vec<Estimate>, DietError> {
        let mux = self.mux()?;
        let request_id = self.rid();
        let reply = mux.request(
            &Message::Forward {
                request_id,
                ctx,
                service: service.to_string(),
                exclude: exclude.to_vec(),
                ttl,
            },
            request_id,
            self.timeout,
        )?;
        match reply {
            Message::EstimateBatch { estimates, .. } => Ok(estimates),
            Message::Busy { .. } => Err(DietError::Busy),
            other => Err(DietError::Transport(format!(
                "unexpected reply to forward: {other:?}"
            ))),
        }
    }

    /// Submit through a remote MA: returns the winning SeD's label
    /// (`None` when the MA found no server — the remote analog of
    /// [`DietError::NoServerAvailable`]).
    pub fn submit(
        &self,
        service: &str,
        exclude: &[String],
        ctx: TraceCtx,
    ) -> Result<Option<String>, DietError> {
        let mux = self.mux()?;
        let request_id = self.rid();
        let reply = mux.request(
            &Message::Submit {
                service: service.to_string(),
                request_id,
                ctx,
                exclude: exclude.to_vec(),
            },
            request_id,
            self.timeout,
        )?;
        match reply {
            Message::SubmitReply { server, .. } => Ok(server),
            Message::Busy { .. } => Err(DietError::Busy),
            other => Err(DietError::Transport(format!(
                "unexpected reply to submit: {other:?}"
            ))),
        }
    }

    /// Admit a workflow DAG into the remote MA's engine; returns the
    /// engine-assigned dag id. A validation failure (or an MA served
    /// without an engine) comes back as [`DietError::Rejected`].
    pub fn submit_dag(&self, spec: &WorkflowSpec, ctx: TraceCtx) -> Result<u64, DietError> {
        let mux = self.mux()?;
        let request_id = self.rid();
        let reply = mux.request(
            &Message::SubmitDag {
                request_id,
                ctx,
                spec: spec.clone(),
            },
            request_id,
            self.timeout,
        )?;
        match reply {
            Message::DagReply { result, .. } => result.map_err(DietError::Rejected),
            Message::Busy { .. } => Err(DietError::Busy),
            other => Err(DietError::Transport(format!(
                "unexpected reply to submit_dag: {other:?}"
            ))),
        }
    }

    /// Poll a dag's progress: events with sequence numbers after `since`,
    /// plus the outcome once the dag finished.
    pub fn dag_status(
        &self,
        dag_id: u64,
        since: u64,
    ) -> Result<(Vec<DagEventRec>, Option<DagOutcome>), DietError> {
        let mux = self.mux()?;
        let request_id = self.rid();
        let reply = mux.request(
            &Message::DagStatus {
                request_id,
                dag_id,
                since,
            },
            request_id,
            self.timeout,
        )?;
        match reply {
            Message::DagEvent {
                events, outcome, ..
            } => Ok((events, outcome)),
            Message::DagReply { result: Err(e), .. } => Err(DietError::Rejected(e)),
            Message::Busy { .. } => Err(DietError::Busy),
            other => Err(DietError::Transport(format!(
                "unexpected reply to dag_status: {other:?}"
            ))),
        }
    }
}

impl RemoteSubtree for RemoteAgentClient {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn collect(
        &self,
        service: &str,
        exclude: &[String],
        ctx: TraceCtx,
    ) -> Result<Vec<Estimate>, DietError> {
        self.forward(service, exclude, ctx, 0)
    }

    /// Liveness probe on a dedicated short-lived connection: `Pong`
    /// carries no correlation id, so it cannot ride the multiplexed
    /// stream (the demux thread would drop it).
    fn ping(&self, timeout: Duration) -> bool {
        let Ok(conn) = TcpTransport::connect(self.addr) else {
            return false;
        };
        if conn.send(&Message::Ping).is_err() {
            return false;
        }
        matches!(conn.recv_timeout(timeout), Ok(Some(Message::Pong)))
    }
}

// --------------------------------------------------------------- agent serving

/// Sizing and admission policy for one served agent process.
#[derive(Clone)]
pub struct AgentConfig {
    /// Concurrent forwards this agent admits before answering `Busy`
    /// (echoing the request id, so exactly the over-limit caller backs
    /// off). `None` admits without bound.
    pub admission_limit: Option<usize>,
    /// Connection-pool sizing for the agent's listener.
    pub server: ServerConfig,
    /// Observability sink the serving loop records into (busy counters,
    /// per-hop trace windows). Share one across a deployment so a single
    /// trace snapshot shows every hop.
    pub obs: Arc<Obs>,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            admission_limit: None,
            server: ServerConfig::default(),
            obs: Arc::new(Obs::new()),
        }
    }
}

/// Serve an agent subtree (a Local Agent process) on an ephemeral port.
/// See [`serve_agent_over_tcp_at`].
pub fn serve_agent_over_tcp(
    node: Arc<AgentNode>,
    cfg: AgentConfig,
) -> Result<TcpServer, DietError> {
    serve_agent_over_tcp_at(node, "127.0.0.1:0", cfg)
}

/// Serve an agent subtree at an explicit address — the restart path: a
/// recovered agent rebinds its old address so parents' stubs (which hold
/// the address, not the connection) find it again without re-registration.
///
/// Protocol: `Forward` frames are answered with `EstimateBatch` carrying
/// the whole subtree's estimates (local SeDs, in-process children, and
/// remote children reached through this node's [`RemoteSubtree`] slots);
/// over-admission answers `Busy`. `Ping`/`Pong` serves heartbeat probes,
/// `DumpMetrics` ships the agent's registry.
pub fn serve_agent_over_tcp_at(
    node: Arc<AgentNode>,
    addr: impl std::net::ToSocketAddrs + Clone + Send + Sync + 'static,
    cfg: AgentConfig,
) -> Result<TcpServer, DietError> {
    let inflight = Arc::new(AtomicUsize::new(0));
    let admission_limit = cfg.admission_limit;
    let obs = cfg.obs.clone();
    let mut server_cfg = cfg.server;
    if server_cfg.obs.is_none() {
        server_cfg.obs = Some(obs.clone());
    }
    TcpServer::spawn_framed(addr, server_cfg, move |handle: &ConnHandle, msg| {
        match msg {
            Message::Forward {
                request_id,
                ctx,
                service,
                exclude,
                ttl: _,
            } => {
                // Per-agent admission: the PR-5 Busy backpressure,
                // applied one level up — an overloaded *agent* (not
                // just an overloaded SeD) pushes back explicitly.
                let admitted = inflight.fetch_add(1, Ordering::AcqRel) + 1;
                if admission_limit.is_some_and(|cap| admitted > cap) {
                    inflight.fetch_sub(1, Ordering::AcqRel);
                    obs.metrics.counter("diet_agent_busy_total").inc();
                    let _ = handle.send(&Message::Busy { request_id });
                    return;
                }
                // Collection blocks this dispatch worker while the subtree
                // answers — concurrency stays bounded by `cfg.workers`,
                // exactly the bound the pooled server had.
                let t0 = obs.tracer.now_ns();
                let estimates = node.estimates(&service, &exclude, ctx);
                inflight.fetch_sub(1, Ordering::AcqRel);
                if ctx.is_active() {
                    obs.tracer.record_window(
                        ctx.trace_id,
                        ctx.parent_span,
                        "AgentEstimate",
                        &node.name,
                        t0,
                        obs.tracer.now_ns(),
                    );
                }
                let _ = handle.send(&Message::EstimateBatch {
                    request_id,
                    estimates,
                });
            }
            Message::DumpMetrics => {
                let text = obs.metrics.render_prometheus();
                let _ = handle.send(&Message::MetricsReply { text });
            }
            Message::DumpMetricsRid { request_id, what } => {
                let text = component_view(&obs, &what);
                let _ = handle.send(&Message::MetricsReplyRid { request_id, text });
            }
            Message::Ping => {
                let _ = handle.send(&Message::Pong);
            }
            Message::Shutdown => handle.close(),
            _ => {}
        }
    })
}

/// Serve a Master Agent process on an ephemeral port. See
/// [`serve_ma_over_tcp_at`].
pub fn serve_ma_over_tcp(
    ma: Arc<MasterAgent>,
    peers: Vec<Arc<RemoteAgentClient>>,
    cfg: AgentConfig,
) -> Result<TcpServer, DietError> {
    serve_ma_over_tcp_at(ma, peers, "127.0.0.1:0", cfg)
}

/// Serve a Master Agent at an explicit address: the top of the tree, the
/// process clients submit to.
///
/// `Submit` frames resolve through the MA's whole (possibly remote) tree
/// and answer `SubmitReply` with the winning label. When resolution fails
/// with `ServiceNotFound` and `peers` is non-empty, the request
/// **federates**: each peer MA is consulted with a `Forward` at `ttl = 0`
/// (so a cycle of MAs cannot loop), the aggregated estimates are
/// scheduled with this MA's own policy, and the winner's label is
/// returned as if it were local. `NoServerAvailable` does not federate —
/// the service is declared here, the client should retry locally.
///
/// `Forward` frames make this MA usable *as* a federation peer (and as a
/// remote subtree of an even larger tree): they are answered with the
/// estimates of the MA's own tree only.
pub fn serve_ma_over_tcp_at(
    ma: Arc<MasterAgent>,
    peers: Vec<Arc<RemoteAgentClient>>,
    addr: impl std::net::ToSocketAddrs + Clone + Send + Sync + 'static,
    cfg: AgentConfig,
) -> Result<TcpServer, DietError> {
    serve_ma_inner(ma, peers, addr, cfg, None)
}

/// [`serve_ma_over_tcp_at`] plus a workflow engine: `SubmitDag` frames are
/// admitted into `engine` (tied to the submitting connection, so a client
/// disconnect cancels the dag's unplaced nodes) and `DagStatus` polls are
/// answered with the engine's event stream. An MA served without an engine
/// rejects dag frames with an explanatory `DagReply`.
pub fn serve_ma_over_tcp_with_dag(
    ma: Arc<MasterAgent>,
    peers: Vec<Arc<RemoteAgentClient>>,
    addr: impl std::net::ToSocketAddrs + Clone + Send + Sync + 'static,
    cfg: AgentConfig,
    engine: Arc<DagEngine>,
) -> Result<TcpServer, DietError> {
    serve_ma_inner(ma, peers, addr, cfg, Some(engine))
}

fn serve_ma_inner(
    ma: Arc<MasterAgent>,
    peers: Vec<Arc<RemoteAgentClient>>,
    addr: impl std::net::ToSocketAddrs + Clone + Send + Sync + 'static,
    cfg: AgentConfig,
    engine: Option<Arc<DagEngine>>,
) -> Result<TcpServer, DietError> {
    let inflight = Arc::new(AtomicUsize::new(0));
    let admission_limit = cfg.admission_limit;
    let obs = cfg.obs.clone();
    let mut server_cfg = cfg.server;
    if server_cfg.obs.is_none() {
        server_cfg.obs = Some(obs.clone());
    }
    TcpServer::spawn_framed(addr, server_cfg, move |handle: &ConnHandle, msg| {
        match msg {
            Message::Submit {
                service,
                request_id,
                ctx,
                exclude,
            } => {
                let admitted = inflight.fetch_add(1, Ordering::AcqRel) + 1;
                if admission_limit.is_some_and(|cap| admitted > cap) {
                    inflight.fetch_sub(1, Ordering::AcqRel);
                    obs.metrics.counter("diet_agent_busy_total").inc();
                    let _ = handle.send(&Message::Busy { request_id });
                    return;
                }
                let server = match ma.resolve(&service, &[], &exclude, ctx) {
                    Ok(label) => Some(label),
                    Err(DietError::ServiceNotFound(_)) if !peers.is_empty() => {
                        federate(&ma, &peers, &service, &exclude, ctx, &obs)
                    }
                    Err(_) => None,
                };
                inflight.fetch_sub(1, Ordering::AcqRel);
                let _ = handle.send(&Message::SubmitReply { request_id, server });
            }
            // Acting as a federation peer (or as somebody's remote
            // subtree): answer with our own tree's estimates. ttl = 0
            // forbids consulting *our* peers in turn, which is the only
            // ttl federation sends — requests die after one hop.
            Message::Forward {
                request_id,
                ctx,
                service,
                exclude,
                ttl: _,
            } => {
                let estimates = ma.estimates(&service, &exclude, ctx);
                let _ = handle.send(&Message::EstimateBatch {
                    request_id,
                    estimates,
                });
            }
            Message::DumpMetrics => {
                let text = ma.metrics().render_prometheus();
                let _ = handle.send(&Message::MetricsReply { text });
            }
            Message::DumpMetricsRid { request_id, what } => {
                let text = component_view(&obs, &what);
                let _ = handle.send(&Message::MetricsReplyRid { request_id, text });
            }
            Message::SubmitDag {
                request_id,
                ctx,
                spec,
            } => {
                let result = match &engine {
                    Some(eng) => eng
                        .submit(spec, ctx, Some(handle.clone()))
                        .map_err(|e| e.to_string()),
                    None => Err("no workflow engine at this MA".into()),
                };
                let _ = handle.send(&Message::DagReply { request_id, result });
            }
            Message::DagStatus {
                request_id,
                dag_id,
                since,
            } => match engine.as_ref().map(|eng| eng.status(dag_id, since)) {
                Some(Ok((events, outcome))) => {
                    let _ = handle.send(&Message::DagEvent {
                        request_id,
                        dag_id,
                        events,
                        outcome,
                    });
                }
                Some(Err(e)) => {
                    let _ = handle.send(&Message::DagReply {
                        request_id,
                        result: Err(e.to_string()),
                    });
                }
                None => {
                    let _ = handle.send(&Message::DagReply {
                        request_id,
                        result: Err("no workflow engine at this MA".into()),
                    });
                }
            },
            Message::Ping => {
                let _ = handle.send(&Message::Pong);
            }
            Message::Shutdown => handle.close(),
            _ => {}
        }
    })
}

/// The MA-to-MA forwarding leg: consult every federation peer, schedule
/// over whatever came back with the local MA's policy. Returns the winning
/// label, or `None` when no peer had a usable candidate.
fn federate(
    ma: &Arc<MasterAgent>,
    peers: &[Arc<RemoteAgentClient>],
    service: &str,
    exclude: &[String],
    ctx: TraceCtx,
    obs: &Arc<Obs>,
) -> Option<String> {
    obs.metrics.counter("diet_ma_federated_total").inc();
    let mut candidates: Vec<Estimate> = Vec::new();
    for peer in peers {
        match peer.forward(service, exclude, ctx, 0) {
            Ok(ests) => {
                candidates.extend(
                    ests.into_iter()
                        .filter(|e| !exclude.contains(&e.server) && !e.is_saturated()),
                );
            }
            // A dead or busy peer is an empty peer — federation is
            // best-effort over whoever answers.
            Err(_) => continue,
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let pick = ma.scheduler_handle().select(&candidates);
    let winner = candidates.get(pick)?;
    obs.metrics.counter("diet_ma_federated_hits_total").add(1);
    Some(winner.server.clone())
}
