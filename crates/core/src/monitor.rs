//! Server monitoring and performance estimation.
//!
//! "The information stored by a SeD is a list of the data available on its
//! server, all information concerning its load (for example available memory
//! and processor) and the list of problems that it can solve."
//!
//! [`Estimate`] is the vector a SeD returns when an agent probes it during
//! request submission — DIET's `estVector_t`. Schedulers consume these.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A point-in-time performance estimate for one SeD.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Estimate {
    /// SeD label (unique across the deployment).
    pub server: String,
    /// Relative processor speed (1.0 = reference).
    pub speed_factor: f64,
    /// Free memory, bytes.
    pub free_memory: u64,
    /// Jobs queued + running on this SeD right now.
    pub queue_length: usize,
    /// Completed solves since boot (freshness/experience signal).
    pub completed: u64,
    /// Mean duration of past solves of the requested service, seconds;
    /// `None` when the SeD has never run it — exactly the paper's situation
    /// ("the second part of the simulation has never been executed, hence
    /// DIET doesn't know anything on its processing time").
    pub known_mean_duration: Option<f64>,
    /// Round-trip probe time, seconds (network proximity signal).
    pub probe_rtt: f64,
    /// Bytes of the request's persistent inputs already resident on this
    /// SeD (replica-catalog locality term; 0 when the request references no
    /// grid data or the MA has no catalog).
    pub data_local_bytes: u64,
    /// Bytes of the request's persistent inputs resident *elsewhere* on the
    /// grid — the SeD-to-SeD transfer this candidate would have to do.
    pub data_miss_bytes: u64,
    /// Admission capacity: requests beyond this queue depth are rejected
    /// with `Busy`. `None` means unbounded (no admission control armed).
    pub admission_limit: Option<usize>,
}

impl Estimate {
    /// Expected completion heuristic: queue backlog × expected task time,
    /// plus the probe round-trip (the request still has to reach the SeD,
    /// however fast it is). Falls back to speed-only task time when the
    /// duration is unknown — previously that fallback dropped `probe_rtt`
    /// entirely, making a distant idle SeD look free.
    pub fn expected_finish(&self) -> f64 {
        self.finish_with_task_time(self.known_mean_duration.unwrap_or(1.0) / self.speed_factor)
    }

    /// The cold-start variant of [`Estimate::expected_finish`]: unit task
    /// cost scaled by processor speed, ignoring any known duration. This is
    /// THE fallback formula — schedulers that cannot compare mixed
    /// known/unknown durations call this instead of re-deriving it inline
    /// (two inline copies drifted once already over the `probe_rtt` term).
    pub fn expected_finish_unit(&self) -> f64 {
        self.finish_with_task_time(1.0 / self.speed_factor)
    }

    /// The single source of truth both estimates share: backlog × per-task
    /// time, plus the probe round-trip.
    fn finish_with_task_time(&self, per_task: f64) -> f64 {
        (self.queue_length as f64 + 1.0) * per_task + self.probe_rtt
    }

    /// [`Estimate::expected_finish`] plus the time to pull this request's
    /// missing persistent inputs from their current holders at
    /// `bandwidth_bps` bytes/second. The locality term the `DataLocal`
    /// scheduler minimizes: a SeD already holding the data pays nothing.
    pub fn expected_finish_with_transfer(&self, bandwidth_bps: f64) -> f64 {
        self.expected_finish() + self.data_miss_bytes as f64 / bandwidth_bps.max(1.0)
    }

    /// Whether this SeD would currently reject a new request with `Busy`.
    /// Schedulers use it to spread load across unsaturated candidates
    /// instead of dogpiling the fastest node under overload.
    pub fn is_saturated(&self) -> bool {
        self.admission_limit
            .is_some_and(|cap| self.queue_length >= cap)
    }
}

/// Shared mutable load tracker each SeD updates as it works; probes snapshot
/// it into [`Estimate`]s. Lock-free so the solver threads never contend with
/// the probe path.
#[derive(Debug, Default)]
pub struct LoadTracker {
    queue: AtomicUsize,
    completed: AtomicU64,
    /// Sum of solve durations in microseconds (for the mean).
    busy_us: AtomicU64,
    /// Replies the server finished computing but could not deliver (the
    /// client hung up, the channel closed, or fault injection dropped it).
    reply_failures: AtomicU64,
    /// A solve is executing right now. Liveness probes consult this: a
    /// worker deep in a long solve cannot answer queued pings, but it is
    /// busy, not dead.
    solving: AtomicBool,
}

impl LoadTracker {
    pub fn new() -> Arc<Self> {
        Arc::new(LoadTracker::default())
    }

    pub fn enqueue(&self) {
        self.queue.fetch_add(1, Ordering::Relaxed);
    }

    pub fn start(&self) {
        self.solving.store(true, Ordering::Release);
    }

    pub fn finish(&self, duration_secs: f64) {
        self.solving.store(false, Ordering::Release);
        self.queue.fetch_sub(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.busy_us
            .fetch_add((duration_secs * 1e6) as u64, Ordering::Relaxed);
    }

    /// Is a solve executing right now?
    pub fn is_solving(&self) -> bool {
        self.solving.load(Ordering::Acquire)
    }

    pub fn queue_length(&self) -> usize {
        self.queue.load(Ordering::Relaxed)
    }

    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Record a reply the server computed but could not deliver.
    pub fn reply_failed(&self) {
        self.reply_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub fn reply_failures(&self) -> u64 {
        self.reply_failures.load(Ordering::Relaxed)
    }

    /// Mean past solve duration, if any solves completed.
    pub fn mean_duration(&self) -> Option<f64> {
        let c = self.completed();
        if c == 0 {
            None
        } else {
            Some(self.busy_us.load(Ordering::Relaxed) as f64 / 1e6 / c as f64)
        }
    }

    /// Snapshot into an estimate.
    pub fn estimate(&self, server: &str, speed_factor: f64, free_memory: u64) -> Estimate {
        Estimate {
            server: server.to_string(),
            speed_factor,
            free_memory,
            queue_length: self.queue_length(),
            completed: self.completed(),
            known_mean_duration: self.mean_duration(),
            probe_rtt: 0.0,
            data_local_bytes: 0,
            data_miss_bytes: 0,
            admission_limit: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_counts_queue_and_completions() {
        let t = LoadTracker::new();
        t.enqueue();
        t.enqueue();
        assert_eq!(t.queue_length(), 2);
        t.finish(2.0);
        assert_eq!(t.queue_length(), 1);
        assert_eq!(t.completed(), 1);
        assert_eq!(t.mean_duration(), Some(2.0));
        t.finish(4.0);
        assert_eq!(t.mean_duration(), Some(3.0));
    }

    #[test]
    fn reply_failures_accumulate_independently() {
        let t = LoadTracker::new();
        assert_eq!(t.reply_failures(), 0);
        t.reply_failed();
        t.reply_failed();
        assert_eq!(t.reply_failures(), 2);
        // Undelivered replies don't count as completions.
        assert_eq!(t.completed(), 0);
    }

    #[test]
    fn fresh_tracker_has_unknown_duration() {
        let t = LoadTracker::new();
        assert_eq!(t.mean_duration(), None);
        let e = t.estimate("sed", 1.0, 1 << 30);
        assert_eq!(e.known_mean_duration, None);
        assert_eq!(e.queue_length, 0);
    }

    #[test]
    fn expected_finish_prefers_fast_empty_servers() {
        let idle_fast = Estimate {
            server: "a".into(),
            speed_factor: 1.2,
            queue_length: 0,
            completed: 5,
            known_mean_duration: Some(100.0),
            ..Estimate::default()
        };
        let busy_slow = Estimate {
            server: "b".into(),
            speed_factor: 0.8,
            queue_length: 3,
            completed: 5,
            known_mean_duration: Some(100.0),
            ..Estimate::default()
        };
        assert!(idle_fast.expected_finish() < busy_slow.expected_finish());
    }

    #[test]
    fn expected_finish_fallback_includes_probe_rtt() {
        let mk = |rtt: f64, known: Option<f64>| Estimate {
            server: "s".into(),
            speed_factor: 2.0,
            queue_length: 1,
            known_mean_duration: known,
            probe_rtt: rtt,
            ..Estimate::default()
        };
        // Speed-only fallback: (1 + 1) * 1.0/2.0 + rtt.
        assert_eq!(mk(0.0, None).expected_finish(), 1.0);
        assert_eq!(mk(0.25, None).expected_finish(), 1.25);
        // A distant idle SeD no longer ties with a local one.
        assert!(mk(0.25, None).expected_finish() > mk(0.0, None).expected_finish());
        // The known-duration path carries the RTT term too.
        assert_eq!(mk(0.5, Some(4.0)).expected_finish(), 4.5);
    }

    #[test]
    fn transfer_term_penalizes_data_misses_only() {
        let mk = |local: u64, miss: u64| Estimate {
            server: "s".into(),
            speed_factor: 1.0,
            known_mean_duration: Some(2.0),
            data_local_bytes: local,
            data_miss_bytes: miss,
            ..Estimate::default()
        };
        // Holder pays nothing; a candidate missing 1 GB at 1 GB/s pays 1 s.
        assert_eq!(mk(1 << 30, 0).expected_finish_with_transfer(1e9), 2.0);
        let cold = mk(0, 1 << 30).expected_finish_with_transfer(1e9);
        assert!((cold - (2.0 + 1.073741824)).abs() < 1e-9);
        // Degenerate bandwidth cannot divide by zero.
        assert!(mk(0, 100).expected_finish_with_transfer(0.0).is_finite());
    }

    #[test]
    fn saturation_tracks_admission_limit() {
        let mut e = Estimate {
            server: "s".into(),
            queue_length: 4,
            ..Estimate::default()
        };
        // Unbounded SeDs never report saturated.
        assert!(!e.is_saturated());
        e.admission_limit = Some(8);
        assert!(!e.is_saturated());
        e.admission_limit = Some(4);
        assert!(e.is_saturated());
        e.queue_length = 3;
        assert!(!e.is_saturated());
    }

    #[test]
    fn concurrent_updates_are_consistent() {
        let t = LoadTracker::new();
        let mut handles = vec![];
        for _ in 0..8 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    t.enqueue();
                    t.finish(0.001);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.queue_length(), 0);
        assert_eq!(t.completed(), 8000);
    }
}
