//! Error type shared across the middleware.

use std::fmt;

/// All the ways a DIET operation can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum DietError {
    /// No server declares the requested service.
    ServiceNotFound(String),
    /// A server declared the service but none is currently reachable.
    NoServerAvailable(String),
    /// Profile does not match the service's declared description.
    ProfileMismatch { service: String, detail: String },
    /// Argument index out of the profile's declared range.
    BadArgIndex { index: usize, last_out: usize },
    /// Type error when reading an argument.
    TypeMismatch {
        index: usize,
        expected: &'static str,
        got: &'static str,
    },
    /// The solve function reported a failure (the paper's "integer for error
    /// control" convention: non-zero status means the tarball is invalid).
    SolveFailed { service: String, status: i32 },
    /// Transport-level failure.
    Transport(String),
    /// Wire-format decode failure.
    Codec(String),
    /// Persistent data id not found on the server.
    DataNotFound(String),
    /// The SeD rejected the request (e.g. draining / shutting down).
    Rejected(String),
    /// The server is saturated (accept queue or admission limit full);
    /// the request was not started. Retryable with backoff — the server
    /// is healthy, just loaded, so it must NOT count as a failure strike.
    Busy,
    /// Client used before `initialize` or after `finalize`.
    NotInitialized,
    /// Deployment description inconsistent.
    Deployment(String),
    /// Request timed out.
    Timeout { after_secs: f64 },
    /// Every retry attempt failed; `last` is the final attempt's error.
    RetriesExhausted {
        service: String,
        attempts: u32,
        last: String,
    },
}

impl fmt::Display for DietError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DietError::ServiceNotFound(s) => write!(f, "service not found: {s}"),
            DietError::NoServerAvailable(s) => {
                write!(f, "no server available for service: {s}")
            }
            DietError::ProfileMismatch { service, detail } => {
                write!(f, "profile mismatch for {service}: {detail}")
            }
            DietError::BadArgIndex { index, last_out } => {
                write!(f, "argument index {index} beyond last_out {last_out}")
            }
            DietError::TypeMismatch {
                index,
                expected,
                got,
            } => write!(f, "argument {index}: expected {expected}, got {got}"),
            DietError::SolveFailed { service, status } => {
                write!(f, "solve of {service} failed with status {status}")
            }
            DietError::Transport(s) => write!(f, "transport error: {s}"),
            DietError::Codec(s) => write!(f, "codec error: {s}"),
            DietError::DataNotFound(id) => write!(f, "persistent data not found: {id}"),
            DietError::Rejected(s) => write!(f, "request rejected: {s}"),
            DietError::Busy => write!(f, "server busy: admission queue full"),
            DietError::NotInitialized => write!(f, "DIET session not initialized"),
            DietError::Deployment(s) => write!(f, "deployment error: {s}"),
            DietError::Timeout { after_secs } => {
                write!(f, "request timed out after {after_secs}s")
            }
            DietError::RetriesExhausted {
                service,
                attempts,
                last,
            } => write!(
                f,
                "all {attempts} attempts of {service} failed; last error: {last}"
            ),
        }
    }
}

impl std::error::Error for DietError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DietError::ServiceNotFound("ramsesZoom2".into());
        assert!(e.to_string().contains("ramsesZoom2"));
        let e = DietError::SolveFailed {
            service: "ramsesZoom2".into(),
            status: 3,
        };
        assert!(e.to_string().contains('3'));
        let e = DietError::TypeMismatch {
            index: 4,
            expected: "scalar i32",
            got: "file",
        };
        assert!(e.to_string().contains("scalar i32"));
        let e = DietError::RetriesExhausted {
            service: "ramsesZoom2".into(),
            attempts: 4,
            last: "transport error: peer gone".into(),
        };
        assert!(e.to_string().contains('4') && e.to_string().contains("peer gone"));
    }
}
