//! The MA-DAG workflow engine: typed task DAGs scheduled inside the agent
//! hierarchy.
//!
//! The follow-up paper runs the full `grafic → ramses → galics` zoom
//! pipeline as a DIET workflow handled by an MA-DAG agent instead of a
//! client driving each stage and round-tripping every intermediate snapshot.
//! This module is that agent: clients ship a [`WorkflowSpec`] (nodes =
//! service profiles, edges = data-flow) in a `SubmitDag` frame; the engine
//! owns the per-node state machines
//!
//! ```text
//! Pending ──deps done──▶ Ready ──resolve──▶ Placed ──call──▶ Running
//!                                                              │
//!                                 Done ◀──first reply wins─────┤
//!                                 Failed ◀──rejected/retries───┘
//!                                 Cancelled ◀── upstream failed, or the
//!                                               client disconnected
//! ```
//!
//! and drives the existing middleware underneath: placement goes through
//! [`MasterAgent::resolve`] with the node's input data-ref ids, so the
//! DAGDA replica catalog and the `DataLocal` estimate terms pull a stage
//! onto the SeD already holding its inputs; the solve goes through the
//! [`TcpSedPool`] — data moves SeD-to-SeD, never through the client.
//!
//! **Data-flow via tagged services.** Before placing node `n` of dag `d`,
//! the engine rewrites the profile's service name to `svc@d<d>.n<n>`. The
//! SeD looks the service up under its canonical name (everything before
//! `@`) but, seeing the tag, retains *every* payload-bearing argument of
//! the completed profile under `svc@d<d>.n<n>#<arg>` and collapses those
//! arguments to [`DietValue::DataRef`]s in the reply. Downstream nodes
//! declare [`DagInput`] edges; the engine wires each one as a `DataRef` to
//! the upstream node's published id. Intermediate snapshots therefore live
//! only on SeDs, and the tag makes ids collision-free across concurrent
//! dags — plus deterministic solves produce checksum-identical replicas, so
//! speculative duplicates publish safely under the same id.
//!
//! **Failure handling** reuses the client retry semantics: transport faults
//! and timeouts blame the SeD ([`MasterAgent::report_failure`]), exclude it
//! and relaunch up to the node's retry budget; `Busy` backs off without
//! blame; an application rejection fails the node and cancels its
//! descendants. A background monitor adds **speculation**: when a running
//! node exceeds `k×` the running median duration of its service, a
//! duplicate launches on a different SeD — first completion wins, the
//! loser's reply is discarded (counted in `diet_dag_spec_losses_total`).
//! The same monitor watches the submitting connection: a client that
//! disconnects mid-dag cancels every node not yet placed
//! (`diet_dag_cancelled_total`) and lets running solves drain.

use crate::agent::MasterAgent;
use crate::data::{DietValue, Persistence};
use crate::error::DietError;
use crate::profile::Profile;
use crate::reactor::ConnHandle;
use crate::transport::TcpSedPool;
use obs::TraceCtx;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

// ------------------------------------------------------------- wire-level types

/// A client-submitted workflow: a DAG of service invocations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkflowSpec {
    /// Human-readable workflow name (labels events and telemetry).
    pub name: String,
    pub nodes: Vec<DagNodeSpec>,
}

/// One node of a workflow DAG: a service profile plus its data-flow edges.
#[derive(Debug, Clone, PartialEq)]
pub struct DagNodeSpec {
    /// Dag-unique node id (also the ordering key for events).
    pub id: u32,
    /// The profile to solve. IN arguments fed by upstream nodes may be left
    /// `Null` — [`DagNodeSpec::inputs`] overwrites them at launch.
    pub profile: Profile,
    /// Nodes that must be `Done` before this one becomes `Ready`.
    pub deps: Vec<u32>,
    /// Data-flow edges: argument `arg` is wired to the value upstream node
    /// `from_node` produced in its argument `from_arg` (as a grid data ref —
    /// the payload never leaves the SeDs).
    pub inputs: Vec<DagInput>,
    /// Registered expander run MA-side when this node completes, producing
    /// follow-up nodes from the result (the zoom fan-out: part-2 targets are
    /// only known once part 1's halo catalog exists).
    pub expander: Option<String>,
    /// Free-form parameters the expander reads (e.g. `max_zooms`).
    pub params: Vec<(String, String)>,
    /// Relaunch budget for retryable faults (transport, timeout).
    pub max_retries: u32,
}

impl DagNodeSpec {
    pub fn new(id: u32, profile: Profile) -> Self {
        DagNodeSpec {
            id,
            profile,
            deps: Vec::new(),
            inputs: Vec::new(),
            expander: None,
            params: Vec::new(),
            max_retries: 2,
        }
    }
}

/// One data-flow edge of a [`DagNodeSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagInput {
    /// Argument index in this node's profile.
    pub arg: u32,
    /// Upstream node id (must also appear in `deps`).
    pub from_node: u32,
    /// Argument index of the upstream node's published output.
    pub from_arg: u32,
}

/// Node lifecycle states (wire-encoded as one byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagNodeState {
    Pending = 0,
    Ready = 1,
    Placed = 2,
    Running = 3,
    Done = 4,
    Failed = 5,
    Cancelled = 6,
}

impl DagNodeState {
    pub fn from_u8(b: u8) -> Option<DagNodeState> {
        Some(match b {
            0 => DagNodeState::Pending,
            1 => DagNodeState::Ready,
            2 => DagNodeState::Placed,
            3 => DagNodeState::Running,
            4 => DagNodeState::Done,
            5 => DagNodeState::Failed,
            6 => DagNodeState::Cancelled,
            _ => return None,
        })
    }

    /// Terminal states never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            DagNodeState::Done | DagNodeState::Failed | DagNodeState::Cancelled
        )
    }
}

/// One progress event in a dag's ordered stream (polled via `DagStatus`).
#[derive(Debug, Clone, PartialEq)]
pub struct DagEventRec {
    /// Monotonic per-dag sequence number (the poll cursor).
    pub seq: u64,
    pub node: u32,
    pub state: DagNodeState,
    /// SeD label, error string, or other context for the transition.
    pub detail: String,
    /// Milliseconds since the dag was submitted.
    pub at_ms: u64,
}

/// Terminal record for one node.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DagNodeOutcome {
    pub node: u32,
    /// Canonical service name (untagged).
    pub service: String,
    /// SeD whose reply won (empty if the node never ran).
    pub sed: String,
    /// 0 for a completed node; -1 for failed/cancelled.
    pub status: i32,
    pub attempts: u32,
    /// A speculative duplicate was launched for this node.
    pub speculated: bool,
    pub duration_ms: u64,
    /// Published outputs: `(arg index, grid data id)` — fetch through the
    /// pool from `sed` if the payload itself is wanted client-side.
    pub outputs: Vec<(u32, String)>,
    /// Scalar results kept inline (service status codes and the like).
    pub scalars: Vec<(u32, i64)>,
}

/// Terminal record for a whole dag.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DagOutcome {
    pub dag_id: u64,
    /// Every node completed.
    pub ok: bool,
    pub makespan_ms: u64,
    /// Nodes cancelled (upstream failure or client disconnect).
    pub cancelled: u32,
    pub nodes: Vec<DagNodeOutcome>,
}

// ------------------------------------------------------------------- expanders

/// Everything an expander may consult when a node completes.
pub struct ExpandCtx<'a> {
    pub dag_id: u64,
    /// The completed node's id.
    pub node: u32,
    /// The completed node's reply profile (payload args collapsed to refs).
    pub reply: &'a Profile,
    /// The node's published outputs `(arg, id)`.
    pub outputs: &'a [(u32, String)],
    /// The node spec's parameters.
    pub params: &'a [(String, String)],
    /// Smallest node id not yet taken — expanders number new nodes from
    /// here up.
    pub next_id: u32,
    /// Pull a published value out of the grid (catalog lookup + SeD fetch) —
    /// the engine-side data plane; nothing reaches the submitting client.
    pub fetch: &'a dyn Fn(&str) -> Result<DietValue, DietError>,
}

impl ExpandCtx<'_> {
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The published id of the completed node's argument `arg`.
    pub fn output_id(&self, arg: u32) -> Option<&str> {
        self.outputs
            .iter()
            .find(|(a, _)| *a == arg)
            .map(|(_, id)| id.as_str())
    }
}

/// A dynamic fan-out hook: turn one completed node into follow-up nodes.
pub type DagExpander =
    Arc<dyn Fn(&ExpandCtx<'_>) -> Result<Vec<DagNodeSpec>, DietError> + Send + Sync>;

// ------------------------------------------------------------------ run state

struct NodeRun {
    spec: DagNodeSpec,
    /// Untagged service name (what the hierarchy resolves).
    canonical: String,
    /// `svc@d<dag>.n<node>` — the collision-free publication namespace.
    tagged: String,
    state: DagNodeState,
    attempts: u32,
    /// SeDs blamed for transport faults on this node.
    excluded: Vec<String>,
    /// SeDs currently holding an in-flight attempt (primary + speculative).
    placed_on: Vec<String>,
    launched_at: Option<Instant>,
    speculated: bool,
    detail: String,
    /// Winning reply (payload args collapsed to refs).
    reply: Option<Profile>,
    won_by: String,
    duration_ms: u64,
}

impl NodeRun {
    fn outcome(&self) -> DagNodeOutcome {
        let mut outputs = Vec::new();
        let mut scalars = Vec::new();
        if let Some(reply) = &self.reply {
            for (i, v) in reply.values.iter().enumerate() {
                match v {
                    DietValue::DataRef { id } => outputs.push((i as u32, id.clone())),
                    DietValue::ScalarI32(x) => scalars.push((i as u32, *x as i64)),
                    DietValue::ScalarI64(x) => scalars.push((i as u32, *x)),
                    _ => {}
                }
            }
        }
        DagNodeOutcome {
            node: self.spec.id,
            service: self.canonical.clone(),
            sed: self.won_by.clone(),
            status: if self.state == DagNodeState::Done {
                0
            } else {
                -1
            },
            attempts: self.attempts,
            speculated: self.speculated,
            duration_ms: self.duration_ms,
            outputs,
            scalars,
        }
    }
}

struct DagRun {
    id: u64,
    name: String,
    trace_id: u64,
    submitted: Instant,
    /// The submitting connection — a closed one cancels the dag.
    conn: Option<ConnHandle>,
    nodes: BTreeMap<u32, NodeRun>,
    events: Vec<DagEventRec>,
    seq: u64,
    outcome: Option<DagOutcome>,
}

impl DagRun {
    fn push_event(&mut self, node: u32, state: DagNodeState, detail: impl Into<String>) {
        self.seq += 1;
        self.events.push(DagEventRec {
            seq: self.seq,
            node,
            state,
            detail: detail.into(),
            at_ms: self.submitted.elapsed().as_millis() as u64,
        });
    }

    fn set_state(&mut self, node: u32, state: DagNodeState, detail: impl Into<String>) {
        let detail = detail.into();
        if let Some(n) = self.nodes.get_mut(&node) {
            n.state = state;
            if !detail.is_empty() {
                n.detail = detail.clone();
            }
        }
        self.push_event(node, state, detail);
    }

    fn finished(&self) -> bool {
        self.nodes.values().all(|n| n.state.is_terminal())
    }

    /// Node ids whose deps are all `Done` and are still `Pending`.
    fn newly_ready(&self) -> Vec<u32> {
        self.nodes
            .values()
            .filter(|n| {
                n.state == DagNodeState::Pending
                    && n.spec.deps.iter().all(|d| {
                        self.nodes
                            .get(d)
                            .is_some_and(|up| up.state == DagNodeState::Done)
                    })
            })
            .map(|n| n.spec.id)
            .collect()
    }

    /// Transitively cancel every non-terminal descendant of `root`.
    fn cancel_descendants(&mut self, root: u32) -> usize {
        let mut doomed: HashSet<u32> = HashSet::new();
        doomed.insert(root);
        // Fixed point over the dependency edges (the node set is small).
        loop {
            let next: Vec<u32> = self
                .nodes
                .values()
                .filter(|n| {
                    !doomed.contains(&n.spec.id)
                        && !n.state.is_terminal()
                        && n.spec.deps.iter().any(|d| doomed.contains(d))
                })
                .map(|n| n.spec.id)
                .collect();
            if next.is_empty() {
                break;
            }
            doomed.extend(next);
        }
        doomed.remove(&root);
        let mut cancelled = 0;
        for id in doomed {
            if self.nodes.get(&id).is_some_and(|n| !n.state.is_terminal()) {
                self.set_state(id, DagNodeState::Cancelled, "upstream failed");
                cancelled += 1;
            }
        }
        cancelled
    }

    fn next_node_id(&self) -> u32 {
        self.nodes.keys().max().map(|m| m + 1).unwrap_or(0)
    }

    fn build_outcome(&self) -> DagOutcome {
        let nodes: Vec<DagNodeOutcome> = self.nodes.values().map(NodeRun::outcome).collect();
        DagOutcome {
            dag_id: self.id,
            ok: self.nodes.values().all(|n| n.state == DagNodeState::Done),
            makespan_ms: self.submitted.elapsed().as_millis() as u64,
            cancelled: self
                .nodes
                .values()
                .filter(|n| n.state == DagNodeState::Cancelled)
                .count() as u32,
            nodes,
        }
    }
}

// --------------------------------------------------------------------- engine

/// Tuning knobs for the engine.
#[derive(Debug, Clone)]
pub struct DagEngineConfig {
    /// Per-attempt call deadline against the chosen SeD.
    pub attempt_timeout: Duration,
    /// Launch a duplicate when a running node exceeds this multiple of the
    /// running median duration for its service.
    pub speculate_factor: f64,
    /// Median samples required before speculation arms.
    pub speculate_min_samples: usize,
    /// Straggler/disconnect sweep cadence.
    pub monitor_interval: Duration,
    /// Backoff between `Busy` re-attempts.
    pub busy_backoff: Duration,
}

impl Default for DagEngineConfig {
    fn default() -> Self {
        DagEngineConfig {
            attempt_timeout: Duration::from_secs(60),
            speculate_factor: 3.0,
            speculate_min_samples: 3,
            monitor_interval: Duration::from_millis(20),
            busy_backoff: Duration::from_millis(50),
        }
    }
}

/// The MA-side workflow engine. One per served Master Agent; shares the
/// MA's [`Obs`](obs::Obs) so dag spans and `diet_dag_*` metrics land next
/// to the finding-phase telemetry.
pub struct DagEngine {
    ma: Arc<MasterAgent>,
    pool: Arc<TcpSedPool>,
    cfg: DagEngineConfig,
    obs: Arc<obs::Obs>,
    expanders: RwLock<HashMap<String, DagExpander>>,
    dags: Mutex<HashMap<u64, Arc<Mutex<DagRun>>>>,
    next_dag: AtomicU64,
    /// Completed wall-clock durations per canonical service (speculation's
    /// running median).
    durations: Mutex<HashMap<String, Vec<f64>>>,
    stop: AtomicBool,
}

impl Drop for DagEngine {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
    }
}

impl DagEngine {
    /// Stand the engine up next to an in-process MA handle. Spawns the
    /// monitor thread; it exits when the engine is dropped or
    /// [`shutdown`](Self::shutdown) is called.
    pub fn new(ma: Arc<MasterAgent>, pool: Arc<TcpSedPool>, cfg: DagEngineConfig) -> Arc<Self> {
        let obs = ma.obs();
        let engine = Arc::new(DagEngine {
            ma,
            pool,
            cfg,
            obs,
            expanders: RwLock::new(HashMap::new()),
            dags: Mutex::new(HashMap::new()),
            next_dag: AtomicU64::new(0),
            durations: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
        });
        let weak: Weak<DagEngine> = Arc::downgrade(&engine);
        let interval = engine.cfg.monitor_interval;
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            let Some(eng) = weak.upgrade() else { break };
            if eng.stop.load(Ordering::Acquire) {
                break;
            }
            eng.monitor_tick();
        });
        engine
    }

    /// Stop the monitor thread (deployment teardown).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Register a dynamic fan-out hook under `name` (referenced by
    /// [`DagNodeSpec::expander`]).
    pub fn register_expander(&self, name: &str, f: DagExpander) {
        self.expanders.write().insert(name.to_string(), f);
    }

    /// Validate and admit a workflow; returns the dag id immediately (the
    /// client polls progress via [`status`](Self::status)). `conn`, when
    /// given, ties the dag's life to the submitting connection.
    pub fn submit(
        self: &Arc<Self>,
        spec: WorkflowSpec,
        ctx: TraceCtx,
        conn: Option<ConnHandle>,
    ) -> Result<u64, DietError> {
        validate_spec(&spec)?;
        let dag_id = self.next_dag.fetch_add(1, Ordering::Relaxed) + 1;
        let trace_id = if ctx.trace_id != 0 {
            ctx.trace_id
        } else {
            self.obs.tracer.new_trace()
        };
        let mut nodes = BTreeMap::new();
        for n in &spec.nodes {
            nodes.insert(n.id, self.node_run(dag_id, n));
        }
        let n_nodes = nodes.len();
        let run = Arc::new(Mutex::new(DagRun {
            id: dag_id,
            name: spec.name.clone(),
            trace_id,
            submitted: Instant::now(),
            conn,
            nodes,
            events: Vec::new(),
            seq: 0,
            outcome: None,
        }));
        self.dags.lock().insert(dag_id, run.clone());
        let m = &self.obs.metrics;
        m.counter("diet_dag_submitted_total").inc();
        m.counter("diet_dag_nodes_total").add(n_nodes as u64);
        m.gauge("diet_dag_running").set(self.running_dags() as f64);
        // Roots launch immediately; everything else waits on its in-edges.
        let ready = run.lock().newly_ready();
        for id in ready {
            self.mark_ready_and_launch(&run, id);
        }
        Ok(dag_id)
    }

    /// Events after `since` (the poll cursor) plus the outcome once the
    /// dag is finished.
    pub fn status(
        &self,
        dag_id: u64,
        since: u64,
    ) -> Result<(Vec<DagEventRec>, Option<DagOutcome>), DietError> {
        let run = self
            .dags
            .lock()
            .get(&dag_id)
            .cloned()
            .ok_or_else(|| DietError::Rejected(format!("unknown dag {dag_id}")))?;
        let g = run.lock();
        let events = g.events.iter().filter(|e| e.seq > since).cloned().collect();
        Ok((events, g.outcome.clone()))
    }

    /// Outcome of a finished dag (None while it runs).
    pub fn outcome(&self, dag_id: u64) -> Option<DagOutcome> {
        let run = self.dags.lock().get(&dag_id).cloned()?;
        let g = run.lock();
        g.outcome.clone()
    }

    /// Dags admitted and not yet finished.
    pub fn running_dags(&self) -> usize {
        self.dags
            .lock()
            .values()
            .filter(|r| r.lock().outcome.is_none())
            .count()
    }

    fn node_run(&self, dag_id: u64, spec: &DagNodeSpec) -> NodeRun {
        let canonical = spec.profile.service.clone();
        NodeRun {
            tagged: format!("{canonical}@d{dag_id}.n{}", spec.id),
            canonical,
            spec: spec.clone(),
            state: DagNodeState::Pending,
            attempts: 0,
            excluded: Vec::new(),
            placed_on: Vec::new(),
            launched_at: None,
            speculated: false,
            detail: String::new(),
            reply: None,
            won_by: String::new(),
            duration_ms: 0,
        }
    }

    fn mark_ready_and_launch(self: &Arc<Self>, run: &Arc<Mutex<DagRun>>, node: u32) {
        {
            let mut g = run.lock();
            match g.nodes.get(&node) {
                Some(n) if n.state == DagNodeState::Pending => {}
                _ => return,
            }
            g.set_state(node, DagNodeState::Ready, "");
        }
        self.launch(run, node, false);
    }

    /// Spawn one attempt for `node` (primary or speculative duplicate).
    fn launch(self: &Arc<Self>, run: &Arc<Mutex<DagRun>>, node: u32, speculative: bool) {
        let engine = self.clone();
        let run = run.clone();
        std::thread::spawn(move || engine.attempt_loop(&run, node, speculative));
    }

    /// One node's placement + call loop: resolve, call, classify the
    /// failure, maybe relaunch — the engine-side mirror of the client's
    /// `call_with_retry`.
    fn attempt_loop(self: &Arc<Self>, run: &Arc<Mutex<DagRun>>, node: u32, speculative: bool) {
        let m = &self.obs.metrics;
        loop {
            // ---- snapshot the node and wire its inputs -------------------
            let (profile, canonical, data_ids, exclude, trace_id, may_retry) = {
                let mut g = run.lock();
                let Some(n) = g.nodes.get(&node) else { return };
                match (speculative, n.state) {
                    // A primary attempt runs from Ready (or a relaunch from
                    // Running); a speculative one only joins a live node.
                    (false, DagNodeState::Ready | DagNodeState::Placed | DagNodeState::Running) => {
                    }
                    (true, DagNodeState::Running) => {}
                    _ => return,
                }
                let mut profile = n.spec.profile.clone();
                profile.service = n.tagged.clone();
                // Wire data-flow edges to the upstream publications.
                for input in &n.spec.inputs {
                    let Some(up) = g.nodes.get(&input.from_node) else {
                        continue;
                    };
                    let id = format!("{}#{}", up.tagged, input.from_arg);
                    let idx = input.arg as usize;
                    if idx < profile.values.len() {
                        profile.values[idx] = DietValue::data_ref(&id);
                        profile.persistence[idx] = Persistence::Persistent;
                    }
                }
                let n = g.nodes.get_mut(&node).unwrap();
                n.attempts += 1;
                let mut exclude = n.excluded.clone();
                if speculative {
                    // The duplicate must land somewhere new.
                    exclude.extend(n.placed_on.iter().cloned());
                }
                let may_retry = n.attempts <= n.spec.max_retries + 1;
                let data_ids = profile.data_ref_ids();
                let canonical = n.canonical.clone();
                let trace_id = g.trace_id;
                if !speculative {
                    g.set_state(node, DagNodeState::Placed, "");
                }
                (profile, canonical, data_ids, exclude, trace_id, may_retry)
            };
            let ctx = TraceCtx {
                trace_id,
                parent_span: 0,
            };

            // ---- finding: place through the hierarchy --------------------
            let label = match self.ma.resolve(&canonical, &data_ids, &exclude, ctx) {
                Ok(label) => label,
                Err(DietError::Busy) => {
                    std::thread::sleep(self.cfg.busy_backoff);
                    continue;
                }
                Err(e) => {
                    // No candidate (everything excluded/dead, or the service
                    // vanished). A retry-budgeted node waits a beat — a
                    // recovering SeD may come back; otherwise it fails.
                    if may_retry {
                        m.counter("diet_dag_node_retries_total").inc();
                        std::thread::sleep(self.cfg.busy_backoff);
                        continue;
                    }
                    self.fail_node(run, node, &format!("no placement: {e}"));
                    return;
                }
            };

            {
                let mut g = run.lock();
                let Some(n) = g.nodes.get_mut(&node) else {
                    return;
                };
                if n.state.is_terminal() {
                    return;
                }
                n.placed_on.push(label.clone());
                if n.launched_at.is_none() || !speculative {
                    n.launched_at = Some(Instant::now());
                }
                g.set_state(node, DagNodeState::Running, label.clone());
            }

            // ---- submission: call the SeD directly -----------------------
            let started = Instant::now();
            let start_ns = self.obs.tracer.now_ns();
            let res = self
                .pool
                .call_traced(&label, profile, self.cfg.attempt_timeout, ctx);
            if trace_id != 0 {
                self.obs.tracer.record_window(
                    trace_id,
                    0,
                    "DagNode",
                    &label,
                    start_ns,
                    self.obs.tracer.now_ns(),
                );
            }
            match res {
                Ok((reply, _queue_wait, _solve)) => {
                    self.complete_node(run, node, &label, reply, started.elapsed());
                    return;
                }
                Err(DietError::Busy) => {
                    self.unplace(run, node, &label);
                    std::thread::sleep(self.cfg.busy_backoff);
                    continue;
                }
                Err(e @ (DietError::Transport(_) | DietError::Timeout { .. })) => {
                    // Blame the SeD like the client retry path does, so the
                    // heartbeat/deregistration machinery sees the fault.
                    if let Some(sed) = self
                        .ma
                        .all_seds()
                        .into_iter()
                        .find(|s| s.config.label == label)
                    {
                        self.ma.report_failure(&sed);
                    }
                    self.unplace(run, node, &label);
                    {
                        let mut g = run.lock();
                        if let Some(n) = g.nodes.get_mut(&node) {
                            n.excluded.push(label.clone());
                        }
                    }
                    if may_retry {
                        m.counter("diet_dag_node_retries_total").inc();
                        continue;
                    }
                    self.fail_node(run, node, &format!("{label}: {e}"));
                    return;
                }
                Err(e) => {
                    // Application-level rejection: the request was handled
                    // and failed — resubmitting would repeat it.
                    self.unplace(run, node, &label);
                    self.fail_node(run, node, &format!("{label}: {e}"));
                    return;
                }
            }
        }
    }

    fn unplace(&self, run: &Arc<Mutex<DagRun>>, node: u32, label: &str) {
        let mut g = run.lock();
        if let Some(n) = g.nodes.get_mut(&node) {
            if let Some(pos) = n.placed_on.iter().position(|l| l == label) {
                n.placed_on.remove(pos);
            }
        }
    }

    /// First completed attempt wins; later ones are speculation losers.
    fn complete_node(
        self: &Arc<Self>,
        run: &Arc<Mutex<DagRun>>,
        node: u32,
        label: &str,
        reply: Profile,
        took: Duration,
    ) {
        let m = &self.obs.metrics;
        let (canonical, expand_job) = {
            let mut g = run.lock();
            let Some(n) = g.nodes.get_mut(&node) else {
                return;
            };
            if n.state.is_terminal() {
                if n.state == DagNodeState::Done {
                    m.counter("diet_dag_spec_losses_total").inc();
                }
                return;
            }
            n.reply = Some(reply.clone());
            n.won_by = label.to_string();
            n.duration_ms = took.as_millis() as u64;
            let canonical = n.canonical.clone();
            let expander = n.spec.expander.clone();
            let params = n.spec.params.clone();
            let expand_job = expander.map(|name| (name, params, g.next_node_id(), g.id));
            g.set_state(node, DagNodeState::Done, label);
            (canonical, expand_job)
        };
        self.durations
            .lock()
            .entry(canonical)
            .or_default()
            .push(took.as_secs_f64());

        // ---- dynamic fan-out ----------------------------------------------
        if let Some((name, params, next_id, dag_id)) = expand_job {
            match self.expand(run, node, &name, &params, next_id, dag_id) {
                Ok(new_nodes) => {
                    m.counter("diet_dag_nodes_total").add(new_nodes as u64);
                }
                Err(e) => {
                    // The fan-out source completed but its expansion is the
                    // dag's continuation — failing it fails the dag.
                    self.fail_node(run, node, &format!("expand {name}: {e}"));
                    return;
                }
            }
        }

        // ---- release downstream nodes -------------------------------------
        let ready = run.lock().newly_ready();
        for id in ready {
            self.mark_ready_and_launch(run, id);
        }
        self.maybe_finish(run);
    }

    /// Run a registered expander and insert the nodes it produced.
    fn expand(
        self: &Arc<Self>,
        run: &Arc<Mutex<DagRun>>,
        node: u32,
        name: &str,
        params: &[(String, String)],
        next_id: u32,
        dag_id: u64,
    ) -> Result<usize, DietError> {
        let expander = self
            .expanders
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DietError::Rejected(format!("no expander {name:?} registered")))?;
        let (reply, outputs) = {
            let g = run.lock();
            let n = g
                .nodes
                .get(&node)
                .ok_or_else(|| DietError::Rejected("node vanished".into()))?;
            let reply = n
                .reply
                .clone()
                .ok_or_else(|| DietError::Rejected("no reply to expand".into()))?;
            (reply, n.outcome().outputs)
        };
        let catalog = self.ma.catalog();
        let pool = self.pool.clone();
        let fetch = move |id: &str| -> Result<DietValue, DietError> {
            let cat = catalog
                .as_ref()
                .ok_or_else(|| DietError::DataNotFound(id.to_string()))?;
            let rep = cat
                .locate(id)
                .ok_or_else(|| DietError::DataNotFound(id.to_string()))?;
            pool.get_data(&rep.sed, id, Duration::from_secs(30))
                .map(|(v, _)| v)
        };
        let ctx = ExpandCtx {
            dag_id,
            node,
            reply: &reply,
            outputs: &outputs,
            params,
            next_id,
            fetch: &fetch,
        };
        let new_nodes = expander(&ctx)?;
        let mut g = run.lock();
        let mut inserted = 0;
        for spec in new_nodes {
            if g.nodes.contains_key(&spec.id) {
                return Err(DietError::Rejected(format!(
                    "expander produced duplicate node id {}",
                    spec.id
                )));
            }
            let id = spec.id;
            let nr = self.node_run(g.id, &spec);
            g.nodes.insert(id, nr);
            g.push_event(
                id,
                DagNodeState::Pending,
                format!("expanded from node {node}"),
            );
            inserted += 1;
        }
        Ok(inserted)
    }

    fn fail_node(self: &Arc<Self>, run: &Arc<Mutex<DagRun>>, node: u32, detail: &str) {
        let m = &self.obs.metrics;
        {
            let mut g = run.lock();
            match g.nodes.get(&node) {
                Some(n) if !n.state.is_terminal() => {}
                _ => return,
            }
            g.set_state(node, DagNodeState::Failed, detail);
            m.counter("diet_dag_node_failures_total").inc();
            let cancelled = g.cancel_descendants(node);
            m.counter("diet_dag_cancelled_total").add(cancelled as u64);
        }
        self.maybe_finish(run);
    }

    /// Finalize the dag once every node is terminal.
    fn maybe_finish(self: &Arc<Self>, run: &Arc<Mutex<DagRun>>) {
        let m = &self.obs.metrics;
        let mut g = run.lock();
        if g.outcome.is_some() || !g.finished() {
            return;
        }
        let outcome = g.build_outcome();
        if outcome.ok {
            m.counter("diet_dag_completed_total").inc();
        } else {
            m.counter("diet_dag_failed_total").inc();
        }
        m.histogram("diet_dag_makespan_seconds")
            .observe(outcome.makespan_ms as f64 / 1e3);
        let finish_detail = format!(
            "dag {} finished ({})",
            g.name,
            if outcome.ok { "ok" } else { "failed" }
        );
        g.push_event(
            u32::MAX,
            if outcome.ok {
                DagNodeState::Done
            } else {
                DagNodeState::Failed
            },
            finish_detail,
        );
        g.outcome = Some(outcome);
        drop(g);
        m.gauge("diet_dag_running").set(self.running_dags() as f64);
    }

    /// The periodic sweep: client-disconnect cancellation and straggler
    /// speculation.
    fn monitor_tick(self: &Arc<Self>) {
        let runs: Vec<Arc<Mutex<DagRun>>> = self.dags.lock().values().cloned().collect();
        let m = &self.obs.metrics;
        for run in runs {
            // ---- cancel-on-disconnect -------------------------------------
            let mut spec_targets: Vec<u32> = Vec::new();
            {
                let mut g = run.lock();
                if g.outcome.is_some() {
                    continue;
                }
                if g.conn.as_ref().is_some_and(|c| c.is_closed()) {
                    let doomed: Vec<u32> = g
                        .nodes
                        .values()
                        .filter(|n| matches!(n.state, DagNodeState::Pending | DagNodeState::Ready))
                        .map(|n| n.spec.id)
                        .collect();
                    for id in &doomed {
                        g.set_state(*id, DagNodeState::Cancelled, "client disconnected");
                    }
                    m.counter("diet_dag_cancelled_total")
                        .add(doomed.len() as u64);
                    // Running nodes drain; the dag finalizes via the sweep.
                }
                // ---- straggler speculation --------------------------------
                let durations = self.durations.lock();
                for n in g.nodes.values() {
                    if n.state != DagNodeState::Running || n.speculated {
                        continue;
                    }
                    let Some(at) = n.launched_at else { continue };
                    let Some(samples) = durations.get(&n.canonical) else {
                        continue;
                    };
                    if samples.len() < self.cfg.speculate_min_samples {
                        continue;
                    }
                    let med = median(samples);
                    if at.elapsed().as_secs_f64() > self.cfg.speculate_factor * med {
                        spec_targets.push(n.spec.id);
                    }
                }
                drop(durations);
                for id in &spec_targets {
                    if let Some(n) = g.nodes.get_mut(id) {
                        n.speculated = true;
                    }
                    g.push_event(*id, DagNodeState::Running, "speculative duplicate launched");
                }
            }
            for id in spec_targets {
                m.counter("diet_dag_speculative_launches_total").inc();
                self.launch(&run, id, true);
            }
            self.maybe_finish(&run);
        }
    }
}

fn median(samples: &[f64]) -> f64 {
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Structural admission checks: unique ids, edges referencing real nodes,
/// input args in range, and acyclicity (Kahn's algorithm).
fn validate_spec(spec: &WorkflowSpec) -> Result<(), DietError> {
    if spec.nodes.is_empty() {
        return Err(DietError::Rejected("empty workflow".into()));
    }
    let mut ids = HashSet::new();
    for n in &spec.nodes {
        if !ids.insert(n.id) {
            return Err(DietError::Rejected(format!("duplicate node id {}", n.id)));
        }
        if n.profile.service.contains('@') {
            return Err(DietError::Rejected(format!(
                "service name {:?} may not contain '@' (reserved for dag tagging)",
                n.profile.service
            )));
        }
    }
    for n in &spec.nodes {
        for d in &n.deps {
            if !ids.contains(d) {
                return Err(DietError::Rejected(format!(
                    "node {} depends on unknown node {d}",
                    n.id
                )));
            }
            if *d == n.id {
                return Err(DietError::Rejected(format!(
                    "node {} depends on itself",
                    n.id
                )));
            }
        }
        for i in &n.inputs {
            if !n.deps.contains(&i.from_node) {
                return Err(DietError::Rejected(format!(
                    "node {} wires input from node {} without depending on it",
                    n.id, i.from_node
                )));
            }
            if i.arg as usize >= n.profile.values.len() {
                return Err(DietError::Rejected(format!(
                    "node {} input arg {} out of range",
                    n.id, i.arg
                )));
            }
        }
    }
    // Kahn: repeatedly strip nodes whose deps are all stripped.
    let mut remaining: HashMap<u32, Vec<u32>> =
        spec.nodes.iter().map(|n| (n.id, n.deps.clone())).collect();
    let mut stripped: HashSet<u32> = HashSet::new();
    loop {
        let next: Vec<u32> = remaining
            .iter()
            .filter(|(_, deps)| deps.iter().all(|d| stripped.contains(d)))
            .map(|(id, _)| *id)
            .collect();
        if next.is_empty() {
            break;
        }
        for id in next {
            remaining.remove(&id);
            stripped.insert(id);
        }
    }
    if !remaining.is_empty() {
        let mut cyclic: Vec<u32> = remaining.into_keys().collect();
        cyclic.sort();
        return Err(DietError::Rejected(format!(
            "workflow has a dependency cycle through nodes {cyclic:?}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ArgTag, ProfileDesc};

    fn node(id: u32, deps: &[u32]) -> DagNodeSpec {
        let mut d = ProfileDesc::alloc("svc", 0, 0, 1);
        d.set_arg(0, ArgTag::Scalar).unwrap();
        d.set_arg(1, ArgTag::Scalar).unwrap();
        let mut n = DagNodeSpec::new(id, Profile::alloc(&d));
        n.deps = deps.to_vec();
        n
    }

    #[test]
    fn validates_structure() {
        let ok = WorkflowSpec {
            name: "w".into(),
            nodes: vec![node(0, &[]), node(1, &[0]), node(2, &[0, 1])],
        };
        assert!(validate_spec(&ok).is_ok());

        assert!(validate_spec(&WorkflowSpec::default()).is_err());

        let dup = WorkflowSpec {
            name: "w".into(),
            nodes: vec![node(0, &[]), node(0, &[])],
        };
        assert!(validate_spec(&dup).is_err());

        let dangling = WorkflowSpec {
            name: "w".into(),
            nodes: vec![node(0, &[9])],
        };
        assert!(validate_spec(&dangling).is_err());

        let cycle = WorkflowSpec {
            name: "w".into(),
            nodes: vec![node(0, &[1]), node(1, &[0])],
        };
        let err = validate_spec(&cycle).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn validates_input_edges() {
        let mut n1 = node(1, &[]);
        n1.inputs = vec![DagInput {
            arg: 0,
            from_node: 0,
            from_arg: 1,
        }];
        // Wiring from node 0 without depending on it is rejected.
        let spec = WorkflowSpec {
            name: "w".into(),
            nodes: vec![node(0, &[]), n1.clone()],
        };
        assert!(validate_spec(&spec).is_err());
        n1.deps = vec![0];
        let spec = WorkflowSpec {
            name: "w".into(),
            nodes: vec![node(0, &[]), n1.clone()],
        };
        assert!(validate_spec(&spec).is_ok());
        // Arg index out of range.
        n1.inputs[0].arg = 9;
        let spec = WorkflowSpec {
            name: "w".into(),
            nodes: vec![node(0, &[]), n1],
        };
        assert!(validate_spec(&spec).is_err());
    }

    #[test]
    fn tagged_service_names_rejected_in_specs() {
        let mut n = node(0, &[]);
        n.profile.service = "svc@d1.n0".into();
        let spec = WorkflowSpec {
            name: "w".into(),
            nodes: vec![n],
        };
        assert!(validate_spec(&spec).is_err());
    }

    #[test]
    fn node_states_roundtrip_as_bytes() {
        for s in [
            DagNodeState::Pending,
            DagNodeState::Ready,
            DagNodeState::Placed,
            DagNodeState::Running,
            DagNodeState::Done,
            DagNodeState::Failed,
            DagNodeState::Cancelled,
        ] {
            assert_eq!(DagNodeState::from_u8(s as u8), Some(s));
        }
        assert_eq!(DagNodeState::from_u8(7), None);
        assert!(DagNodeState::Done.is_terminal());
        assert!(!DagNodeState::Running.is_terminal());
    }

    #[test]
    fn cancel_descendants_is_transitive() {
        let spec = WorkflowSpec {
            name: "w".into(),
            nodes: vec![node(0, &[]), node(1, &[0]), node(2, &[1]), node(3, &[])],
        };
        let mut nodes = BTreeMap::new();
        for n in &spec.nodes {
            nodes.insert(
                n.id,
                NodeRun {
                    tagged: format!("svc@d1.n{}", n.id),
                    canonical: "svc".into(),
                    spec: n.clone(),
                    state: DagNodeState::Pending,
                    attempts: 0,
                    excluded: vec![],
                    placed_on: vec![],
                    launched_at: None,
                    speculated: false,
                    detail: String::new(),
                    reply: None,
                    won_by: String::new(),
                    duration_ms: 0,
                },
            );
        }
        let mut run = DagRun {
            id: 1,
            name: "w".into(),
            trace_id: 0,
            submitted: Instant::now(),
            conn: None,
            nodes,
            events: vec![],
            seq: 0,
            outcome: None,
        };
        run.set_state(0, DagNodeState::Failed, "boom");
        assert_eq!(run.cancel_descendants(0), 2);
        assert_eq!(run.nodes[&1].state, DagNodeState::Cancelled);
        assert_eq!(run.nodes[&2].state, DagNodeState::Cancelled);
        // The independent sibling is untouched.
        assert_eq!(run.nodes[&3].state, DagNodeState::Pending);
    }
}
