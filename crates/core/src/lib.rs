//! # diet-core — a GridRPC middleware in Rust
//!
//! A re-implementation of the DIET middleware architecture the paper builds
//! on: "DIET is built upon the client/agent/server paradigm": **clients**
//! submit problems, a hierarchy of **agents** (one Master Agent, several
//! Local Agents) routes each request to the best **Server Daemon (SeD)**,
//! which runs the registered solve function and ships results back.
//!
//! Where the original used CORBA (omniORB) for its messaging layer, this
//! crate provides its own transport abstraction ([`transport`]): a loss-free
//! in-process channel transport for deterministic tests and experiments, and
//! a TCP transport built on `std::net` for genuinely distributed
//! deployments. The observable middleware behaviour — typed profiles with
//! IN/INOUT/OUT arguments, service registration, hierarchy traversal,
//! scheduling, data staging — matches the paper's Section 4 walk-through.
//!
//! Module map:
//!
//! * [`data`] — typed values and persistence modes (`DIET_VOLATILE`, …).
//! * [`profile`] — problem profiles: the `diet_profile_desc_t` analog.
//! * [`codec`] — binary wire codec for profiles and control messages.
//! * [`transport`] — in-process and TCP duplex message channels.
//! * [`monitor`] — per-SeD load estimates (the FAST/CoRI role).
//! * [`sched`] — plug-in schedulers (the paper's reference \[2\] extension).
//! * [`sed`] — the Server Daemon: service table + worker loop.
//! * [`agent`] — Master/Local Agent hierarchy and request routing.
//! * [`client`] — the GridRPC-style client API (`diet_call` analog).
//! * [`datamgr`] — persistent data management on the server side (bounded
//!   LRU store, sticky pinning).
//! * [`dagda`] — hierarchy-wide data management (DAGDA analog): replica
//!   catalog at the MA, SeD-to-SeD pull resolution, locality accounting.
//! * [`dag`] — the MA-DAG workflow engine: typed task DAGs submitted over
//!   the wire, scheduled node-by-node inside the hierarchy with
//!   data-locality placement, retry, and straggler speculation.
//! * [`jobserver`] — durable campaign jobserver: a crash-recoverable
//!   task queue (WAL + snapshots) dispatching through the hierarchy.
//! * [`deploy`] — deployment descriptions mapping a hierarchy onto a
//!   platform, following the paper's Grid'5000 deployment.
//! * [`error`] — the crate's error type.
//! * [`faults`] — failure injection hooks for fault-tolerance testing.
//! * [`telemetry`] — per-process background flusher shipping spans and
//!   metric deltas to the collector (the LogComponent role).
//! * [`collector`] — the LogCentral analogue: merges every process's
//!   telemetry into one registry/trace store and serves Prometheus,
//!   Chrome-trace, and topology views.
//!
//! Observability (the LogService/VizDIET analogue) comes from the vendored
//! std-only [`obs`] crate: every component owns an [`obs::Obs`] (tracer +
//! metrics registry), trace context crosses the wire inside `Call` frames
//! ([`codec::Message::Call`]), and a deployment that wants one unified view
//! either injects a single shared `Arc<Obs>` via the `*_with_obs`
//! constructors (single-process) or runs a [`collector::Collector`] that
//! distributed components report to over TCP ([`telemetry`]).

pub mod agent;
pub mod client;
pub mod codec;
pub mod collector;
pub mod config;
pub mod dag;
pub mod dagda;
pub mod data;
pub mod datamgr;
pub mod deploy;
pub mod error;
pub mod faults;
pub mod gridrpc;
pub mod hierarchy;
pub mod jobserver;
pub mod monitor;
pub mod naming;
pub mod probe;
pub mod profile;
pub mod reactor;
pub mod sched;
pub mod sed;
pub mod telemetry;
pub mod transport;

pub use agent::{AgentNode, HeartbeatMonitor, MasterAgent};
pub use client::{CallHandle, CallStats, DagHandle, DietClient, RetryPolicy};
pub use codec::ProcessSource;
pub use collector::{serve_collector_over_tcp, Collector, SourceHealth};
pub use config::DietConfig;
pub use dag::{
    DagEngine, DagEngineConfig, DagEventRec, DagExpander, DagInput, DagNodeOutcome, DagNodeSpec,
    DagNodeState, DagOutcome, ExpandCtx, WorkflowSpec,
};
pub use dagda::{DataResolver, ReplicaCatalog, ReplicaInfo};
pub use data::{BaseType, DietValue, Persistence};
pub use datamgr::DataManager;
pub use deploy::TelemetrySpec;
pub use error::DietError;
pub use faults::{FaultAction, FaultPlan};
pub use gridrpc::{grpc_initialize, FunctionHandle, GridRpcSession};
pub use hierarchy::{
    serve_agent_over_tcp, serve_agent_over_tcp_at, serve_ma_over_tcp, serve_ma_over_tcp_at,
    serve_ma_over_tcp_with_dag, serve_sed_over_tcp, serve_sed_over_tcp_with_config, AgentConfig,
    RemoteAgentClient,
};
pub use jobserver::{
    serve_jobserver_over_tcp, CampaignSummary, FailOutcome, JobClient, JobLog, JobServer,
    JobServerConfig, JobStore, JobStoreConfig, MachinePool, TaskEventRec, TaskPayload, TaskState,
    TaskStatusRec,
};
pub use monitor::Estimate;
pub use naming::NameServer;
pub use obs::{Obs, TraceCtx};
pub use profile::{ArgDesc, ArgMode, Profile, ProfileDesc};
pub use reactor::ConnHandle;
pub use sched::{DataLocal, MinQueue, RandomSched, RoundRobin, Scheduler, WeightedSpeed};
pub use sed::{SedConfig, SedHandle, ServiceTable};
pub use telemetry::{TelemetryConfig, TelemetryFlusher};
