//! The GridRPC standard API.
//!
//! "The client API follows the GridRPC definition: all diet_ functions are
//! 'duplicated' with grpc_ functions. Both diet_initialize() /
//! grpc_initialize() and diet_finalize() / grpc_finalize() belong to the
//! GridRPC API. A problem is managed through a *function_handle*, that
//! associates a server to a service name."
//!
//! This module provides that exact surface over the native [`DietClient`]:
//! session management, function handles binding a service name to a chosen
//! server, synchronous/asynchronous calls and session-scoped call ids.

use crate::agent::MasterAgent;
use crate::client::{CallHandle, CallStats, DietClient};
use crate::error::DietError;
use crate::naming::NameServer;
use crate::profile::Profile;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A GridRPC function handle: service name + the server the MA bound it to.
/// ("The returned function_handle is associated to the problem description,
/// its profile, during the call.")
#[derive(Debug, Clone)]
pub struct FunctionHandle {
    pub service: String,
    /// Bound server label; `None` until first use with the default binding
    /// (the MA re-selects per call, DIET's actual behaviour).
    pub server: Option<String>,
}

/// One settled asynchronous call: `(session id, call outcome)`.
pub type WaitOutcome = (u64, Result<(Profile, CallStats), DietError>);

/// A GridRPC session: the client plus outstanding async calls by id.
pub struct GridRpcSession {
    client: DietClient,
    pending: Mutex<HashMap<u64, CallHandle>>,
    next_id: Mutex<u64>,
}

/// `grpc_initialize(config_file)` — resolve the MA via the name server.
pub fn grpc_initialize(config_text: &str, names: &NameServer) -> Result<GridRpcSession, DietError> {
    Ok(GridRpcSession {
        client: DietClient::initialize_from_config(config_text, names)?,
        pending: Mutex::new(HashMap::new()),
        next_id: Mutex::new(0),
    })
}

/// `grpc_initialize` variant for an already-known MA (tests, embedded use).
pub fn grpc_initialize_with_ma(ma: Arc<MasterAgent>) -> GridRpcSession {
    GridRpcSession {
        client: DietClient::initialize(ma),
        pending: Mutex::new(HashMap::new()),
        next_id: Mutex::new(0),
    }
}

impl GridRpcSession {
    /// `grpc_function_handle_default(service)` — the MA picks the server at
    /// call time (DIET's default-handle semantics).
    pub fn function_handle_default(&self, service: &str) -> FunctionHandle {
        FunctionHandle {
            service: service.to_string(),
            server: None,
        }
    }

    /// `grpc_call(handle, profile)` — synchronous.
    pub fn call(
        &self,
        handle: &mut FunctionHandle,
        profile: Profile,
    ) -> Result<(Profile, CallStats), DietError> {
        if profile.service != handle.service {
            return Err(DietError::ProfileMismatch {
                service: handle.service.clone(),
                detail: format!(
                    "handle bound to {}, profile is {}",
                    handle.service, profile.service
                ),
            });
        }
        let h = self.client.async_call(profile)?;
        handle.server = Some(h.server().to_string());
        let server = h.server().to_string();
        let res = h.wait();
        if let Ok((_, stats)) = &res {
            self.client.record(&server, *stats);
        }
        res
    }

    /// `grpc_call_async(handle, profile)` — returns a session call id.
    pub fn call_async(
        &self,
        handle: &mut FunctionHandle,
        profile: Profile,
    ) -> Result<u64, DietError> {
        if profile.service != handle.service {
            return Err(DietError::ProfileMismatch {
                service: handle.service.clone(),
                detail: "profile/handle service mismatch".into(),
            });
        }
        let h = self.client.async_call(profile)?;
        handle.server = Some(h.server().to_string());
        let id = {
            let mut n = self.next_id.lock();
            *n += 1;
            *n
        };
        self.pending.lock().insert(id, h);
        Ok(id)
    }

    /// `grpc_wait(id)` — block for one call.
    pub fn wait(&self, id: u64) -> Result<(Profile, CallStats), DietError> {
        let h = self
            .pending
            .lock()
            .remove(&id)
            .ok_or_else(|| DietError::Rejected(format!("unknown call id {id}")))?;
        let server = h.server().to_string();
        let res = h.wait();
        if let Ok((_, stats)) = &res {
            self.client.record(&server, *stats);
        }
        res
    }

    /// `grpc_wait_all()` — drain every outstanding call, in id order.
    pub fn wait_all(&self) -> Vec<WaitOutcome> {
        let mut ids: Vec<u64> = self.pending.lock().keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().map(|id| (id, self.wait(id))).collect()
    }

    /// `grpc_wait_any()` — wait for whichever completes first (polled).
    pub fn wait_any(&self) -> Option<WaitOutcome> {
        loop {
            let ids: Vec<u64> = self.pending.lock().keys().copied().collect();
            if ids.is_empty() {
                return None;
            }
            for id in ids {
                let Some(h) = self.pending.lock().remove(&id) else {
                    continue; // raced with a concurrent wait(id)
                };
                match h.try_wait() {
                    Ok(done) => {
                        if let Ok((_, stats)) = &done {
                            // Server label lost at this point; record under id.
                            self.client.record(&format!("call-{id}"), *stats);
                        }
                        return Some((id, done));
                    }
                    Err(h) => {
                        self.pending.lock().insert(id, h);
                    }
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Outstanding async calls.
    pub fn pending_count(&self) -> usize {
        self.pending.lock().len()
    }

    /// `grpc_finalize()`.
    pub fn finalize(mut self) -> Vec<(String, CallStats)> {
        self.client.finalize();
        self.client.history()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentNode;
    use crate::data::{DietValue, Persistence};
    use crate::profile::{ArgTag, ProfileDesc};
    use crate::sched::RoundRobin;
    use crate::sed::{SedConfig, SedHandle, ServiceTable, SolveFn};

    fn negate_table() -> ServiceTable {
        let mut d = ProfileDesc::alloc("negate", 0, 0, 1);
        d.set_arg(0, ArgTag::Scalar).unwrap();
        let solve: SolveFn = Arc::new(|p: &mut Profile| {
            let x = p.get_i32(0)?;
            p.set(1, DietValue::ScalarI32(-x), Persistence::Volatile)?;
            Ok(0)
        });
        let mut t = ServiceTable::init(1);
        t.add(d, solve).unwrap();
        t
    }

    fn session(n: usize) -> (GridRpcSession, Vec<Arc<SedHandle>>) {
        let seds: Vec<Arc<SedHandle>> = (0..n)
            .map(|i| SedHandle::spawn(SedConfig::new(&format!("sed{i}"), 1.0), negate_table()))
            .collect();
        let la = AgentNode::leaf("LA", seds.clone());
        let ma = MasterAgent::new("MA", vec![la], Arc::new(RoundRobin::new()));
        (grpc_initialize_with_ma(ma), seds)
    }

    fn profile(x: i32) -> Profile {
        let d = ProfileDesc::alloc("negate", 0, 0, 1);
        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::ScalarI32(x), Persistence::Volatile)
            .unwrap();
        p
    }

    #[test]
    fn grpc_call_binds_handle_to_server() {
        let (s, seds) = session(2);
        let mut h = s.function_handle_default("negate");
        assert!(h.server.is_none());
        let (p, _) = s.call(&mut h, profile(5)).unwrap();
        assert_eq!(p.get_i32(1).unwrap(), -5);
        assert!(h.server.is_some());
        for sed in seds {
            sed.shutdown();
        }
    }

    #[test]
    fn grpc_async_wait_by_id() {
        let (s, seds) = session(3);
        let mut h = s.function_handle_default("negate");
        let a = s.call_async(&mut h, profile(1)).unwrap();
        let b = s.call_async(&mut h, profile(2)).unwrap();
        assert_ne!(a, b);
        assert_eq!(s.pending_count(), 2);
        let (pb, _) = s.wait(b).unwrap();
        assert_eq!(pb.get_i32(1).unwrap(), -2);
        let (pa, _) = s.wait(a).unwrap();
        assert_eq!(pa.get_i32(1).unwrap(), -1);
        assert_eq!(s.pending_count(), 0);
        assert!(s.wait(a).is_err(), "double wait must error");
        for sed in seds {
            sed.shutdown();
        }
    }

    #[test]
    fn grpc_wait_all_drains_in_order() {
        let (s, seds) = session(3);
        let mut h = s.function_handle_default("negate");
        let ids: Vec<u64> = (0..5)
            .map(|i| s.call_async(&mut h, profile(i)).unwrap())
            .collect();
        let results = s.wait_all();
        assert_eq!(results.len(), 5);
        let got: Vec<u64> = results.iter().map(|(id, _)| *id).collect();
        assert_eq!(got, ids);
        for (i, (_, r)) in results.into_iter().enumerate() {
            assert_eq!(r.unwrap().0.get_i32(1).unwrap(), -(i as i32));
        }
        for sed in seds {
            sed.shutdown();
        }
    }

    #[test]
    fn grpc_wait_any_returns_each_call_once() {
        let (s, seds) = session(2);
        let mut h = s.function_handle_default("negate");
        let mut expect: std::collections::HashSet<u64> = (0..4)
            .map(|i| s.call_async(&mut h, profile(i)).unwrap())
            .collect();
        while let Some((id, res)) = s.wait_any() {
            assert!(expect.remove(&id), "id {id} returned twice");
            res.unwrap();
        }
        assert!(expect.is_empty());
        assert_eq!(s.pending_count(), 0);
        for sed in seds {
            sed.shutdown();
        }
    }

    #[test]
    fn handle_service_mismatch_rejected() {
        let (s, seds) = session(1);
        let mut h = s.function_handle_default("other");
        assert!(matches!(
            s.call(&mut h, profile(1)),
            Err(DietError::ProfileMismatch { .. })
        ));
        for sed in seds {
            sed.shutdown();
        }
    }

    #[test]
    fn finalize_returns_history() {
        let (s, seds) = session(1);
        let mut h = s.function_handle_default("negate");
        s.call(&mut h, profile(3)).unwrap();
        let history = s.finalize();
        assert_eq!(history.len(), 1);
        for sed in seds {
            sed.shutdown();
        }
    }
}
