//! Naming service.
//!
//! "A client can be connected to a MA by a specific name server or by a web
//! page which stores the various MA locations (and the available problems)."
//! In the original system this was omniNames (the CORBA naming service);
//! here [`NameServer`] is a thread-safe registry mapping Master Agent names
//! to live references, together with the problems each one can currently
//! solve — exactly what the paper's "web page" published.

use crate::agent::MasterAgent;
use crate::error::DietError;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A registry of Master Agents.
#[derive(Default)]
pub struct NameServer {
    agents: RwLock<BTreeMap<String, Arc<MasterAgent>>>,
}

/// A catalog row: one MA and the services reachable through it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    pub ma_name: String,
    /// (service name, number of SeDs currently declaring it).
    pub services: Vec<(String, usize)>,
}

impl NameServer {
    pub fn new() -> Arc<Self> {
        Arc::new(NameServer::default())
    }

    /// Register (or replace) a Master Agent under its name.
    pub fn register(&self, ma: Arc<MasterAgent>) {
        self.agents.write().insert(ma.name.clone(), ma);
    }

    /// Remove a Master Agent; true when it existed.
    pub fn unregister(&self, name: &str) -> bool {
        self.agents.write().remove(name).is_some()
    }

    /// Resolve a name to a live MA reference — the `diet_initialize`
    /// configuration-file lookup.
    pub fn resolve(&self, name: &str) -> Result<Arc<MasterAgent>, DietError> {
        self.agents
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DietError::Deployment(format!("no master agent named {name}")))
    }

    /// Which registered MA can solve `service`? Returns the one with the
    /// most declaring SeDs (the "web page" selection rule).
    pub fn find_service(&self, service: &str) -> Result<Arc<MasterAgent>, DietError> {
        self.agents
            .read()
            .values()
            .map(|ma| (ma.solver_count(service), ma.clone()))
            .filter(|(n, _)| *n > 0)
            .max_by_key(|(n, _)| *n)
            .map(|(_, ma)| ma)
            .ok_or_else(|| DietError::ServiceNotFound(service.to_string()))
    }

    /// Publish the full catalog: every MA with its available problems.
    pub fn catalog(&self, known_services: &[&str]) -> Vec<CatalogEntry> {
        self.agents
            .read()
            .values()
            .map(|ma| CatalogEntry {
                ma_name: ma.name.clone(),
                services: known_services
                    .iter()
                    .map(|s| (s.to_string(), ma.solver_count(s)))
                    .filter(|(_, n)| *n > 0)
                    .collect(),
            })
            .collect()
    }

    pub fn len(&self) -> usize {
        self.agents.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.agents.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentNode;
    use crate::profile::{ArgTag, ProfileDesc};
    use crate::sched::RoundRobin;
    use crate::sed::{SedConfig, SedHandle, ServiceTable, SolveFn};

    fn ma_with_service(
        ma_name: &str,
        service: &str,
        n_seds: usize,
    ) -> (Arc<MasterAgent>, Vec<Arc<SedHandle>>) {
        let mut desc = ProfileDesc::alloc(service, 0, 0, 0);
        desc.set_arg(0, ArgTag::Scalar).unwrap();
        let seds: Vec<Arc<SedHandle>> = (0..n_seds)
            .map(|i| {
                let solve: SolveFn = Arc::new(|_| Ok(0));
                let mut t = ServiceTable::init(1);
                t.add(desc.clone(), solve).unwrap();
                SedHandle::spawn(SedConfig::new(&format!("{ma_name}/sed{i}"), 1.0), t)
            })
            .collect();
        let la = AgentNode::leaf("LA", seds.clone());
        (
            MasterAgent::new(ma_name, vec![la], Arc::new(RoundRobin::new())),
            seds,
        )
    }

    #[test]
    fn register_resolve_unregister() {
        let ns = NameServer::new();
        let (ma, seds) = ma_with_service("MA-eu", "ramsesZoom2", 1);
        ns.register(ma);
        assert_eq!(ns.len(), 1);
        let got = ns.resolve("MA-eu").unwrap();
        assert_eq!(got.name, "MA-eu");
        assert!(ns.resolve("MA-us").is_err());
        assert!(ns.unregister("MA-eu"));
        assert!(!ns.unregister("MA-eu"));
        assert!(ns.is_empty());
        for s in seds {
            s.shutdown();
        }
    }

    #[test]
    fn find_service_prefers_best_endowed_ma() {
        let ns = NameServer::new();
        let (small, s1) = ma_with_service("MA-small", "zoom", 1);
        let (big, s2) = ma_with_service("MA-big", "zoom", 3);
        ns.register(small);
        ns.register(big);
        let found = ns.find_service("zoom").unwrap();
        assert_eq!(found.name, "MA-big");
        assert!(matches!(
            ns.find_service("unknown"),
            Err(DietError::ServiceNotFound(_))
        ));
        for s in s1.into_iter().chain(s2) {
            s.shutdown();
        }
    }

    #[test]
    fn catalog_lists_available_problems() {
        let ns = NameServer::new();
        let (ma1, s1) = ma_with_service("MA-1", "ramsesZoom1", 2);
        let (ma2, s2) = ma_with_service("MA-2", "ramsesZoom2", 1);
        ns.register(ma1);
        ns.register(ma2);
        let cat = ns.catalog(&["ramsesZoom1", "ramsesZoom2"]);
        assert_eq!(cat.len(), 2);
        let e1 = cat.iter().find(|e| e.ma_name == "MA-1").unwrap();
        assert_eq!(e1.services, vec![("ramsesZoom1".to_string(), 2)]);
        let e2 = cat.iter().find(|e| e.ma_name == "MA-2").unwrap();
        assert_eq!(e2.services, vec![("ramsesZoom2".to_string(), 1)]);
        for s in s1.into_iter().chain(s2) {
            s.shutdown();
        }
    }

    #[test]
    fn dead_seds_disappear_from_catalog_counts() {
        let ns = NameServer::new();
        let (ma, seds) = ma_with_service("MA", "zoom", 2);
        ns.register(ma);
        for s in &seds {
            s.shutdown();
        }
        // Wait for workers to drain.
        for s in &seds {
            while s.is_alive() {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let cat = ns.catalog(&["zoom"]);
        // solver_count counts declarations (static); estimates (dynamic) are
        // what submission uses — verify the submit path reports no server.
        assert!(!cat.is_empty());
        let ma = ns.resolve("MA").unwrap();
        assert!(matches!(
            ma.submit("zoom"),
            Err(DietError::NoServerAvailable(_))
        ));
    }
}
