//! The Server Daemon (SeD).
//!
//! "A SeD encapsulates a computational server ... The information stored by
//! a SeD is a list of the data available on its server, all information
//! concerning its load and the list of problems that it can solve."
//!
//! A [`ServiceTable`] maps service names to solve functions (the
//! `diet_service_table_add` analog); [`SedHandle::spawn`] starts the daemon:
//! a worker thread that executes queued solve requests one at a time —
//! matching the paper's constraint that "each server cannot compute more
//! than one simulation at the same time".

use crate::codec::Message;
use crate::dagda::{self, DataResolver, ReplicaCatalog};
use crate::data::{DietValue, Persistence};
use crate::datamgr::DataManager;
use crate::error::DietError;
use crate::faults::{FaultAction, FaultPlan};
use crate::monitor::{Estimate, LoadTracker};
use crate::profile::{Profile, ProfileDesc};
use crossbeam::channel::{unbounded, Receiver, Sender};
use obs::{Obs, TraceCtx};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A solve function: receives the profile with IN arguments filled, writes
/// its OUT arguments, and returns the service status code (0 = success —
/// the paper's "integer for error controls").
pub type SolveFn = Arc<dyn Fn(&mut Profile) -> Result<i32, DietError> + Send + Sync>;

/// The service table (the `diet_service_table_*` API).
#[derive(Clone, Default)]
pub struct ServiceTable {
    entries: HashMap<String, (ProfileDesc, SolveFn)>,
    max_size: usize,
}

impl ServiceTable {
    /// `diet_service_table_init(max_size)`.
    pub fn init(max_size: usize) -> Self {
        ServiceTable {
            entries: HashMap::with_capacity(max_size),
            max_size,
        }
    }

    /// `diet_service_table_add(profile, convertor=NULL, solve_func)`.
    pub fn add(&mut self, desc: ProfileDesc, solve: SolveFn) -> Result<(), DietError> {
        if self.max_size > 0 && self.entries.len() >= self.max_size {
            return Err(DietError::Rejected(format!(
                "service table full ({} entries)",
                self.max_size
            )));
        }
        self.entries.insert(desc.service.clone(), (desc, solve));
        Ok(())
    }

    pub fn lookup(&self, service: &str) -> Option<&(ProfileDesc, SolveFn)> {
        self.entries.get(service)
    }

    pub fn declares(&self, service: &str) -> bool {
        self.entries.contains_key(service)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `diet_print_service_table` — rendered to a string.
    pub fn render(&self) -> String {
        let mut names: Vec<&String> = self.entries.keys().collect();
        names.sort();
        let mut out = String::from("service table:\n");
        for n in names {
            let (d, _) = &self.entries[n];
            out.push_str(&format!(
                "  {n} (last_in={}, last_inout={}, last_out={})\n",
                d.last_in, d.last_inout, d.last_out
            ));
        }
        out
    }
}

/// Static configuration of one SeD.
#[derive(Debug, Clone)]
pub struct SedConfig {
    /// Unique label (e.g. "toulouse-violette/0").
    pub label: String,
    /// Relative machine speed (feeds estimates).
    pub speed_factor: f64,
    /// Advertised free memory, bytes.
    pub free_memory: u64,
    /// Byte cap on the SeD's persistent-data store; `None` = unbounded.
    pub data_capacity: Option<u64>,
    /// Admission control: reject new requests with `Busy` once this many
    /// jobs are queued + running. `None` = accept everything (the
    /// paper-era behaviour; requests queue without bound).
    pub admission_limit: Option<usize>,
}

impl SedConfig {
    pub fn new(label: &str, speed_factor: f64) -> Self {
        SedConfig {
            label: label.to_string(),
            speed_factor,
            free_memory: 32 << 30,
            data_capacity: None,
            admission_limit: None,
        }
    }

    /// Bound the persistent-data store (LRU-evicted, sticky pinned).
    pub fn with_data_capacity(mut self, bytes: u64) -> Self {
        self.data_capacity = Some(bytes);
        self
    }

    /// Bound the solve queue: requests beyond `jobs` queued + running are
    /// answered with `Busy` so clients back off instead of timing out.
    pub fn with_admission_limit(mut self, jobs: usize) -> Self {
        self.admission_limit = Some(jobs);
        self
    }
}

/// One queued solve request.
struct Job {
    profile: Profile,
    submitted: Instant,
    /// Trace context propagated from the caller (possibly across the wire);
    /// inactive (`trace_id == 0`) jobs record no spans.
    ctx: TraceCtx,
    reply: Completion,
}

/// One-shot delivery of a job's outcome.
///
/// Fired exactly once: with `Some(outcome)` when the worker completes the
/// job, or with `None` if the job is abandoned before completion — the
/// worker died mid-job (kill fault), the reply was deliberately dropped
/// (`DropReply` fault), or the command queue rejected the job. `None` is
/// the crash signal a serving layer turns into a severed connection, so a
/// remote caller observes exactly what a host death looks like.
pub struct Completion(Option<Box<dyn FnOnce(Option<SolveOutcome>) + Send>>);

impl Completion {
    pub fn new(f: impl FnOnce(Option<SolveOutcome>) + Send + 'static) -> Self {
        Completion(Some(Box::new(f)))
    }

    /// Deliver the outcome.
    fn fire(mut self, outcome: SolveOutcome) {
        if let Some(f) = self.0.take() {
            f(Some(outcome));
        }
    }
}

impl Drop for Completion {
    fn drop(&mut self) {
        if let Some(f) = self.0.take() {
            f(None);
        }
    }
}

/// What the worker sends back.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    pub result: Result<Profile, DietError>,
    /// Time the job waited in the SeD queue, seconds.
    pub queue_wait: f64,
    /// Solve execution time, seconds.
    pub solve_time: f64,
}

enum Command {
    Run(Job),
    /// Liveness probe: the worker answers [`Message::Pong`] on the channel.
    /// Pings queue behind running jobs, so a wedged solve (or an injected
    /// stall) makes the SeD look dead to heartbeat monitors — which is the
    /// desired semantics.
    Ping(Sender<Message>),
    Shutdown,
}

/// Clears the liveness flag when the worker exits for any reason,
/// including a panic inside a solve function.
struct AliveGuard(Arc<AtomicBool>);

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// A live SeD: configuration + queue endpoint + load tracker. Cloneable
/// handles share the same daemon.
pub struct SedHandle {
    pub config: SedConfig,
    table: Arc<RwLock<ServiceTable>>,
    load: Arc<LoadTracker>,
    pub datamgr: Arc<DataManager>,
    tx: Sender<Command>,
    alive: Arc<AtomicBool>,
    /// Optional host probe feeding free-memory into estimates (FAST/CoRI).
    probe: RwLock<Option<Arc<dyn crate::probe::Probe>>>,
    /// Failure injection switches consulted by the worker per request.
    faults: Arc<FaultPlan>,
    /// Tracing + metrics sink; spans from propagated contexts and the
    /// SeD-side counters/histograms land here.
    obs: Arc<Obs>,
    /// Hierarchy-wide replica catalog (shared with the MA); publishes on
    /// retain, unpublishes on eviction. None = no DAGDA participation.
    catalog: Arc<RwLock<Option<Arc<ReplicaCatalog>>>>,
    /// How the worker pulls data ids it does not hold from the owning SeD.
    resolver: Arc<RwLock<Option<Arc<dyn DataResolver>>>>,
}

impl SedHandle {
    /// Launch the daemon (the `diet_SeD()` analog — but returning a handle
    /// instead of never returning). The worker owns the receive side and
    /// executes jobs strictly one at a time.
    pub fn spawn(config: SedConfig, table: ServiceTable) -> Arc<SedHandle> {
        Self::spawn_with_obs(config, table, Arc::new(Obs::new()))
    }

    /// Like [`SedHandle::spawn`] but recording into an injected
    /// observability sink — deployments that want one unified trace/metrics
    /// view pass the same `Arc<Obs>` to every component.
    pub fn spawn_with_obs(config: SedConfig, table: ServiceTable, obs: Arc<Obs>) -> Arc<SedHandle> {
        let (tx, rx): (Sender<Command>, Receiver<Command>) = unbounded();
        let table = Arc::new(RwLock::new(table));
        let load = LoadTracker::new();
        let datamgr = Arc::new(match config.data_capacity {
            Some(cap) => DataManager::with_capacity(cap),
            None => DataManager::new(),
        });
        let alive = Arc::new(AtomicBool::new(true));
        let faults = FaultPlan::new();
        let catalog: Arc<RwLock<Option<Arc<ReplicaCatalog>>>> = Arc::new(RwLock::new(None));
        let resolver: Arc<RwLock<Option<Arc<dyn DataResolver>>>> = Arc::new(RwLock::new(None));
        let handle = Arc::new(SedHandle {
            config: config.clone(),
            table: table.clone(),
            load: load.clone(),
            datamgr: datamgr.clone(),
            tx,
            alive: alive.clone(),
            probe: RwLock::new(None),
            faults: faults.clone(),
            obs: obs.clone(),
            catalog: catalog.clone(),
            resolver: resolver.clone(),
        });

        let worker_table = table;
        let worker_load = load;
        let worker_alive = alive;
        let worker_dm = datamgr;
        let worker_faults = faults;
        let worker_catalog = catalog;
        let worker_resolver = resolver;
        // Metric handles interned once; label distinguishes SeDs when
        // several share one registry. Updates below are pure atomics.
        let labels: &[(&str, &str)] = &[("sed", &config.label)];
        let m_solves = obs.metrics.counter_with("diet_sed_solves_total", labels);
        let m_errors = obs
            .metrics
            .counter_with("diet_sed_solve_errors_total", labels);
        let m_solve_h = obs.metrics.histogram_with("diet_sed_solve_seconds", labels);
        let m_queue_h = obs
            .metrics
            .histogram_with("diet_sed_queue_wait_seconds", labels);
        let m_qlen = obs.metrics.gauge_with("diet_sed_queue_length", labels);
        let m_reply_fail = obs
            .metrics
            .counter_with("diet_sed_reply_failures_total", labels);
        let m_data_hit = obs.metrics.counter_with("diet_data_hits_total", labels);
        let m_data_miss = obs.metrics.counter_with("diet_data_misses_total", labels);
        let m_data_pull_b = obs
            .metrics
            .counter_with("diet_data_pull_bytes_total", labels);
        let m_data_pull_h = obs.metrics.histogram_with("diet_data_pull_seconds", labels);
        let m_data_fail = obs
            .metrics
            .counter_with("diet_data_resolve_failures_total", labels);
        let worker_label = config.label;
        let worker_obs = obs;
        std::thread::spawn(move || {
            let _guard = AliveGuard(worker_alive);
            while let Ok(cmd) = rx.recv() {
                match cmd {
                    Command::Shutdown => break,
                    Command::Ping(reply) => {
                        let _ = reply.send(Message::Pong);
                    }
                    Command::Run(mut job) => {
                        let action = worker_faults.on_request();
                        if action == FaultAction::Kill {
                            // Injected crash: abandon the job without a
                            // reply and stop serving. Flip liveness *before*
                            // the job (and its reply channel) drops, so a
                            // client observing the disconnect already sees a
                            // dead SeD and the MA deregisters it at once.
                            _guard.0.store(false, Ordering::Release);
                            break;
                        }
                        let queue_wait = job.submitted.elapsed().as_secs_f64();
                        let exec_start_ns = worker_obs.tracer.now_ns();
                        let started = Instant::now();
                        worker_load.start();
                        // Resolve grid-data references before validation:
                        // every `DataRef` IN slot is replaced by the actual
                        // value — from this SeD's own store, or pulled
                        // SeD-to-SeD from the catalogued owner.
                        let mut resolved_refs: Vec<(usize, String)> = Vec::new();
                        let mut resolve_err: Option<DietError> = None;
                        for i in 0..job.profile.values.len() {
                            let id = match &job.profile.values[i] {
                                DietValue::DataRef { id } => id.clone(),
                                _ => continue,
                            };
                            let local = worker_dm.get(&id);
                            let fetched = match local {
                                Ok(v) => {
                                    m_data_hit.inc();
                                    Ok(v)
                                }
                                Err(_) => {
                                    m_data_miss.inc();
                                    let pull_start = Instant::now();
                                    let pulled = pull_from_owner(
                                        &worker_dm,
                                        &worker_catalog,
                                        &worker_resolver,
                                        &worker_label,
                                        &id,
                                    );
                                    if let Ok(v) = &pulled {
                                        m_data_pull_b.add(v.payload_bytes());
                                        m_data_pull_h.observe(pull_start.elapsed().as_secs_f64());
                                    }
                                    pulled
                                }
                            };
                            match fetched {
                                Ok(v) => {
                                    job.profile.values[i] = v;
                                    resolved_refs.push((i, id));
                                }
                                Err(e) => {
                                    m_data_fail.inc();
                                    resolve_err = Some(e);
                                    break;
                                }
                            }
                        }
                        let solved = if let Some(e) = resolve_err {
                            Err(e)
                        } else {
                            // A dag-tagged request (`svc@d<dag>.n<node>`)
                            // executes the canonical service but keeps the
                            // tag as its publication namespace, so outputs
                            // of concurrent workflows never collide.
                            let canonical = job
                                .profile
                                .service
                                .split('@')
                                .next()
                                .unwrap_or_default()
                                .to_string();
                            let tagged = canonical.len() != job.profile.service.len();
                            let t = worker_table.read();
                            match t.lookup(&canonical) {
                                None => {
                                    Err(DietError::ServiceNotFound(job.profile.service.clone()))
                                }
                                Some((desc, solve)) => {
                                    let validated = if tagged {
                                        let mut d = desc.clone();
                                        d.service = job.profile.service.clone();
                                        d.validate(&job.profile)
                                    } else {
                                        desc.validate(&job.profile)
                                    };
                                    match validated {
                                        Err(e) => Err(e),
                                        Ok(()) => {
                                            let solve = solve.clone();
                                            drop(t);
                                            match solve(&mut job.profile) {
                                                Ok(0) => {
                                                    // Retain PERSISTENT/STICKY
                                                    // arguments (DTM behaviour);
                                                    // VOLATILE data is dropped
                                                    // with the job. Args that
                                                    // arrived as refs are already
                                                    // resident under their own id.
                                                    let skip: Vec<usize> = resolved_refs
                                                        .iter()
                                                        .map(|(i, _)| *i)
                                                        .collect();
                                                    if tagged {
                                                        publish_all_tagged(
                                                            &worker_dm,
                                                            worker_catalog.read().as_deref(),
                                                            &worker_label,
                                                            &job.profile,
                                                            &skip,
                                                        );
                                                    } else {
                                                        retain_and_publish(
                                                            &worker_dm,
                                                            worker_catalog.read().as_deref(),
                                                            &worker_label,
                                                            &job.profile,
                                                            &skip,
                                                        );
                                                    }
                                                    // The reply re-collapses
                                                    // resolved args back to refs:
                                                    // the client sent an id and
                                                    // gets an id back, never the
                                                    // payload. Tagged requests
                                                    // additionally collapse every
                                                    // heavy output to its
                                                    // published ref — scalars
                                                    // stay inline so the engine
                                                    // reads status codes without
                                                    // payload bytes.
                                                    let mut reply = job.profile.clone();
                                                    if tagged {
                                                        for (i, v) in
                                                            reply.values.iter_mut().enumerate()
                                                        {
                                                            if resolved_refs
                                                                .iter()
                                                                .any(|(ri, _)| *ri == i)
                                                            {
                                                                continue;
                                                            }
                                                            if matches!(
                                                                v,
                                                                DietValue::File { .. }
                                                                    | DietValue::VectorF64(_)
                                                                    | DietValue::VectorI32(_)
                                                            ) {
                                                                *v = DietValue::DataRef {
                                                                    id: format!(
                                                                        "{}#{i}",
                                                                        job.profile.service
                                                                    ),
                                                                };
                                                            }
                                                        }
                                                    }
                                                    for (i, id) in &resolved_refs {
                                                        reply.values[*i] =
                                                            DietValue::DataRef { id: id.clone() };
                                                    }
                                                    Ok(reply)
                                                }
                                                Ok(status) => Err(DietError::SolveFailed {
                                                    service: job.profile.service.clone(),
                                                    status,
                                                }),
                                                Err(e) => Err(e),
                                            }
                                        }
                                    }
                                }
                            }
                        };
                        let solve_time = started.elapsed().as_secs_f64();
                        worker_load.finish(queue_wait + solve_time);
                        m_solves.inc();
                        if solved.is_err() {
                            m_errors.inc();
                        }
                        m_solve_h.observe(solve_time);
                        m_queue_h.observe(queue_wait);
                        m_qlen.set(worker_load.queue_length() as f64);
                        if job.ctx.is_active() {
                            // The queue wait ended exactly where execution
                            // began; both spans parent under the caller's
                            // attempt span, joining its trace.
                            let queued_start =
                                exec_start_ns.saturating_sub((queue_wait * 1e9) as u64);
                            worker_obs.tracer.record_window(
                                job.ctx.trace_id,
                                job.ctx.parent_span,
                                "Queued",
                                &worker_label,
                                queued_start,
                                exec_start_ns,
                            );
                            worker_obs.tracer.record_window(
                                job.ctx.trace_id,
                                job.ctx.parent_span,
                                "Execution",
                                &worker_label,
                                exec_start_ns,
                                worker_obs.tracer.now_ns(),
                            );
                        }
                        if action == FaultAction::DropReply {
                            worker_load.reply_failed();
                            m_reply_fail.inc();
                            // Dropping the completion unfired delivers
                            // `None`: an in-process caller sees its channel
                            // disconnect, a TCP serving loop severs the
                            // connection — the same observable as a crash
                            // between solve and reply.
                        } else {
                            job.reply.fire(SolveOutcome {
                                result: solved,
                                queue_wait,
                                solve_time,
                            });
                        }
                    }
                }
            }
        });
        handle
    }

    /// Liveness probe: true while the worker loop is running. Flips to
    /// false after `shutdown()` drains (or if the worker panics) — agents
    /// use this to drop dead servers from candidate sets.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Liveness probe through the worker queue: send [`Message::Ping`]'s
    /// in-process analog and wait up to `timeout` for the Pong. Returns
    /// false when the worker is dead, wedged, or slower than the deadline.
    pub fn ping(&self, timeout: Duration) -> bool {
        let (ptx, prx) = unbounded();
        if self.tx.send(Command::Ping(ptx)).is_err() {
            return false;
        }
        matches!(prx.recv_timeout(timeout), Ok(Message::Pong))
    }

    /// Is the worker executing a solve right now? Pings queue behind the
    /// running job, so liveness monitors must not read a missed deadline as
    /// death while this is true.
    pub fn is_busy(&self) -> bool {
        self.load.is_solving()
    }

    /// Failure injection switches for this SeD (tests and experiments).
    pub fn faults(&self) -> Arc<FaultPlan> {
        self.faults.clone()
    }

    /// Replies this SeD computed but could not deliver.
    pub fn reply_failures(&self) -> u64 {
        self.load.reply_failures()
    }

    /// Record an undeliverable reply noticed outside the worker (e.g. a TCP
    /// serving loop whose connection died before the reply was written).
    pub fn note_reply_failure(&self) {
        self.load.reply_failed();
        self.obs
            .metrics
            .counter_with(
                "diet_sed_reply_failures_total",
                &[("sed", &self.config.label)],
            )
            .inc();
    }

    /// This SeD's observability sink (tracer + metrics registry).
    pub fn obs(&self) -> Arc<Obs> {
        self.obs.clone()
    }

    /// Does this SeD declare the service? Used during hierarchy traversal.
    pub fn declares(&self, service: &str) -> bool {
        self.table.read().declares(service)
    }

    /// Attach a host probe: subsequent estimates report its live
    /// free-memory figure instead of the static configuration value.
    pub fn set_probe(&self, probe: Arc<dyn crate::probe::Probe>) {
        *self.probe.write() = Some(probe);
    }

    /// Monitoring probe: snapshot the load into an estimate, or None if the
    /// SeD is dead or the service is not declared here.
    pub fn estimate(&self, service: &str) -> Option<Estimate> {
        if !self.is_alive() || !self.declares(service) {
            return None;
        }
        let free_memory = match self.probe.read().as_ref() {
            Some(p) => p.report().free_memory,
            None => self.config.free_memory,
        };
        let mut e = self
            .load
            .estimate(&self.config.label, self.config.speed_factor, free_memory);
        e.admission_limit = self.config.admission_limit;
        Some(e)
    }

    /// Admission check: would a new request be accepted right now? The
    /// serving loop consults this before enqueueing and answers `Busy`
    /// when it returns false.
    pub fn admits(&self) -> bool {
        match self.config.admission_limit {
            None => true,
            Some(cap) => self.load.queue_length() < cap,
        }
    }

    /// Enqueue a solve; returns the receiver for the outcome. The queue
    /// length is bumped immediately so estimates see the pending job.
    pub fn submit(&self, profile: Profile) -> Result<Receiver<SolveOutcome>, DietError> {
        self.submit_traced(profile, TraceCtx::default())
    }

    /// [`SedHandle::submit`] carrying a trace context: the worker records
    /// `Queued` and `Execution` spans under `ctx.parent_span`, joining the
    /// caller's trace (this is the in-process analog of the context the TCP
    /// path ships inside `Call` frames).
    pub fn submit_traced(
        &self,
        profile: Profile,
        ctx: TraceCtx,
    ) -> Result<Receiver<SolveOutcome>, DietError> {
        let (rtx, rrx) = unbounded();
        let load = self.load.clone();
        let m_fail = self.obs.metrics.counter_with(
            "diet_sed_reply_failures_total",
            &[("sed", &self.config.label)],
        );
        // On `None` (abandoned job) the sender drops unsent, disconnecting
        // the receiver — the caller observes exactly a worker crash.
        self.submit_with_callback(profile, ctx, move |outcome| {
            if let Some(o) = outcome {
                if rtx.send(o).is_err() {
                    // The client abandoned the call (timeout); the SeD
                    // keeps serving, but the lost delivery is counted so
                    // operators can see it.
                    load.reply_failed();
                    m_fail.inc();
                }
            }
        })?;
        Ok(rrx)
    }

    /// Enqueue a solve whose outcome is delivered through a one-shot
    /// callback instead of a channel — the readiness-driven serving path
    /// uses this so a completed job queues its reply frame directly,
    /// without a per-connection pump thread parked on a receiver.
    ///
    /// `cb` runs exactly once, on the worker thread: `Some(outcome)` on
    /// completion, `None` if the job is abandoned (worker killed mid-job,
    /// reply dropped by fault injection, or — even when this returns
    /// `Err` — the command queue rejected the job, since the rejected
    /// job's completion still fires `None` as it drops).
    pub fn submit_with_callback(
        &self,
        profile: Profile,
        ctx: TraceCtx,
        cb: impl FnOnce(Option<SolveOutcome>) + Send + 'static,
    ) -> Result<(), DietError> {
        self.load.enqueue();
        self.tx
            .send(Command::Run(Job {
                profile,
                submitted: Instant::now(),
                ctx,
                reply: Completion::new(cb),
            }))
            .map_err(|_| DietError::Transport(format!("SeD {} is down", self.config.label)))
    }

    /// Current queue length (jobs pending + running).
    pub fn queue_length(&self) -> usize {
        self.load.queue_length()
    }

    pub fn completed(&self) -> u64 {
        self.load.completed()
    }

    /// Orderly shutdown. Pending jobs ahead of the shutdown command still run.
    pub fn shutdown(&self) {
        let _ = self.tx.send(Command::Shutdown);
    }

    /// Register an extra service on a running SeD.
    pub fn add_service(&self, desc: ProfileDesc, solve: SolveFn) -> Result<(), DietError> {
        self.table.write().add(desc, solve)
    }

    /// Fetch previously retained persistent data by id (`service#index`).
    pub fn persistent_data(&self, id: &str) -> Result<DietValue, DietError> {
        self.datamgr.get(id)
    }

    /// Join a hierarchy-wide replica catalog: retained data is published,
    /// evicted/freed data unpublished. Call once at deployment time.
    pub fn attach_catalog(&self, catalog: Arc<ReplicaCatalog>) {
        let label = self.config.label.clone();
        let cat = catalog.clone();
        let departures = self
            .obs
            .metrics
            .counter_with("diet_data_departures_total", &[("sed", &self.config.label)]);
        self.datamgr.set_evict_hook(move |id| {
            cat.unpublish(id, &label);
            departures.inc();
        });
        *self.catalog.write() = Some(catalog);
    }

    /// The catalog this SeD participates in, if any.
    pub fn catalog(&self) -> Option<Arc<ReplicaCatalog>> {
        self.catalog.read().clone()
    }

    /// Install the SeD-to-SeD pull mechanism the worker uses for data ids it
    /// does not hold (the TCP pool in production).
    pub fn set_resolver(&self, resolver: Arc<dyn DataResolver>) {
        *self.resolver.write() = Some(resolver);
    }

    /// Seed this SeD's store with a value under an explicit id (the
    /// server-side half of the client's `store_data`), publishing to the
    /// catalog when one is attached. Returns false for volatile data.
    pub fn store_data(&self, id: &str, value: DietValue, mode: Persistence) -> bool {
        let size = value.payload_bytes();
        let cks = dagda::checksum(&value);
        let ok = self.datamgr.retain(id, value, mode);
        if ok {
            if let Some(cat) = self.catalog.read().as_ref() {
                cat.publish(id, &self.config.label, size, cks);
            }
        }
        ok
    }
}

/// Pull `id` from the SeD the catalog says holds it, verify the checksum,
/// and retain the replica locally (as `Persistent` — only the origin's pin
/// applies). Any gap in the chain — no catalog, no resolver, no replica, a
/// transfer failure, a checksum mismatch — degrades to `DataNotFound`, which
/// the client answers by re-shipping the value inline.
fn pull_from_owner(
    dm: &DataManager,
    catalog: &RwLock<Option<Arc<ReplicaCatalog>>>,
    resolver: &RwLock<Option<Arc<dyn DataResolver>>>,
    self_label: &str,
    id: &str,
) -> Result<DietValue, DietError> {
    let cat = catalog
        .read()
        .clone()
        .ok_or_else(|| DietError::DataNotFound(id.to_string()))?;
    let rep = cat
        .locate(id)
        .filter(|r| r.sed != self_label)
        .ok_or_else(|| DietError::DataNotFound(id.to_string()))?;
    let res = resolver
        .read()
        .clone()
        .ok_or_else(|| DietError::DataNotFound(id.to_string()))?;
    let (value, _origin_mode) = res
        .fetch(&rep.sed, id)
        .map_err(|_| DietError::DataNotFound(id.to_string()))?;
    if dagda::checksum(&value) != rep.checksum {
        return Err(DietError::DataNotFound(id.to_string()));
    }
    if dm.retain(id, value.clone(), Persistence::Persistent) {
        cat.publish(id, self_label, value.payload_bytes(), rep.checksum);
    }
    Ok(value)
}

/// Retain every non-null PERSISTENT/STICKY argument of a completed profile
/// under the id `service#index` — the data-manager side of a solve.
pub fn retain_persistent_args(dm: &DataManager, profile: &Profile) {
    retain_and_publish(dm, None, "", profile, &[]);
}

/// [`retain_persistent_args`] plus catalog publication; `skip` holds arg
/// indices already resident under their own data-ref id.
pub fn retain_and_publish(
    dm: &DataManager,
    catalog: Option<&ReplicaCatalog>,
    sed_label: &str,
    profile: &Profile,
    skip: &[usize],
) {
    for (i, (v, m)) in profile.values.iter().zip(&profile.persistence).enumerate() {
        if skip.contains(&i) || matches!(v, DietValue::Null) || *m == Persistence::Volatile {
            continue;
        }
        let id = format!("{}#{}", profile.service, i);
        if dm.retain(&id, v.clone(), *m) {
            if let Some(cat) = catalog {
                cat.publish(&id, sed_label, v.payload_bytes(), dagda::checksum(v));
            }
        }
    }
}

/// The dag-tagged variant of [`retain_and_publish`]: a workflow node's
/// outputs are the *only* copy of its intermediates on the grid, so every
/// non-null argument is retained — VOLATILE upgraded to PERSISTENT — under
/// the tagged id (`svc@d<dag>.n<node>#index`). `skip` holds arg indices
/// that arrived as refs and are already resident under their own id.
pub fn publish_all_tagged(
    dm: &DataManager,
    catalog: Option<&ReplicaCatalog>,
    sed_label: &str,
    profile: &Profile,
    skip: &[usize],
) {
    for (i, v) in profile.values.iter().enumerate() {
        if skip.contains(&i) || matches!(v, DietValue::Null) {
            continue;
        }
        let id = format!("{}#{}", profile.service, i);
        if dm.retain(&id, v.clone(), Persistence::Persistent) {
            if let Some(cat) = catalog {
                cat.publish(&id, sed_label, v.payload_bytes(), dagda::checksum(v));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Persistence;
    use crate::profile::{ArgTag, ProfileDesc};

    /// A toy service: doubles an i32 (arg 0 IN, arg 1 OUT).
    fn doubler_table() -> ServiceTable {
        let mut d = ProfileDesc::alloc("double", 0, 0, 1);
        d.set_arg(0, ArgTag::Scalar).unwrap();
        d.set_arg(1, ArgTag::Scalar).unwrap();
        let solve: SolveFn = Arc::new(|p: &mut Profile| {
            let x = p.get_i32(0)?;
            p.set(1, DietValue::ScalarI32(2 * x), Persistence::Volatile)?;
            Ok(0)
        });
        let mut t = ServiceTable::init(10);
        t.add(d, solve).unwrap();
        t
    }

    fn call(sed: &SedHandle, x: i32) -> SolveOutcome {
        let d = ProfileDesc::alloc("double", 0, 0, 1);
        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::ScalarI32(x), Persistence::Volatile)
            .unwrap();
        sed.submit(p).unwrap().recv().unwrap()
    }

    #[test]
    fn solve_roundtrip() {
        let sed = SedHandle::spawn(SedConfig::new("test/0", 1.0), doubler_table());
        let out = call(&sed, 21);
        let p = out.result.unwrap();
        assert_eq!(p.get_i32(1).unwrap(), 42);
        assert!(out.solve_time >= 0.0);
        sed.shutdown();
    }

    #[test]
    fn jobs_run_serially_in_order() {
        // A slow service records execution order.
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let log2 = log.clone();
        let mut d = ProfileDesc::alloc("slow", 0, 0, 1);
        d.set_arg(0, ArgTag::Scalar).unwrap();
        let solve: SolveFn = Arc::new(move |p: &mut Profile| {
            let x = p.get_i32(0)?;
            std::thread::sleep(std::time::Duration::from_millis(20));
            log2.lock().push(x);
            p.set(1, DietValue::ScalarI32(x), Persistence::Volatile)?;
            Ok(0)
        });
        let mut t = ServiceTable::init(4);
        t.add(d.clone(), solve).unwrap();
        let sed = SedHandle::spawn(SedConfig::new("test/1", 1.0), t);

        let mut receivers = Vec::new();
        for x in 0..4 {
            let mut p = Profile::alloc(&d);
            p.set(0, DietValue::ScalarI32(x), Persistence::Volatile)
                .unwrap();
            receivers.push(sed.submit(p).unwrap());
        }
        // While running, queue length reflects backlog.
        assert!(sed.queue_length() >= 1);
        for r in receivers {
            r.recv().unwrap().result.unwrap();
        }
        assert_eq!(*log.lock(), vec![0, 1, 2, 3]);
        assert_eq!(sed.queue_length(), 0);
        assert_eq!(sed.completed(), 4);
        sed.shutdown();
    }

    #[test]
    fn later_jobs_accumulate_queue_wait() {
        let mut d = ProfileDesc::alloc("slow", 0, 0, 0);
        d.set_arg(0, ArgTag::Scalar).unwrap();
        let solve: SolveFn = Arc::new(|_p: &mut Profile| {
            std::thread::sleep(std::time::Duration::from_millis(30));
            Ok(0)
        });
        let mut t = ServiceTable::init(2);
        t.add(d.clone(), solve).unwrap();
        let sed = SedHandle::spawn(SedConfig::new("test/2", 1.0), t);
        let mk = || {
            let mut p = Profile::alloc(&d);
            p.set(0, DietValue::ScalarI32(0), Persistence::Volatile)
                .unwrap();
            p
        };
        let r1 = sed.submit(mk()).unwrap();
        let r2 = sed.submit(mk()).unwrap();
        let o1 = r1.recv().unwrap();
        let o2 = r2.recv().unwrap();
        assert!(
            o2.queue_wait > o1.queue_wait + 0.02,
            "second job should wait behind the first: {} vs {}",
            o2.queue_wait,
            o1.queue_wait
        );
        sed.shutdown();
    }

    #[test]
    fn nonzero_status_becomes_solve_failed() {
        let mut d = ProfileDesc::alloc("fail", 0, 0, 0);
        d.set_arg(0, ArgTag::Scalar).unwrap();
        let solve: SolveFn = Arc::new(|_| Ok(7));
        let mut t = ServiceTable::init(1);
        t.add(d.clone(), solve).unwrap();
        let sed = SedHandle::spawn(SedConfig::new("test/3", 1.0), t);
        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::ScalarI32(0), Persistence::Volatile)
            .unwrap();
        let out = sed.submit(p).unwrap().recv().unwrap();
        assert!(matches!(
            out.result,
            Err(DietError::SolveFailed { status: 7, .. })
        ));
        sed.shutdown();
    }

    #[test]
    fn invalid_profile_rejected_by_validation() {
        let sed = SedHandle::spawn(SedConfig::new("test/4", 1.0), doubler_table());
        let d = ProfileDesc::alloc("double", 0, 0, 1);
        let p = Profile::alloc(&d); // IN arg left Null
        let out = sed.submit(p).unwrap().recv().unwrap();
        assert!(matches!(out.result, Err(DietError::ProfileMismatch { .. })));
        sed.shutdown();
    }

    #[test]
    fn unknown_service_rejected() {
        let sed = SedHandle::spawn(SedConfig::new("test/5", 1.0), doubler_table());
        let d = ProfileDesc::alloc("nope", -1, -1, 0);
        let p = Profile::alloc(&d);
        let out = sed.submit(p).unwrap().recv().unwrap();
        assert!(matches!(out.result, Err(DietError::ServiceNotFound(_))));
        sed.shutdown();
    }

    #[test]
    fn estimates_reflect_declared_services_and_load() {
        let sed = SedHandle::spawn(SedConfig::new("test/6", 1.15), doubler_table());
        assert!(sed.estimate("nope").is_none());
        let e = sed.estimate("double").unwrap();
        assert_eq!(e.server, "test/6");
        assert!((e.speed_factor - 1.15).abs() < 1e-12);
        assert_eq!(e.queue_length, 0);
        assert_eq!(e.known_mean_duration, None);
        // After a call the mean duration is known.
        call(&sed, 1);
        let e = sed.estimate("double").unwrap();
        assert!(e.known_mean_duration.is_some());
        assert_eq!(e.completed, 1);
        sed.shutdown();
    }

    #[test]
    fn shutdown_stops_worker_but_queued_jobs_finish() {
        let sed = SedHandle::spawn(SedConfig::new("test/7", 1.0), doubler_table());
        let d = ProfileDesc::alloc("double", 0, 0, 1);
        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::ScalarI32(5), Persistence::Volatile)
            .unwrap();
        let r = sed.submit(p).unwrap();
        sed.shutdown();
        // The queued job still completes (shutdown is behind it in the queue).
        let out = r.recv().unwrap();
        assert_eq!(out.result.unwrap().get_i32(1).unwrap(), 10);
    }

    #[test]
    fn persistent_out_args_are_retained_on_the_server() {
        // A service producing a PERSISTENT OUT value: after the call the
        // data survives on the SeD under "service#index" while volatile
        // arguments are not retained.
        let mut d = ProfileDesc::alloc("makeic", 0, 0, 1);
        d.set_arg(0, ArgTag::Scalar).unwrap();
        let solve: SolveFn = Arc::new(|p: &mut Profile| {
            let x = p.get_i32(0)?;
            p.set(1, DietValue::vec_i32(vec![x; 4]), Persistence::Persistent)?;
            Ok(0)
        });
        let mut t = ServiceTable::init(1);
        t.add(d.clone(), solve).unwrap();
        let sed = SedHandle::spawn(SedConfig::new("dm/0", 1.0), t);

        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::ScalarI32(7), Persistence::Volatile)
            .unwrap();
        let out = sed.submit(p).unwrap().recv().unwrap();
        out.result.unwrap();

        // The OUT vector persisted; the volatile IN scalar did not.
        assert_eq!(
            sed.persistent_data("makeic#1").unwrap(),
            DietValue::vec_i32(vec![7; 4])
        );
        assert!(sed.persistent_data("makeic#0").is_err());
        assert_eq!(sed.datamgr.len(), 1);
        sed.shutdown();
    }

    /// A service summing an i32 vector arriving via arg 0 (IN), result in
    /// arg 1 (OUT) — used by the data-ref tests.
    fn summer_table() -> ServiceTable {
        let mut d = ProfileDesc::alloc("sum", 0, 0, 1);
        d.set_arg(0, ArgTag::Vector).unwrap();
        d.set_arg(1, ArgTag::Scalar).unwrap();
        let solve: SolveFn = Arc::new(|p: &mut Profile| {
            let total = match &p.values[0] {
                DietValue::VectorI32(v) => v.iter().sum::<i32>(),
                other => {
                    return Err(DietError::Rejected(format!(
                        "expected vector, got {}",
                        other.type_name()
                    )))
                }
            };
            p.set(1, DietValue::ScalarI32(total), Persistence::Volatile)?;
            Ok(0)
        });
        let mut t = ServiceTable::init(1);
        t.add(d, solve).unwrap();
        t
    }

    fn sum_ref_profile(id: &str) -> Profile {
        let d = ProfileDesc::alloc("sum", 0, 0, 1);
        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::data_ref(id), Persistence::Persistent)
            .unwrap();
        p
    }

    #[test]
    fn data_ref_resolves_from_the_local_store() {
        let sed = SedHandle::spawn(SedConfig::new("ref/0", 1.0), summer_table());
        let cat = Arc::new(ReplicaCatalog::new());
        sed.attach_catalog(cat.clone());
        assert!(sed.store_data(
            "nums",
            DietValue::vec_i32(vec![1, 2, 3]),
            Persistence::Persistent
        ));
        assert_eq!(cat.holders("nums"), vec!["ref/0"]);

        let out = sed.submit(sum_ref_profile("nums")).unwrap().recv().unwrap();
        let p = out.result.unwrap();
        assert_eq!(p.get_i32(1).unwrap(), 6);
        // The reply carries the ref back, not the payload.
        assert_eq!(p.values[0].as_data_ref(), Some("nums"));
        sed.shutdown();
    }

    #[test]
    fn unresolvable_data_ref_is_data_not_found() {
        let sed = SedHandle::spawn(SedConfig::new("ref/1", 1.0), summer_table());
        let out = sed
            .submit(sum_ref_profile("ghost"))
            .unwrap()
            .recv()
            .unwrap();
        assert!(matches!(out.result, Err(DietError::DataNotFound(_))));
        sed.shutdown();
    }

    /// In-process resolver: fetches straight out of other SeDs' stores.
    struct MapResolver(HashMap<String, Arc<DataManager>>);

    impl DataResolver for MapResolver {
        fn fetch(&self, sed: &str, id: &str) -> Result<(DietValue, Persistence), DietError> {
            self.0
                .get(sed)
                .ok_or_else(|| DietError::Transport(format!("no such sed {sed}")))?
                .get_with_mode(id)
        }
    }

    #[test]
    fn data_ref_pulls_sed_to_sed_through_the_catalog() {
        let owner = SedHandle::spawn(SedConfig::new("owner", 1.0), summer_table());
        let exec = SedHandle::spawn(SedConfig::new("exec", 1.0), summer_table());
        let cat = Arc::new(ReplicaCatalog::new());
        owner.attach_catalog(cat.clone());
        exec.attach_catalog(cat.clone());
        exec.set_resolver(Arc::new(MapResolver(HashMap::from([(
            "owner".to_string(),
            owner.datamgr.clone(),
        )]))));
        owner.store_data(
            "nums",
            DietValue::vec_i32(vec![5; 10]),
            Persistence::Persistent,
        );

        // The executing SeD holds nothing; the solve still succeeds by
        // pulling from the owner, and the replica is now catalogued on both.
        let out = exec
            .submit(sum_ref_profile("nums"))
            .unwrap()
            .recv()
            .unwrap();
        assert_eq!(out.result.unwrap().get_i32(1).unwrap(), 50);
        assert!(exec.datamgr.contains("nums"));
        assert_eq!(cat.holders("nums"), vec!["exec", "owner"]);

        // Owner dies: the catalog forgets its replicas, but exec still
        // serves from its own copy.
        cat.drop_sed("owner");
        assert_eq!(cat.holders("nums"), vec!["exec"]);
        let out = exec
            .submit(sum_ref_profile("nums"))
            .unwrap()
            .recv()
            .unwrap();
        assert_eq!(out.result.unwrap().get_i32(1).unwrap(), 50);
        owner.shutdown();
        exec.shutdown();
    }

    #[test]
    fn eviction_unpublishes_from_the_catalog() {
        let sed = SedHandle::spawn(SedConfig::new("evict/0", 1.0), summer_table());
        let cat = Arc::new(ReplicaCatalog::new());
        // Bounded store: 2 × 40-byte vectors fit, the third evicts the LRU.
        let dm = &sed.datamgr;
        assert!(dm.capacity().is_none());
        sed.attach_catalog(cat.clone());
        sed.store_data(
            "a",
            DietValue::vec_i32(vec![0; 10]),
            Persistence::Persistent,
        );
        sed.datamgr.free("a").unwrap();
        assert!(cat.locate("a").is_none(), "free must unpublish");
        sed.shutdown();
    }

    #[test]
    fn attached_probe_feeds_estimates() {
        use crate::probe::{HostReport, StaticProbe};
        let sed = SedHandle::spawn(SedConfig::new("probe/0", 1.0), doubler_table());
        let before = sed.estimate("double").unwrap();
        assert_eq!(before.free_memory, sed.config.free_memory);
        sed.set_probe(Arc::new(StaticProbe(HostReport {
            load1: 1.0,
            free_memory: 12345,
            total_memory: 99999,
        })));
        let after = sed.estimate("double").unwrap();
        assert_eq!(after.free_memory, 12345);
        sed.shutdown();
    }

    #[test]
    fn is_alive_tracks_worker_lifetime() {
        let sed = SedHandle::spawn(SedConfig::new("alive/0", 1.0), doubler_table());
        assert!(sed.is_alive());
        sed.shutdown();
        // The worker drains and flips the flag.
        for _ in 0..200 {
            if !sed.is_alive() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(!sed.is_alive());
        // Dead SeDs stop producing estimates.
        assert!(sed.estimate("double").is_none());
    }

    #[test]
    fn ping_answers_pong_until_shutdown() {
        let sed = SedHandle::spawn(SedConfig::new("ping/0", 1.0), doubler_table());
        assert!(sed.ping(Duration::from_secs(1)));
        sed.shutdown();
        for _ in 0..200 {
            if !sed.is_alive() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(!sed.ping(Duration::from_millis(100)));
    }

    #[test]
    fn kill_at_request_abandons_job_and_flips_alive() {
        let sed = SedHandle::spawn(SedConfig::new("kill/0", 1.0), doubler_table());
        sed.faults().kill_at_request(2);
        // First request survives.
        assert_eq!(call(&sed, 1).result.unwrap().get_i32(1).unwrap(), 2);
        // Second request kills the worker: the reply channel disconnects.
        let d = ProfileDesc::alloc("double", 0, 0, 1);
        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::ScalarI32(9), Persistence::Volatile)
            .unwrap();
        let rx = sed.submit(p).unwrap();
        assert!(rx.recv().is_err(), "killed worker must not reply");
        for _ in 0..200 {
            if !sed.is_alive() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(!sed.is_alive());
        assert!(sed.estimate("double").is_none());
    }

    #[test]
    fn dropped_replies_are_counted() {
        let sed = SedHandle::spawn(SedConfig::new("drop/0", 1.0), doubler_table());
        sed.faults().set_drop_replies(true);
        let d = ProfileDesc::alloc("double", 0, 0, 1);
        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::ScalarI32(4), Persistence::Volatile)
            .unwrap();
        let rx = sed.submit(p).unwrap();
        assert!(rx.recv_timeout(Duration::from_millis(300)).is_err());
        assert_eq!(sed.reply_failures(), 1);
        // The solve itself still completed.
        assert_eq!(sed.completed(), 1);
        sed.shutdown();
    }

    #[test]
    fn abandoned_receiver_counts_as_reply_failure() {
        // The solve is slow enough that the client's hang-up (dropping the
        // receiver) always lands before the worker tries to reply.
        let mut d = ProfileDesc::alloc("slow", 0, 0, 1);
        d.set_arg(0, ArgTag::Scalar).unwrap();
        let solve: SolveFn = Arc::new(|p: &mut Profile| {
            std::thread::sleep(Duration::from_millis(100));
            let x = p.get_i32(0)?;
            p.set(1, DietValue::ScalarI32(x), Persistence::Volatile)?;
            Ok(0)
        });
        let mut t = ServiceTable::init(1);
        t.add(d.clone(), solve).unwrap();
        let sed = SedHandle::spawn(SedConfig::new("aband/0", 1.0), t);
        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::ScalarI32(4), Persistence::Volatile)
            .unwrap();
        drop(sed.submit(p).unwrap()); // client hangs up immediately
        let deadline = Instant::now() + Duration::from_secs(10);
        while sed.reply_failures() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(sed.reply_failures(), 1);
        sed.shutdown();
    }

    #[test]
    fn service_table_renders_and_limits() {
        let t = doubler_table();
        let s = t.render();
        assert!(s.contains("double"));
        assert!(s.contains("last_out=1"));

        let mut small = ServiceTable::init(1);
        let d1 = ProfileDesc::alloc("a", -1, -1, 0);
        let d2 = ProfileDesc::alloc("b", -1, -1, 0);
        let nop: SolveFn = Arc::new(|_| Ok(0));
        small.add(d1, nop.clone()).unwrap();
        assert!(small.add(d2, nop).is_err());
    }

    #[test]
    fn traced_submit_records_queued_and_execution_spans() {
        let obs = Arc::new(Obs::new());
        let sed =
            SedHandle::spawn_with_obs(SedConfig::new("tr/0", 1.0), doubler_table(), obs.clone());
        let ctx = TraceCtx {
            trace_id: 77,
            parent_span: 5,
        };
        let d = ProfileDesc::alloc("double", 0, 0, 1);
        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::ScalarI32(2), Persistence::Volatile)
            .unwrap();
        sed.submit_traced(p, ctx)
            .unwrap()
            .recv()
            .unwrap()
            .result
            .unwrap();
        let spans = obs.tracer.snapshot();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"Queued"), "spans: {names:?}");
        assert!(names.contains(&"Execution"), "spans: {names:?}");
        for s in &spans {
            assert_eq!(s.trace_id, 77);
            assert_eq!(s.parent, 5);
            assert_eq!(s.resource, "tr/0");
        }
        // Untraced submits record no spans...
        let before = spans.len();
        call(&sed, 1);
        assert_eq!(obs.tracer.snapshot().len(), before);
        // ...but still feed the metrics registry.
        assert_eq!(obs.metrics.counter_value("diet_sed_solves_total"), 2);
        assert!(obs
            .metrics
            .render_prometheus()
            .contains("diet_sed_solve_seconds_bucket{sed=\"tr/0\""));
        sed.shutdown();
    }

    #[test]
    fn admission_limit_reflected_in_estimate_and_admits() {
        let cfg = SedConfig::new("adm/0", 1.0).with_admission_limit(2);
        let sed = SedHandle::spawn(cfg, doubler_table());
        assert!(sed.admits());
        let e = sed.estimate("double").unwrap();
        assert_eq!(e.admission_limit, Some(2));
        assert!(!e.is_saturated());
        // Unbounded SeDs always admit.
        let open = SedHandle::spawn(SedConfig::new("adm/1", 1.0), doubler_table());
        assert!(open.admits());
        assert_eq!(open.estimate("double").unwrap().admission_limit, None);
        sed.shutdown();
        open.shutdown();
    }

    #[test]
    fn add_service_on_running_sed() {
        let sed = SedHandle::spawn(SedConfig::new("test/8", 1.0), doubler_table());
        let mut d = ProfileDesc::alloc("triple", 0, 0, 1);
        d.set_arg(0, ArgTag::Scalar).unwrap();
        sed.add_service(
            d.clone(),
            Arc::new(|p: &mut Profile| {
                let x = p.get_i32(0)?;
                p.set(1, DietValue::ScalarI32(3 * x), Persistence::Volatile)?;
                Ok(0)
            }),
        )
        .unwrap();
        let mut p = Profile::alloc(&d);
        p.set(0, DietValue::ScalarI32(3), Persistence::Volatile)
            .unwrap();
        let out = sed.submit(p).unwrap().recv().unwrap();
        assert_eq!(out.result.unwrap().get_i32(1).unwrap(), 9);
        sed.shutdown();
    }
}
