//! Unified telemetry collector — the LogCentral analogue.
//!
//! One process per deployment runs a [`Collector`]: every MA, LA, SeD, and
//! client ships its spans and metric deltas here via a
//! [`crate::telemetry::TelemetryFlusher`], and the collector merges them
//! into a single [`Obs`]. Because span records carry their originating
//! `trace_id` across the wire untouched, a request that hopped
//! client → MA → LA → SeD stitches back into one trace
//! (Finding → Submission → Queued → Execution → ResultReturn) even though
//! each hop recorded its window in a different process.
//!
//! The collector serves its merged state over the same framed reactor as
//! every other component, which has a deliberate side effect: the reactor's
//! own instrumentation (`diet_reactor_tick_seconds`, dispatch/write-queue
//! gauges, drop counters) registers into the *merged* registry, so a
//! Prometheus scrape of the collector shows the health of the event loop
//! doing the collecting.
//!
//! Views, all served through the correlated [`Message::DumpMetricsRid`]
//! (and the legacy uncorrelated `DumpMetrics`):
//!
//! - `""` / `"prometheus"` — text exposition of the merged registry
//! - `"chrome"` — Chrome `chrome://tracing` JSON of every merged span
//! - `"topology"` — VizDIET-style plaintext snapshot: reporting processes
//!   grouped by site with per-source batch/span/staleness health

use crate::codec::{Message, ProcessSource};
use crate::error::DietError;
use crate::reactor::ConnHandle;
use crate::transport::{ServerConfig, TcpServer};
use obs::{Labels, MetricSnapshot, Obs, SpanRecord};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Liveness/volume bookkeeping for one reporting process.
#[derive(Debug, Clone)]
pub struct SourceHealth {
    pub site: String,
    /// Spans merged from this source.
    pub spans: u64,
    /// Push batches (span or delta) received from this source.
    pub batches: u64,
    /// When the last batch arrived.
    pub last_seen: Instant,
}

/// Merge point for a deployment's telemetry. Cheap to clone via `Arc`.
pub struct Collector {
    /// The unified registry + span ring every push lands in.
    pub obs: Arc<Obs>,
    sources: Mutex<BTreeMap<(String, String, u32), SourceHealth>>,
    started: Instant,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    pub fn new() -> Self {
        Collector {
            // Collector ring must hold every process's spans, not one
            // process's worth — size it at the default, not the trimmed
            // per-component capacity.
            obs: Arc::new(Obs::new()),
            sources: Mutex::new(BTreeMap::new()),
            started: Instant::now(),
        }
    }

    fn touch(&self, source: &ProcessSource, spans: u64) {
        let mut map = self.sources.lock();
        let entry = map
            .entry((source.role.clone(), source.label.clone(), source.pid))
            .or_insert_with(|| SourceHealth {
                site: source.site.clone(),
                spans: 0,
                batches: 0,
                last_seen: Instant::now(),
            });
        entry.site = source.site.clone();
        entry.spans += spans;
        entry.batches += 1;
        entry.last_seen = Instant::now();
    }

    /// Merge one span batch into the unified ring.
    pub fn ingest_spans(&self, source: &ProcessSource, spans: Vec<SpanRecord>) {
        self.touch(source, spans.len() as u64);
        self.obs
            .metrics
            .counter_with(
                "diet_collector_spans_ingested_total",
                &[("role", &source.role), ("label", &source.label)],
            )
            .add(spans.len() as u64);
        for rec in spans {
            self.obs.tracer.ingest(rec);
        }
    }

    /// Merge one metric-delta batch into the unified registry. Counters and
    /// histogram buckets accumulate across sources; gauges are last-write-
    /// wins, so same-named gauges from different processes should carry
    /// distinguishing labels (the components label theirs already).
    pub fn ingest_deltas(
        &self,
        source: &ProcessSource,
        deltas: &[(String, Labels, MetricSnapshot)],
    ) {
        self.touch(source, 0);
        self.obs
            .metrics
            .counter_with(
                "diet_collector_deltas_ingested_total",
                &[("role", &source.role), ("label", &source.label)],
            )
            .add(deltas.len() as u64);
        for (name, labels, snap) in deltas {
            if self.obs.metrics.apply(name, labels, snap).is_err() {
                // Same name registered with a conflicting kind — count it,
                // keep merging the rest of the batch.
                self.obs
                    .metrics
                    .counter("diet_collector_merge_conflicts_total")
                    .inc();
            }
        }
    }

    /// Every merged span belonging to `trace_id`, ordered by start time —
    /// the stitched cross-process trace.
    pub fn trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self
            .obs
            .tracer
            .snapshot()
            .into_iter()
            .filter(|s| s.trace_id == trace_id)
            .collect();
        spans.sort_by_key(|s| (s.start_ns, s.end_ns, s.span_id));
        spans
    }

    /// Sources that have reported at least once, in deterministic order.
    pub fn sources(&self) -> Vec<(ProcessSource, SourceHealth)> {
        self.sources
            .lock()
            .iter()
            .map(|((role, label, pid), health)| {
                (
                    ProcessSource {
                        role: role.clone(),
                        label: label.clone(),
                        pid: *pid,
                        site: health.site.clone(),
                    },
                    health.clone(),
                )
            })
            .collect()
    }

    /// VizDIET-style plaintext health snapshot: every reporting process
    /// grouped by site, with batch/span volume and time since last report.
    pub fn topology_snapshot(&self) -> String {
        let sources = self.sources();
        let mut by_site: BTreeMap<&str, Vec<&(ProcessSource, SourceHealth)>> = BTreeMap::new();
        for entry in &sources {
            let site = if entry.0.site.is_empty() {
                "(unsited)"
            } else {
                entry.0.site.as_str()
            };
            by_site.entry(site).or_default().push(entry);
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "diet topology: {} process(es), {} site(s), collector up {:.1}s",
            sources.len(),
            by_site.len(),
            self.started.elapsed().as_secs_f64()
        );
        for (site, members) in &by_site {
            let _ = writeln!(out, "site {site}");
            for (src, health) in members {
                let _ = writeln!(
                    out,
                    "  {role:<6} {label:<16} pid={pid:<7} batches={batches:<5} \
                     spans={spans:<7} last_seen={ago:.1}s ago",
                    role = src.role,
                    label = src.label,
                    pid = src.pid,
                    batches = health.batches,
                    spans = health.spans,
                    ago = health.last_seen.elapsed().as_secs_f64(),
                );
            }
        }
        out
    }

    /// Render the view a `DumpMetrics`/`DumpMetricsRid` request selects.
    pub fn view(&self, what: &str) -> String {
        match what {
            "" | "prometheus" => self.obs.metrics.render_prometheus(),
            "chrome" => obs::chrome_trace(&self.obs.tracer.snapshot()),
            "topology" => self.topology_snapshot(),
            other => format!("unknown metrics view {other:?}\n"),
        }
    }
}

/// Serve a [`Collector`] on the framed reactor. The collector's unified
/// `Obs` doubles as the server's instrumentation registry, so the reactor's
/// tick-latency and queue-depth series appear in the collector's own
/// Prometheus output.
pub fn serve_collector_over_tcp(
    collector: Arc<Collector>,
    addr: &str,
    mut cfg: ServerConfig,
) -> Result<TcpServer, DietError> {
    if cfg.obs.is_none() {
        cfg.obs = Some(collector.obs.clone());
    }
    TcpServer::spawn_framed(
        addr,
        cfg,
        move |handle: &ConnHandle, msg: Message| match msg {
            Message::PushSpans {
                request_id,
                source,
                spans,
            } => {
                collector.ingest_spans(&source, spans);
                let _ = handle.send(&Message::PushAck { request_id });
            }
            Message::PushMetricDeltas {
                request_id,
                source,
                deltas,
            } => {
                collector.ingest_deltas(&source, &deltas);
                let _ = handle.send(&Message::PushAck { request_id });
            }
            Message::DumpMetricsRid { request_id, what } => {
                let text = collector.view(&what);
                let _ = handle.send(&Message::MetricsReplyRid { request_id, text });
            }
            Message::DumpMetrics => {
                let text = collector.view("");
                let _ = handle.send(&Message::MetricsReply { text });
            }
            Message::Ping => {
                let _ = handle.send(&Message::Pong);
            }
            Message::Shutdown => handle.close(),
            _ => {}
        },
    )
}
