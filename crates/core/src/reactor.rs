//! Readiness-driven serving core.
//!
//! The PR-5 server parked one OS worker thread per accepted connection for
//! the connection's whole lifetime, so a process could hold at most
//! `workers` peers — nowhere near the "thousands of SeDs across sites"
//! topology the roadmap targets. This module replaces that model with a
//! single reactor thread multiplexing every connection through an
//! `epoll`-style readiness loop (std + a thin FFI shim; no external deps):
//!
//! * An **idle connection costs a registered buffer**, not a thread. The
//!   reactor owns the listener and every accepted socket in non-blocking
//!   mode; `epoll_wait` wakes it only for sockets with work to do, so the
//!   wakeup cost is O(ready), not O(connections).
//! * **Reads are state machines.** Bytes accumulate in a per-connection
//!   [`FrameBuf`]; only once a complete `[u32 length][payload]` frame is
//!   buffered is it dispatched to the bounded worker pool. A peer that
//!   trickles one byte at a time (or never completes its header) costs
//!   buffer space, never a worker.
//! * **The receive path is zero-copy.** `FrameBuf` freezes its fill buffer
//!   into [`Bytes`] and hands out O(1) frame slices; the codec decodes
//!   strings and file blobs as further slices of the same allocation.
//! * **Replies are queued writes.** A handler calls [`ConnHandle::send`]
//!   from any thread; the frame lands in the connection's write queue and
//!   the reactor flushes it when the socket is writable, registering for
//!   write-readiness only while bytes are actually queued.
//!
//! Backpressure and failure semantics carry over from the thread-per-
//! connection core: a full dispatch queue answers `Busy` echoing the
//! frame's request id (uncorrelated frames are dropped — a `Busy{0}` would
//! poison the whole client-side mux); `kill` severs every socket so peers
//! observe a crash; an oversized length prefix closes the connection
//! before any body byte is buffered; a closed peer is pruned from the
//! reactor's table immediately (the old kill-list grew without bound).

use crate::codec::{decode_message, encode_message, peek_request_id, Message};
use crate::error::DietError;
use crate::transport::{ServerConfig, DEFAULT_MAX_FRAME};
use bytes::Bytes;
use crossbeam::channel::{bounded, Sender, TrySendError};
use obs::{Counter, Gauge, Histogram, Obs, Registry};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-`read` chunk size — bounds transient allocation to what arrived.
const READ_CHUNK: usize = 64 << 10;

/// Reads one connection may consume per readiness event before the reactor
/// moves on (level-triggered polling re-arms it). Keeps a firehose peer
/// from starving everyone else on the loop.
const READ_BUDGET: usize = 16;

/// Cap on queued-but-unsent reply bytes per connection. A peer that stops
/// reading while replies pile up is disconnected instead of ballooning the
/// server's memory.
const WRITE_QUEUE_CAP: usize = 64 << 20;

/// First-class reactor instrumentation (ISSUE 8): every counter here was
/// previously a silent drop or an unobservable loop property. Handles are
/// interned once at spawn so the hot loop touches only atomics.
pub(crate) struct ReactorMetrics {
    /// Wall time spent servicing one wakeup (accept + reads + dispatch +
    /// flushes) — the loop's scheduling latency floor for everyone on it.
    tick_seconds: Arc<Histogram>,
    /// Size of the last ready set handed back by the poller.
    ready_events: Arc<Gauge>,
    /// Frames sitting in the bounded dispatch queue awaiting a worker.
    dispatch_depth: Arc<Gauge>,
    /// Unsent reply bytes queued across all connections (the sum the
    /// 64 MiB per-connection cap bounds).
    write_queue_bytes: Arc<Gauge>,
    /// `Busy` answered because the dispatch queue was full.
    busy_rejections: Arc<Counter>,
    /// Peers severed because their write queue hit [`WRITE_QUEUE_CAP`].
    write_overflow_severed: Arc<Counter>,
    /// Connections cut off for advertising an oversized length prefix.
    oversized_frames: Arc<Counter>,
    /// Uncorrelated (rid 0) frames dropped on dispatch overflow — the
    /// cases where a `Busy{0}` would have poisoned the peer's mux.
    rid0_drops: Arc<Counter>,
    /// Connections torn down abnormally (overflow, oversized frame, I/O
    /// error, kill) — peer-initiated EOF is a normal close, not a sever.
    severed_conns: Arc<Counter>,
}

impl ReactorMetrics {
    fn new(reg: &Registry) -> Self {
        ReactorMetrics {
            tick_seconds: reg.histogram("diet_reactor_tick_seconds"),
            ready_events: reg.gauge("diet_reactor_ready_events"),
            dispatch_depth: reg.gauge("diet_reactor_dispatch_depth"),
            write_queue_bytes: reg.gauge("diet_reactor_write_queue_bytes"),
            busy_rejections: reg.counter("diet_reactor_busy_rejections_total"),
            write_overflow_severed: reg.counter("diet_reactor_write_overflow_severed_total"),
            oversized_frames: reg.counter("diet_reactor_oversized_frames_total"),
            rid0_drops: reg.counter("diet_reactor_rid0_drops_total"),
            severed_conns: reg.counter("diet_reactor_severed_conns_total"),
        }
    }
}

/// A readiness event: which registration fired and how.
pub(crate) struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
}

// ------------------------------------------------------------------- poller
//
// Linux gets epoll: with thousands of idle connections on one core, a
// poll(2) scan would be O(n) per wakeup and eat the CPU the foreground
// workload is being benchmarked on. Other unixes fall back to poll(2).

#[cfg(target_os = "linux")]
mod sys {
    use super::Event;
    use std::io;
    use std::os::unix::io::RawFd;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    // The kernel ABI packs epoll_event on x86-64 only.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn cvt(r: i32) -> io::Result<i32> {
        if r < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(r)
        }
    }

    pub struct Poller {
        epfd: i32,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(
            &mut self,
            op: i32,
            fd: RawFd,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            let mut events = 0;
            if read {
                events |= EPOLLIN | EPOLLRDHUP;
            }
            if write {
                events |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub fn add(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, read, write)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, read, write)
        }

        pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, false, false)
        }

        /// Block until a registered fd is ready (`timeout_ms < 0` blocks
        /// indefinitely), appending events to `out`. Errors and hangups
        /// report as readable so the read path observes them as EOF.
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let n = loop {
                match cvt(unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as i32,
                        timeout_ms,
                    )
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &self.buf[..n] {
                let events = ev.events;
                let token = ev.data;
                out.push(Event {
                    token,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                });
            }
            if n == self.buf.len() {
                // Saturated the event buffer: grow so a big ready set
                // drains in one syscall next time.
                self.buf.resize(n * 2, EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::Event;
    use std::io;
    use std::os::unix::io::RawFd;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// poll(2)-backed fallback: O(registered) per wakeup, fine for the
    /// modest fd counts non-Linux dev machines see in tests.
    pub struct Poller {
        reg: Vec<(RawFd, u64, bool, bool)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Poller { reg: Vec::new() })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.reg.push((fd, token, read, write));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            for r in &mut self.reg {
                if r.0 == fd {
                    *r = (fd, token, read, write);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
            self.reg.retain(|r| r.0 != fd);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .reg
                .iter()
                .map(|&(fd, _, read, write)| PollFd {
                    fd,
                    events: if read { POLLIN } else { 0 } | if write { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let n = loop {
                match unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) } {
                    -1 => {
                        let e = io::Error::last_os_error();
                        if e.kind() == io::ErrorKind::Interrupted {
                            continue;
                        }
                        return Err(e);
                    }
                    n => break n,
                }
            };
            if n <= 0 {
                return Ok(());
            }
            for (pfd, &(_, token, _, _)) in fds.iter().zip(&self.reg) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: pfd.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                });
            }
            Ok(())
        }
    }
}

pub(crate) use sys::Poller;

// -------------------------------------------------------------------- waker

/// Cross-thread wakeup for a thread parked in [`Poller::wait`]. std has no
/// pipe, so the wake channel is a self-connected loopback TCP pair; an
/// atomic coalesces bursts of wakes into one in-flight byte.
pub(crate) struct Waker {
    tx: TcpStream,
    rx: TcpStream,
    pending: AtomicBool,
}

impl Waker {
    pub fn new() -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        tx.set_nodelay(true).ok();
        Ok(Waker {
            tx,
            rx,
            pending: AtomicBool::new(false),
        })
    }

    /// Nudge the poller out of its wait. Coalesced: while a byte is already
    /// in flight further wakes are a single atomic read-modify-write.
    pub fn wake(&self) {
        if !self.pending.swap(true, Ordering::AcqRel) {
            let _ = (&self.tx).write(&[1u8]);
        }
    }

    /// Poller side: swallow pending wake bytes and re-arm. Level-triggered
    /// polling makes the ordering forgiving — a byte written after the
    /// drain simply triggers the next wait.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
        self.pending.store(false, Ordering::Release);
    }

    /// The fd the poller registers (read side of the pair).
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }
}

// ----------------------------------------------------------------- framebuf

/// Accumulates raw socket bytes and slices out complete
/// `[u32 length][payload]` frames with zero per-frame copies.
///
/// The completed prefix of the fill buffer is frozen into one [`Bytes`]
/// (an O(1) ownership transfer — the vendored `Bytes` is `Arc<Vec<u8>>`
/// backed) and each frame is an O(1) slice of it; only the partial tail of
/// an in-progress frame is carried over by copy, and that copy is bounded
/// by one frame. Length prefixes are validated against `max_frame` as soon
/// as the 4 header bytes arrive — before any body byte is waited for, so a
/// hostile peer advertising a gigabyte frame is rejected without any
/// allocation tracking it.
pub struct FrameBuf {
    buf: Vec<u8>,
    max_frame: usize,
}

impl FrameBuf {
    pub fn new(max_frame: usize) -> Self {
        FrameBuf {
            buf: Vec::new(),
            max_frame,
        }
    }

    /// Append raw bytes read off the socket.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Change the frame-size cap (applies to frames not yet drained).
    pub fn set_max_frame(&mut self, max_frame: usize) {
        self.max_frame = max_frame;
    }

    /// Bytes buffered but not yet sliced into frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Slice every complete frame into `out`. `Err` means the stream is
    /// unrecoverable (oversized length prefix) and the connection must be
    /// closed.
    pub fn drain_frames(&mut self, out: &mut Vec<Bytes>) -> io::Result<()> {
        // First pass: validate headers and find the complete prefix.
        let mut end = 0;
        loop {
            let rest = self.buf.len() - end;
            if rest < 4 {
                break;
            }
            let n = u32::from_le_bytes(self.buf[end..end + 4].try_into().unwrap()) as usize;
            if n > self.max_frame {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("oversized frame: {n} > max {}", self.max_frame),
                ));
            }
            if rest < 4 + n {
                break;
            }
            end += 4 + n;
        }
        if end == 0 {
            return Ok(());
        }
        // Freeze the complete prefix in O(1); the partial tail becomes the
        // next fill buffer.
        let tail = self.buf.split_off(end);
        let whole = Bytes::from(std::mem::replace(&mut self.buf, tail));
        let mut p = 0;
        while p < whole.len() {
            let n = u32::from_le_bytes(whole[p..p + 4].try_into().unwrap()) as usize;
            out.push(whole.slice(p + 4..p + 4 + n));
            p += 4 + n;
        }
        Ok(())
    }
}

// -------------------------------------------------------------- conn handle

#[derive(Default)]
struct WriteQ {
    bufs: VecDeque<Bytes>,
    /// Bytes of `bufs[0]` already written to the socket.
    head: usize,
    /// Total unsent bytes across the queue.
    bytes: usize,
}

/// State shared between a connection's [`ConnHandle`]s (held by workers and
/// handler callbacks) and the reactor thread that owns the socket.
struct ConnShared {
    token: u64,
    peer: SocketAddr,
    /// A dup of the reactor-owned socket for the sender-side fast path:
    /// when the write queue is empty, `send` writes the frame here directly
    /// instead of paying a waker round-trip through the reactor. Every
    /// write — fast path and reactor flush alike — happens under the `wq`
    /// lock, so frames from concurrent senders never interleave.
    stream: TcpStream,
    wq: Mutex<WriteQ>,
    /// Set by the reactor once the socket is gone; sends fail fast after.
    closed: AtomicBool,
    /// Set by [`ConnHandle::close`]: the reactor flushes queued replies and
    /// then shuts the socket down.
    close_requested: AtomicBool,
}

/// A handle to one reactor-owned connection, cheap to clone and safe to use
/// from any thread. Sending writes straight to the (non-blocking) socket
/// while the queue is empty; anything the socket won't take is queued for
/// the reactor to flush on writability.
#[derive(Clone)]
pub struct ConnHandle {
    conn: Arc<ConnShared>,
    reactor: Arc<ReactorShared>,
}

impl ConnHandle {
    /// Deliver `m`: direct non-blocking write when nothing is queued ahead
    /// of it, queued for the reactor otherwise. Fails once the connection
    /// is closed or its write queue overflows [`WRITE_QUEUE_CAP`] (the
    /// peer stopped reading; it is disconnected rather than buffered
    /// without bound).
    pub fn send(&self, m: &Message) -> Result<(), DietError> {
        if self.conn.closed.load(Ordering::Acquire) {
            return Err(DietError::Transport("connection closed".into()));
        }
        let payload = encode_message(m);
        // The prefix and the payload travel as two buffers: the payload
        // Bytes is used as-is, no copy into a frame vec.
        let bufs = [
            Bytes::from((payload.len() as u32).to_le_bytes().to_vec()),
            payload,
        ];
        let total = bufs[0].len() + bufs[1].len();

        let mut wq = self.conn.wq.lock();
        // Re-check under the lock: prune() sets `closed` before reading the
        // queue's byte count, so bailing here keeps the reactor-wide
        // queued-bytes accounting exact (nothing queued after the snapshot).
        if self.conn.closed.load(Ordering::Acquire) {
            return Err(DietError::Transport("connection closed".into()));
        }
        if wq.bytes + total > WRITE_QUEUE_CAP {
            drop(wq);
            self.reactor.metrics.write_overflow_severed.inc();
            self.reactor.metrics.severed_conns.inc();
            self.close();
            return Err(DietError::Transport("write queue overflow".into()));
        }
        // Fast path: queue empty and no close pending — write as much as
        // the socket takes right now, from the sender's thread.
        let mut idx = 0;
        let mut off = 0;
        if wq.bufs.is_empty() && !self.conn.close_requested.load(Ordering::Acquire) {
            'direct: while idx < bufs.len() {
                let b = &bufs[idx];
                while off < b.len() {
                    match (&self.conn.stream).write(&b[off..]) {
                        Ok(0) => {
                            drop(wq);
                            self.close();
                            return Err(DietError::Transport("connection closed".into()));
                        }
                        Ok(n) => off += n,
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break 'direct,
                        Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => {
                            drop(wq);
                            self.close();
                            return Err(DietError::Transport(format!("send: {e}")));
                        }
                    }
                }
                idx += 1;
                off = 0;
            }
            if idx == bufs.len() {
                return Ok(()); // fully written, reactor never involved
            }
        }
        // Queue the remainder (possibly everything) for the reactor.
        let [prefix, payload] = bufs;
        let queued = if idx == 0 {
            let queued = prefix.len() - off + payload.len();
            wq.bytes += queued;
            wq.bufs.push_back(if off == 0 {
                prefix
            } else {
                prefix.slice(off..)
            });
            wq.bufs.push_back(payload);
            queued
        } else {
            let queued = payload.len() - off;
            wq.bytes += queued;
            wq.bufs.push_back(if off == 0 {
                payload
            } else {
                payload.slice(off..)
            });
            queued
        };
        // Account while still holding the queue lock: prune() snapshots
        // `wq.bytes` under the same lock, so add and snapshot cannot cross.
        self.reactor
            .queued_total
            .fetch_add(queued as u64, Ordering::Relaxed);
        drop(wq);
        self.reactor.mark_dirty(self.conn.token);
        Ok(())
    }

    /// Flush queued replies, then close the connection. Idempotent; safe
    /// from any thread.
    pub fn close(&self) {
        self.conn.close_requested.store(true, Ordering::Release);
        self.reactor.mark_dirty(self.conn.token);
    }

    /// Has the reactor torn this connection down?
    pub fn is_closed(&self) -> bool {
        self.conn.closed.load(Ordering::Acquire)
    }

    /// The remote peer (diagnostics).
    pub fn peer_addr(&self) -> SocketAddr {
        self.conn.peer
    }
}

// ------------------------------------------------------------------ reactor

/// Reactor-side state shared with [`TcpServer`](crate::transport::TcpServer)
/// and every [`ConnHandle`].
pub(crate) struct ReactorShared {
    waker: Waker,
    /// Tokens with freshly queued writes or close requests.
    dirty: Mutex<Vec<u64>>,
    stop: AtomicBool,
    kill: AtomicBool,
    conn_count: AtomicUsize,
    /// Unsent bytes queued across every connection, maintained O(1) at the
    /// send/flush/prune sites so the per-tick gauge update never iterates
    /// the connection table (which may hold thousands of idle conns).
    queued_total: AtomicU64,
    metrics: ReactorMetrics,
}

impl ReactorShared {
    fn mark_dirty(&self, token: u64) {
        self.dirty.lock().push(token);
        self.waker.wake();
    }

    /// Stop accepting; existing connections keep being served. The reactor
    /// exits once the last one closes.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.waker.wake();
    }

    /// Simulated crash: sever every connection and exit immediately.
    pub fn request_kill(&self) {
        self.kill.store(true, Ordering::Release);
        self.waker.wake();
    }

    /// Live connections currently registered with the reactor.
    pub fn connections(&self) -> usize {
        self.conn_count.load(Ordering::Acquire)
    }
}

const TOK_LISTENER: u64 = 0;
const TOK_WAKER: u64 = 1;
const TOK_FIRST_CONN: u64 = 2;

struct Conn {
    stream: TcpStream,
    fb: FrameBuf,
    shared: Arc<ConnShared>,
    /// Registered for write-readiness (only while bytes are queued).
    want_write: bool,
}

type Handler = Arc<dyn Fn(&ConnHandle, Message) + Send + Sync>;

/// Spawn the reactor thread plus `cfg.workers` dispatch workers for
/// `listener`. Frames are decoded zero-copy on the workers and handed to
/// `handler`; the returned [`ReactorShared`] is the control surface
/// (`stop`/`kill`/connection count).
pub(crate) fn spawn(
    listener: TcpListener,
    cfg: ServerConfig,
    handler: Handler,
    busy_rejections: Arc<AtomicU64>,
) -> Result<Arc<ReactorShared>, DietError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| DietError::Transport(format!("set_nonblocking: {e}")))?;
    let waker = Waker::new().map_err(|e| DietError::Transport(format!("waker: {e}")))?;
    let mut poller = Poller::new().map_err(|e| DietError::Transport(format!("poller: {e}")))?;
    poller
        .add(listener.as_raw_fd(), TOK_LISTENER, true, false)
        .and_then(|_| poller.add(waker.fd(), TOK_WAKER, true, false))
        .map_err(|e| DietError::Transport(format!("poller register: {e}")))?;
    // Instrumentation lands in the injected registry when the server has
    // one; a throwaway Obs otherwise keeps the hot loop branchless.
    let obs = cfg
        .obs
        .clone()
        .unwrap_or_else(|| Arc::new(Obs::with_capacity(16)));
    let shared = Arc::new(ReactorShared {
        waker,
        dirty: Mutex::new(Vec::new()),
        stop: AtomicBool::new(false),
        kill: AtomicBool::new(false),
        conn_count: AtomicUsize::new(0),
        queued_total: AtomicU64::new(0),
        metrics: ReactorMetrics::new(&obs.metrics),
    });

    // Dispatch workers: complete frames only — no worker ever blocks on a
    // half-read socket. `depth` mirrors the bounded channel's occupancy for
    // the dispatch-depth gauge (the vendored channel exposes no len()).
    let depth = Arc::new(AtomicU64::new(0));
    let (work_tx, work_rx) = bounded::<(ConnHandle, Bytes)>(cfg.accept_queue.max(1));
    for _ in 0..cfg.workers.max(1) {
        let rx = work_rx.clone();
        let h = handler.clone();
        let depth = depth.clone();
        std::thread::spawn(move || {
            while let Ok((handle, frame)) = rx.recv() {
                depth.fetch_sub(1, Ordering::Relaxed);
                match decode_message(frame) {
                    Ok(msg) => h(&handle, msg),
                    // Garbage that framed correctly but does not decode:
                    // the stream is not trustworthy past this point.
                    Err(_) => handle.close(),
                }
            }
        });
    }

    let reactor = Reactor {
        poller,
        listener,
        shared: shared.clone(),
        conns: HashMap::new(),
        next_token: TOK_FIRST_CONN,
        work_tx,
        depth,
        busy: busy_rejections,
        faults: cfg.faults.clone(),
        accepting: true,
        events: Vec::new(),
        frames: Vec::new(),
    };
    std::thread::spawn(move || reactor.run());
    Ok(shared)
}

struct Reactor {
    poller: Poller,
    listener: TcpListener,
    shared: Arc<ReactorShared>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    work_tx: Sender<(ConnHandle, Bytes)>,
    /// Occupancy of the bounded dispatch channel (inc on send, dec on
    /// worker receive).
    depth: Arc<AtomicU64>,
    busy: Arc<AtomicU64>,
    faults: Option<Arc<crate::faults::FaultPlan>>,
    accepting: bool,
    events: Vec<Event>,
    frames: Vec<Bytes>,
}

impl Reactor {
    fn run(mut self) {
        loop {
            let mut events = std::mem::take(&mut self.events);
            events.clear();
            if self.poller.wait(&mut events, -1).is_err() {
                break;
            }
            // The tick clock starts once the poller hands work back: time
            // blocked waiting is idleness, not loop latency.
            let tick_start = Instant::now();
            if self.shared.kill.load(Ordering::Acquire) {
                break;
            }
            if self.shared.stop.load(Ordering::Acquire) && self.accepting {
                self.accepting = false;
                let _ = self.poller.delete(self.listener.as_raw_fd());
            }
            self.shared.metrics.ready_events.set(events.len() as f64);
            for ev in &events {
                match ev.token {
                    TOK_LISTENER => self.accept_ready(),
                    TOK_WAKER => self.shared.waker.drain(),
                    token => {
                        if ev.writable {
                            self.flush(token);
                        }
                        if ev.readable {
                            self.read_ready(token);
                        }
                    }
                }
            }
            self.events = events;
            // Writes and closes queued by handler threads since last wake.
            let dirty: Vec<u64> = std::mem::take(&mut *self.shared.dirty.lock());
            for token in dirty {
                self.flush(token);
            }
            let m = &self.shared.metrics;
            m.dispatch_depth
                .set(self.depth.load(Ordering::Relaxed) as f64);
            m.write_queue_bytes
                .set(self.shared.queued_total.load(Ordering::Relaxed) as f64);
            m.tick_seconds.observe(tick_start.elapsed().as_secs_f64());
            if !self.accepting && self.conns.is_empty() {
                break;
            }
        }
        // Kill or orderly exit: sever whatever is left so peers observe a
        // dead server instead of a silent one.
        let leftover = self.conns.len() as u64;
        if leftover > 0 {
            self.shared.metrics.severed_conns.add(leftover);
        }
        for (_, conn) in self.conns.drain() {
            conn.shared.closed.store(true, Ordering::Release);
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        self.shared.conn_count.store(0, Ordering::Release);
        self.shared.queued_total.store(0, Ordering::Release);
        self.shared.metrics.write_queue_bytes.set(0.0);
    }

    fn accept_ready(&mut self) {
        if !self.accepting {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if let Some(d) = self.faults.as_ref().and_then(|f| f.accept_delay()) {
                        // The fault models a wedged host: the whole loop
                        // stalls, exactly like the process it simulates.
                        std::thread::sleep(d);
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let Ok(sender_stream) = stream.try_clone() else {
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        continue;
                    };
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .add(stream.as_raw_fd(), token, true, false)
                        .is_err()
                    {
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        continue;
                    }
                    let shared = Arc::new(ConnShared {
                        token,
                        peer,
                        stream: sender_stream,
                        wq: Mutex::new(WriteQ::default()),
                        closed: AtomicBool::new(false),
                        close_requested: AtomicBool::new(false),
                    });
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            fb: FrameBuf::new(DEFAULT_MAX_FRAME),
                            shared,
                            want_write: false,
                        },
                    );
                    self.shared.conn_count.fetch_add(1, Ordering::AcqRel);
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn read_ready(&mut self, token: u64) {
        let mut dead = false;
        let mut severed = false;
        let mut frames = std::mem::take(&mut self.frames);
        frames.clear();
        let handle = {
            let Some(conn) = self.conns.get_mut(&token) else {
                self.frames = frames;
                return;
            };
            if conn.shared.close_requested.load(Ordering::Acquire) {
                // Closing: stop consuming input; flush() owns teardown.
                self.frames = frames;
                return;
            }
            let mut scratch = [0u8; READ_CHUNK];
            let mut budget = READ_BUDGET;
            while budget > 0 {
                budget -= 1;
                match (&conn.stream).read(&mut scratch) {
                    Ok(0) => {
                        // Peer-initiated EOF: a normal close, not a sever.
                        dead = true;
                        break;
                    }
                    Ok(n) => conn.fb.push(&scratch[..n]),
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        severed = true;
                        break;
                    }
                }
            }
            if conn.fb.drain_frames(&mut frames).is_err() {
                // Oversized length prefix: cut the peer off before any
                // body accumulates. Frames already sliced die with it.
                self.shared.metrics.oversized_frames.inc();
                frames.clear();
                dead = true;
                severed = true;
            }
            ConnHandle {
                conn: conn.shared.clone(),
                reactor: self.shared.clone(),
            }
        };
        for frame in frames.drain(..) {
            self.depth.fetch_add(1, Ordering::Relaxed);
            match self.work_tx.try_send((handle.clone(), frame)) {
                Ok(()) => {}
                Err(TrySendError::Full((h, frame))) => {
                    // Dispatch queue full: explicit backpressure per
                    // request, echoing its id so exactly that caller backs
                    // off. Uncorrelated frames (rid 0: Ping, DumpMetrics)
                    // are dropped — Busy{0} would poison the peer's whole
                    // mux connection — but the drop is counted, not silent.
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                    self.busy.fetch_add(1, Ordering::Relaxed);
                    self.shared.metrics.busy_rejections.inc();
                    let rid = peek_request_id(&frame);
                    if rid != 0 {
                        let _ = h.send(&Message::Busy { request_id: rid });
                    } else {
                        self.shared.metrics.rid0_drops.inc();
                    }
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                    dead = true;
                    break;
                }
            }
        }
        self.frames = frames;
        if dead {
            if severed {
                self.shared.metrics.severed_conns.inc();
            }
            self.prune(token);
        }
    }

    /// Write queued bytes until the socket would block; toggle the write-
    /// readiness registration to match whether anything remains queued.
    fn flush(&mut self, token: u64) {
        let mut dead = false;
        let flushed;
        let mut toggle: Option<(RawFd, bool)> = None;
        if let Some(conn) = self.conns.get_mut(&token) {
            let mut wq = conn.shared.wq.lock();
            'write: while let Some(front) = wq.bufs.front() {
                let off = wq.head;
                let front_len = front.len();
                match (&conn.stream).write(&front[off..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        wq.head += n;
                        wq.bytes -= n;
                        self.shared
                            .queued_total
                            .fetch_sub(n as u64, Ordering::Relaxed);
                        if wq.head == front_len {
                            wq.head = 0;
                            wq.bufs.pop_front();
                        }
                    }
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break 'write,
                    Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            flushed = wq.bufs.is_empty();
            drop(wq);
            if dead {
                // The peer died with replies still owed: an abnormal end.
                self.shared.metrics.severed_conns.inc();
            }
            if !dead {
                if !flushed && !conn.want_write {
                    conn.want_write = true;
                    toggle = Some((conn.stream.as_raw_fd(), true));
                } else if flushed && conn.want_write {
                    conn.want_write = false;
                    toggle = Some((conn.stream.as_raw_fd(), false));
                }
            }
        } else {
            return;
        }
        if let Some((fd, write)) = toggle {
            let _ = self.poller.modify(fd, token, true, write);
        }
        let close_req = self
            .conns
            .get(&token)
            .is_some_and(|c| c.shared.close_requested.load(Ordering::Acquire));
        if dead || (flushed && close_req) {
            self.prune(token);
        }
    }

    fn prune(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            conn.shared.closed.store(true, Ordering::Release);
            // Un-account reply bytes dying with the connection. `closed`
            // is set first, so a racing `send` either queued before (its
            // bytes are in this snapshot) or fails fast without queuing.
            let abandoned = conn.shared.wq.lock().bytes;
            if abandoned > 0 {
                self.shared
                    .queued_total
                    .fetch_sub(abandoned as u64, Ordering::Relaxed);
            }
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            self.shared.conn_count.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framebuf_slices_whole_frames_zero_copy() {
        let mut fb = FrameBuf::new(1 << 20);
        let mut wire = Vec::new();
        for payload in [&b"abc"[..], &b""[..], &b"defgh"[..]] {
            wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            wire.extend_from_slice(payload);
        }
        fb.push(&wire);
        let mut out = Vec::new();
        fb.drain_frames(&mut out).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(&out[0][..], b"abc");
        assert_eq!(&out[1][..], b"");
        assert_eq!(&out[2][..], b"defgh");
        assert_eq!(fb.buffered(), 0);
        // Frames share one backing allocation: slices of the same freeze.
        // Frame 1 starts len("abc") + one 4-byte header past frame 0.
        assert_eq!(
            out[0].as_ptr() as usize + 3 + 4,
            out[1].as_ptr() as usize,
            "frame slices must come from one frozen buffer"
        );
    }

    #[test]
    fn framebuf_keeps_partial_tail() {
        let mut fb = FrameBuf::new(1 << 20);
        let payload = b"hello world";
        let mut wire = Vec::new();
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(payload);
        // Deliver one byte at a time: no frame until the last byte lands.
        let mut out = Vec::new();
        for (i, b) in wire.iter().enumerate() {
            fb.push(std::slice::from_ref(b));
            fb.drain_frames(&mut out).unwrap();
            if i + 1 < wire.len() {
                assert!(out.is_empty(), "premature frame at byte {i}");
            }
        }
        assert_eq!(out.len(), 1);
        assert_eq!(&out[0][..], &payload[..]);
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn framebuf_partial_frame_after_complete_ones() {
        let mut fb = FrameBuf::new(1 << 20);
        let mut wire = Vec::new();
        wire.extend_from_slice(&3u32.to_le_bytes());
        wire.extend_from_slice(b"one");
        wire.extend_from_slice(&100u32.to_le_bytes());
        wire.extend_from_slice(b"partial body");
        fb.push(&wire);
        let mut out = Vec::new();
        fb.drain_frames(&mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(&out[0][..], b"one");
        // The in-progress frame's bytes carried over.
        assert_eq!(fb.buffered(), 4 + "partial body".len());
        // Completing it later yields the second frame.
        fb.push(&[b'x'; 100 - "partial body".len()]);
        fb.drain_frames(&mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].len(), 100);
    }

    #[test]
    fn framebuf_rejects_oversized_header_before_body() {
        let mut fb = FrameBuf::new(1024);
        // Header only — no body byte ever arrives, and none is needed to
        // reject.
        fb.push(&(usize::MAX as u32).to_le_bytes());
        let mut out = Vec::new();
        let err = fb.drain_frames(&mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(out.is_empty());
    }

    #[test]
    fn waker_coalesces_and_rearms() {
        let w = Waker::new().unwrap();
        w.wake();
        w.wake();
        w.wake();
        // Give loopback delivery a moment.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut buf = [0u8; 16];
        let n = (&w.rx).read(&mut buf).unwrap();
        assert_eq!(n, 1, "coalesced wakes must produce one in-flight byte");
        w.pending.store(false, Ordering::Release);
        w.wake();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(matches!((&w.rx).read(&mut buf), Ok(1)));
    }
}
