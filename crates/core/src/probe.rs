//! Host monitoring probes.
//!
//! DIET's SeDs advertised "all information concerning its load (for example
//! available memory and processor)", collected by the FAST/CoRI layer from
//! the operating system. [`SystemProbe`] is that collector: on Linux it
//! reads `/proc/loadavg` and `/proc/meminfo`; everywhere else (or when
//! `/proc` is unreadable) it degrades to a [`StaticProbe`]-style constant
//! report, so estimates never block on the OS.

/// What a probe reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostReport {
    /// 1-minute load average.
    pub load1: f64,
    /// Free (available) memory in bytes.
    pub free_memory: u64,
    /// Total memory in bytes.
    pub total_memory: u64,
}

/// A source of host reports.
pub trait Probe: Send + Sync {
    fn report(&self) -> HostReport;
}

/// Fixed numbers — deterministic tests and simulated deployments.
#[derive(Debug, Clone, Copy)]
pub struct StaticProbe(pub HostReport);

impl Probe for StaticProbe {
    fn report(&self) -> HostReport {
        self.0
    }
}

/// Reads the local OS, falling back to `fallback` values per field when a
/// source is unavailable.
#[derive(Debug, Clone, Copy)]
pub struct SystemProbe {
    pub fallback: HostReport,
}

impl Default for SystemProbe {
    fn default() -> Self {
        SystemProbe {
            fallback: HostReport {
                load1: 0.0,
                free_memory: 8 << 30,
                total_memory: 16 << 30,
            },
        }
    }
}

impl SystemProbe {
    fn read_loadavg(&self) -> Option<f64> {
        let text = std::fs::read_to_string("/proc/loadavg").ok()?;
        text.split_whitespace().next()?.parse().ok()
    }

    fn read_meminfo(&self) -> Option<(u64, u64)> {
        let text = std::fs::read_to_string("/proc/meminfo").ok()?;
        let mut total = None;
        let mut avail = None;
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            match parts.next()? {
                "MemTotal:" => total = parts.next()?.parse::<u64>().ok().map(|kb| kb * 1024),
                "MemAvailable:" => avail = parts.next()?.parse::<u64>().ok().map(|kb| kb * 1024),
                _ => {}
            }
            if total.is_some() && avail.is_some() {
                break;
            }
        }
        Some((avail?, total?))
    }
}

impl Probe for SystemProbe {
    fn report(&self) -> HostReport {
        let load1 = self.read_loadavg().unwrap_or(self.fallback.load1);
        let (free_memory, total_memory) = self
            .read_meminfo()
            .unwrap_or((self.fallback.free_memory, self.fallback.total_memory));
        HostReport {
            load1,
            free_memory,
            total_memory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_probe_is_constant() {
        let p = StaticProbe(HostReport {
            load1: 2.5,
            free_memory: 1024,
            total_memory: 4096,
        });
        assert_eq!(p.report(), p.report());
        assert_eq!(p.report().load1, 2.5);
    }

    #[test]
    fn system_probe_reports_sane_values() {
        // On Linux this reads /proc; elsewhere the fallback applies. Either
        // way the invariants hold.
        let p = SystemProbe::default();
        let r = p.report();
        assert!(r.load1 >= 0.0 && r.load1 < 10_000.0);
        assert!(r.total_memory > 0);
        assert!(r.free_memory <= r.total_memory || r.free_memory == p.fallback.free_memory);
    }

    #[test]
    fn system_probe_is_probe_trait_object() {
        let probes: Vec<Box<dyn Probe>> = vec![
            Box::new(SystemProbe::default()),
            Box::new(StaticProbe(HostReport {
                load1: 0.0,
                free_memory: 1,
                total_memory: 1,
            })),
        ];
        for p in &probes {
            let _ = p.report();
        }
    }
}
