//! Typed argument values and persistence modes.
//!
//! DIET profiles carry typed arguments: scalars, vectors/matrices, strings
//! and files, each tagged with a persistence mode controlling whether the
//! middleware may cache the data on the server after the call
//! (`DIET_VOLATILE` vs `DIET_PERSISTENT`/`DIET_STICKY`). The paper's
//! `ramsesZoom2` service uses files and `DIET_INT` scalars, all volatile.

use bytes::{ByteStr, Bytes};
use std::sync::Arc;

/// Element base types (the `diet_base_type_t` analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseType {
    Char,
    Int32,
    Int64,
    Float,
    Double,
}

impl BaseType {
    pub fn size_bytes(self) -> usize {
        match self {
            BaseType::Char => 1,
            BaseType::Int32 | BaseType::Float => 4,
            BaseType::Int64 | BaseType::Double => 8,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            BaseType::Char => "char",
            BaseType::Int32 => "int32",
            BaseType::Int64 => "int64",
            BaseType::Float => "float",
            BaseType::Double => "double",
        }
    }
}

/// Persistence modes (the `diet_persistence_mode_t` analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Persistence {
    /// Freed on the server right after the call (the paper uses this for
    /// every `ramsesZoom2` argument).
    #[default]
    Volatile,
    /// Kept on the server, movable to another server on demand.
    Persistent,
    /// Kept on the server, never moved.
    Sticky,
}

/// A typed value (the content behind a `diet_arg_t`).
#[derive(Debug, Clone, PartialEq)]
pub enum DietValue {
    /// Absent — OUT arguments before the call ("declared even if their
    /// values is set to NULL").
    Null,
    ScalarI32(i32),
    ScalarI64(i64),
    ScalarF64(f64),
    ScalarChar(u8),
    /// Dense vector of doubles. Arc-backed so clone/retain are refcount
    /// bumps, not deep copies.
    VectorF64(Arc<[f64]>),
    /// Dense vector of 32-bit ints. Arc-backed like `VectorF64`.
    VectorI32(Arc<[i32]>),
    /// UTF-8 string (paramstring). [`ByteStr`]-backed so a decoded wire
    /// frame hands out an O(1) slice of the receive buffer instead of a
    /// fresh `String` allocation + copy.
    Str(ByteStr),
    /// A file: logical name plus contents. DIET ships files by content; the
    /// `name` mirrors the client-side path for diagnostics.
    File {
        name: String,
        data: Bytes,
    },
    /// A reference to data already resident on the grid (DAGDA handle): the
    /// client ships only the id; the executing SeD resolves it from its own
    /// store or pulls it from the owning SeD before the solve.
    DataRef {
        id: String,
    },
}

impl DietValue {
    pub fn type_name(&self) -> &'static str {
        match self {
            DietValue::Null => "null",
            DietValue::ScalarI32(_) => "scalar i32",
            DietValue::ScalarI64(_) => "scalar i64",
            DietValue::ScalarF64(_) => "scalar f64",
            DietValue::ScalarChar(_) => "scalar char",
            DietValue::VectorF64(_) => "vector f64",
            DietValue::VectorI32(_) => "vector i32",
            DietValue::Str(_) => "string",
            DietValue::File { .. } => "file",
            DietValue::DataRef { .. } => "data ref",
        }
    }

    /// Build an Arc-backed f64 vector value.
    pub fn vec_f64(v: impl Into<Arc<[f64]>>) -> Self {
        DietValue::VectorF64(v.into())
    }

    /// Build an Arc-backed i32 vector value.
    pub fn vec_i32(v: impl Into<Arc<[i32]>>) -> Self {
        DietValue::VectorI32(v.into())
    }

    /// Build a grid-data reference.
    pub fn data_ref(id: impl Into<String>) -> Self {
        DietValue::DataRef { id: id.into() }
    }

    /// Payload size in bytes — what the transport actually moves; drives the
    /// latency accounting the paper measures in Figure 5.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            DietValue::Null => 0,
            DietValue::ScalarI32(_) => 4,
            DietValue::ScalarI64(_) | DietValue::ScalarF64(_) => 8,
            DietValue::ScalarChar(_) => 1,
            DietValue::VectorF64(v) => (v.len() * 8) as u64,
            DietValue::VectorI32(v) => (v.len() * 4) as u64,
            DietValue::Str(s) => s.len() as u64,
            DietValue::File { name, data } => (name.len() + data.len()) as u64,
            // The whole point of a ref: only the id crosses the wire.
            DietValue::DataRef { id } => id.len() as u64,
        }
    }

    /// Convenience accessors used by solve functions (the `diet_*_get` API).
    pub fn as_i32(&self) -> Option<i32> {
        match self {
            DietValue::ScalarI32(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            DietValue::ScalarF64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            DietValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn as_file(&self) -> Option<(&str, &Bytes)> {
        match self {
            DietValue::File { name, data } => Some((name, data)),
            _ => None,
        }
    }

    pub fn as_data_ref(&self) -> Option<&str> {
        match self {
            DietValue::DataRef { id } => Some(id),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, DietValue::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes() {
        assert_eq!(DietValue::Null.payload_bytes(), 0);
        assert_eq!(DietValue::ScalarI32(7).payload_bytes(), 4);
        assert_eq!(DietValue::vec_f64(vec![0.0; 10]).payload_bytes(), 80);
        assert_eq!(DietValue::data_ref("zoom#0").payload_bytes(), 6);
        let f = DietValue::File {
            name: "x.nml".into(),
            data: Bytes::from_static(b"hello"),
        };
        assert_eq!(f.payload_bytes(), 10);
    }

    #[test]
    fn accessors_enforce_types() {
        let v = DietValue::ScalarI32(42);
        assert_eq!(v.as_i32(), Some(42));
        assert_eq!(v.as_f64(), None);
        assert_eq!(v.as_str(), None);
        let s = DietValue::Str("abc".into());
        assert_eq!(s.as_str(), Some("abc"));
        assert!(DietValue::Null.is_null());
    }

    #[test]
    fn base_type_sizes() {
        assert_eq!(BaseType::Char.size_bytes(), 1);
        assert_eq!(BaseType::Int32.size_bytes(), 4);
        assert_eq!(BaseType::Double.size_bytes(), 8);
    }

    #[test]
    fn default_persistence_is_volatile() {
        assert_eq!(Persistence::default(), Persistence::Volatile);
    }

    #[test]
    fn vector_clone_is_a_refcount_bump() {
        let v = DietValue::vec_f64(vec![1.0; 1024]);
        let w = v.clone();
        match (&v, &w) {
            (DietValue::VectorF64(a), DietValue::VectorF64(b)) => {
                assert!(Arc::ptr_eq(a, b), "clone must share the allocation");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn data_ref_accessor() {
        let r = DietValue::data_ref("ic/zoom");
        assert_eq!(r.as_data_ref(), Some("ic/zoom"));
        assert_eq!(DietValue::Null.as_data_ref(), None);
    }
}
