//! Server-side data management.
//!
//! DIET's data manager (DTM/DAGDA lineage) keeps `PERSISTENT` and `STICKY`
//! arguments on the server between calls, so a client can reference data by
//! id instead of re-shipping it. `VOLATILE` data — everything in the paper's
//! `ramsesZoom2` — is freed right after the solve.

use crate::data::{DietValue, Persistence};
use crate::error::DietError;
use parking_lot::RwLock;
use std::collections::HashMap;

/// A stored item.
#[derive(Debug, Clone)]
struct Stored {
    value: DietValue,
    mode: Persistence,
    /// Access counter (eviction / diagnostics).
    hits: u64,
}

/// One server's data store.
#[derive(Debug, Default)]
pub struct DataManager {
    items: RwLock<HashMap<String, Stored>>,
}

impl DataManager {
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a value after a solve, honouring its persistence mode.
    /// Volatile data is dropped (returns false).
    pub fn retain(&self, id: &str, value: DietValue, mode: Persistence) -> bool {
        match mode {
            Persistence::Volatile => false,
            Persistence::Persistent | Persistence::Sticky => {
                self.items.write().insert(
                    id.to_string(),
                    Stored {
                        value,
                        mode,
                        hits: 0,
                    },
                );
                true
            }
        }
    }

    /// Fetch by id, bumping the hit counter.
    pub fn get(&self, id: &str) -> Result<DietValue, DietError> {
        let mut w = self.items.write();
        match w.get_mut(id) {
            Some(s) => {
                s.hits += 1;
                Ok(s.value.clone())
            }
            None => Err(DietError::DataNotFound(id.to_string())),
        }
    }

    /// Take data *away* from this server (migration). Sticky data refuses to
    /// move — that is its contract.
    pub fn take_for_migration(&self, id: &str) -> Result<DietValue, DietError> {
        let mut w = self.items.write();
        match w.get(id) {
            Some(s) if s.mode == Persistence::Sticky => Err(DietError::Rejected(format!(
                "data {id} is sticky and cannot migrate"
            ))),
            Some(_) => Ok(w.remove(id).unwrap().value),
            None => Err(DietError::DataNotFound(id.to_string())),
        }
    }

    /// Client-driven free (the `diet_free_data` analog).
    pub fn free(&self, id: &str) -> Result<(), DietError> {
        self.items
            .write()
            .remove(id)
            .map(|_| ())
            .ok_or_else(|| DietError::DataNotFound(id.to_string()))
    }

    pub fn len(&self) -> usize {
        self.items.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.read().is_empty()
    }

    pub fn hits(&self, id: &str) -> Option<u64> {
        self.items.read().get(id).map(|s| s.hits)
    }

    /// Total bytes held (capacity accounting).
    pub fn stored_bytes(&self) -> u64 {
        self.items
            .read()
            .values()
            .map(|s| s.value.payload_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volatile_is_not_retained() {
        let dm = DataManager::new();
        assert!(!dm.retain("a", DietValue::ScalarI32(1), Persistence::Volatile));
        assert!(dm.is_empty());
        assert!(matches!(dm.get("a"), Err(DietError::DataNotFound(_))));
    }

    #[test]
    fn persistent_is_retained_and_fetchable() {
        let dm = DataManager::new();
        assert!(dm.retain("ic", DietValue::ScalarF64(2.5), Persistence::Persistent));
        assert_eq!(dm.get("ic").unwrap(), DietValue::ScalarF64(2.5));
        assert_eq!(dm.hits("ic"), Some(1));
        dm.get("ic").unwrap();
        assert_eq!(dm.hits("ic"), Some(2));
    }

    #[test]
    fn sticky_refuses_migration_but_persistent_moves() {
        let dm = DataManager::new();
        dm.retain("p", DietValue::ScalarI32(1), Persistence::Persistent);
        dm.retain("s", DietValue::ScalarI32(2), Persistence::Sticky);
        assert_eq!(
            dm.take_for_migration("p").unwrap(),
            DietValue::ScalarI32(1)
        );
        assert_eq!(dm.len(), 1);
        assert!(matches!(
            dm.take_for_migration("s"),
            Err(DietError::Rejected(_))
        ));
        assert_eq!(dm.get("s").unwrap(), DietValue::ScalarI32(2));
    }

    #[test]
    fn free_removes() {
        let dm = DataManager::new();
        dm.retain("x", DietValue::Str("abc".into()), Persistence::Persistent);
        dm.free("x").unwrap();
        assert!(dm.is_empty());
        assert!(dm.free("x").is_err());
    }

    #[test]
    fn stored_bytes_accounts_payloads() {
        let dm = DataManager::new();
        dm.retain(
            "v",
            DietValue::VectorF64(vec![0.0; 16]),
            Persistence::Persistent,
        );
        dm.retain("s", DietValue::Str("abcd".into()), Persistence::Sticky);
        assert_eq!(dm.stored_bytes(), 128 + 4);
    }
}
