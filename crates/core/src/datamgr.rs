//! Server-side data management.
//!
//! DIET's data manager (DTM/DAGDA lineage) keeps `PERSISTENT` and `STICKY`
//! arguments on the server between calls, so a client can reference data by
//! id instead of re-shipping it. `VOLATILE` data — everything in the paper's
//! `ramsesZoom2` — is freed right after the solve.
//!
//! The store is bounded: `with_capacity(bytes)` caps resident payload bytes
//! and evicts least-recently-used `Persistent` items when a retain pushes
//! past the cap. `Sticky` data is pinned — never evicted — so pinned bytes
//! can keep the store over budget; the bound is enforced against evictable
//! items only. Every departure (eviction, `free`, migration) fires the
//! evict hook so a replica catalog can drop the stale location.

use crate::data::{DietValue, Persistence};
use crate::error::DietError;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A stored item. Hit/recency counters are atomics so `get` works under the
/// read lock: concurrent readers never serialize on the map.
#[derive(Debug)]
struct Stored {
    value: DietValue,
    mode: Persistence,
    /// Access counter (diagnostics).
    hits: AtomicU64,
    /// Logical clock stamp of the last access (LRU ordering).
    last_access: AtomicU64,
}

/// Callback fired (outside the store lock) whenever an id leaves the store.
type EvictHook = Box<dyn Fn(&str) + Send + Sync>;

/// One server's data store.
#[derive(Default)]
pub struct DataManager {
    items: RwLock<HashMap<String, Stored>>,
    /// Byte cap on resident payloads; `None` = unbounded.
    capacity: Option<u64>,
    /// Resident payload bytes, maintained under the write lock.
    used: AtomicU64,
    /// Logical access clock.
    clock: AtomicU64,
    evictions: AtomicU64,
    evict_hook: RwLock<Option<EvictHook>>,
}

impl std::fmt::Debug for DataManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataManager")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("used", &self.used.load(Ordering::Relaxed))
            .field("evictions", &self.evictions.load(Ordering::Relaxed))
            .finish()
    }
}

impl DataManager {
    /// Unbounded store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store bounded to `capacity_bytes` of resident payload.
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        Self {
            capacity: Some(capacity_bytes),
            ..Self::default()
        }
    }

    /// Register a callback fired whenever an id leaves the store (LRU
    /// eviction, `free`, or migration). Always invoked outside the lock.
    pub fn set_evict_hook(&self, f: impl Fn(&str) + Send + Sync + 'static) {
        *self.evict_hook.write() = Some(Box::new(f));
    }

    fn notify_evicted(&self, ids: &[String]) {
        if ids.is_empty() {
            return;
        }
        let hook = self.evict_hook.read();
        if let Some(h) = hook.as_ref() {
            for id in ids {
                h(id);
            }
        }
    }

    /// Store a value after a solve, honouring its persistence mode.
    /// Volatile data is dropped (returns false). May evict LRU persistent
    /// items to stay under capacity; the freshly retained id is never the
    /// victim of its own insertion.
    pub fn retain(&self, id: &str, value: DietValue, mode: Persistence) -> bool {
        match mode {
            Persistence::Volatile => false,
            Persistence::Persistent | Persistence::Sticky => {
                let size = value.payload_bytes();
                let mut evicted: Vec<String> = Vec::new();
                {
                    let mut w = self.items.write();
                    if let Some(old) = w.remove(id) {
                        self.used
                            .fetch_sub(old.value.payload_bytes(), Ordering::Relaxed);
                    }
                    w.insert(
                        id.to_string(),
                        Stored {
                            value,
                            mode,
                            hits: AtomicU64::new(0),
                            last_access: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
                        },
                    );
                    self.used.fetch_add(size, Ordering::Relaxed);
                    if let Some(cap) = self.capacity {
                        while self.used.load(Ordering::Relaxed) > cap {
                            let victim = w
                                .iter()
                                .filter(|(k, s)| s.mode != Persistence::Sticky && k.as_str() != id)
                                .min_by_key(|(k, s)| {
                                    (s.last_access.load(Ordering::Relaxed), k.to_string())
                                })
                                .map(|(k, _)| k.clone());
                            match victim {
                                Some(v) => {
                                    let gone = w.remove(&v).unwrap();
                                    self.used
                                        .fetch_sub(gone.value.payload_bytes(), Ordering::Relaxed);
                                    self.evictions.fetch_add(1, Ordering::Relaxed);
                                    evicted.push(v);
                                }
                                // Everything left is sticky or the new item.
                                None => break,
                            }
                        }
                    }
                }
                self.notify_evicted(&evicted);
                true
            }
        }
    }

    /// Fetch by id. Read lock only: hit and recency counters are atomics, so
    /// concurrent gets proceed in parallel.
    pub fn get(&self, id: &str) -> Result<DietValue, DietError> {
        let r = self.items.read();
        match r.get(id) {
            Some(s) => {
                s.hits.fetch_add(1, Ordering::Relaxed);
                s.last_access.store(
                    self.clock.fetch_add(1, Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                Ok(s.value.clone())
            }
            None => Err(DietError::DataNotFound(id.to_string())),
        }
    }

    /// Like [`DataManager::get`], but also reports the persistence mode —
    /// what a `DataReply` carries so the puller can retain the replica under
    /// the same contract.
    pub fn get_with_mode(&self, id: &str) -> Result<(DietValue, Persistence), DietError> {
        let r = self.items.read();
        match r.get(id) {
            Some(s) => {
                s.hits.fetch_add(1, Ordering::Relaxed);
                s.last_access.store(
                    self.clock.fetch_add(1, Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                Ok((s.value.clone(), s.mode))
            }
            None => Err(DietError::DataNotFound(id.to_string())),
        }
    }

    /// Take data *away* from this server (migration). Sticky data refuses to
    /// move — that is its contract.
    pub fn take_for_migration(&self, id: &str) -> Result<DietValue, DietError> {
        let out = {
            let mut w = self.items.write();
            match w.get(id) {
                Some(s) if s.mode == Persistence::Sticky => {
                    return Err(DietError::Rejected(format!(
                        "data {id} is sticky and cannot migrate"
                    )))
                }
                Some(_) => {
                    let gone = w.remove(id).unwrap();
                    self.used
                        .fetch_sub(gone.value.payload_bytes(), Ordering::Relaxed);
                    gone.value
                }
                None => return Err(DietError::DataNotFound(id.to_string())),
            }
        };
        self.notify_evicted(&[id.to_string()]);
        Ok(out)
    }

    /// Client-driven free (the `diet_free_data` analog).
    pub fn free(&self, id: &str) -> Result<(), DietError> {
        {
            let mut w = self.items.write();
            let gone = w
                .remove(id)
                .ok_or_else(|| DietError::DataNotFound(id.to_string()))?;
            self.used
                .fetch_sub(gone.value.payload_bytes(), Ordering::Relaxed);
        }
        self.notify_evicted(&[id.to_string()]);
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.items.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.read().is_empty()
    }

    pub fn contains(&self, id: &str) -> bool {
        self.items.read().contains_key(id)
    }

    /// Ids currently resident (sorted, for deterministic diagnostics).
    pub fn ids(&self) -> Vec<String> {
        let mut v: Vec<String> = self.items.read().keys().cloned().collect();
        v.sort();
        v
    }

    pub fn hits(&self, id: &str) -> Option<u64> {
        self.items
            .read()
            .get(id)
            .map(|s| s.hits.load(Ordering::Relaxed))
    }

    /// Total payload bytes held (capacity accounting). O(1): maintained on
    /// every insert/remove.
    pub fn stored_bytes(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Recompute resident bytes by walking the map — test/debug cross-check
    /// for the O(1) counter.
    pub fn recounted_bytes(&self) -> u64 {
        self.items
            .read()
            .values()
            .map(|s| s.value.payload_bytes())
            .sum()
    }

    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// Number of LRU evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn volatile_is_not_retained() {
        let dm = DataManager::new();
        assert!(!dm.retain("a", DietValue::ScalarI32(1), Persistence::Volatile));
        assert!(dm.is_empty());
        assert!(matches!(dm.get("a"), Err(DietError::DataNotFound(_))));
    }

    #[test]
    fn persistent_is_retained_and_fetchable() {
        let dm = DataManager::new();
        assert!(dm.retain("ic", DietValue::ScalarF64(2.5), Persistence::Persistent));
        assert_eq!(dm.get("ic").unwrap(), DietValue::ScalarF64(2.5));
        assert_eq!(dm.hits("ic"), Some(1));
        dm.get("ic").unwrap();
        assert_eq!(dm.hits("ic"), Some(2));
    }

    #[test]
    fn sticky_refuses_migration_but_persistent_moves() {
        let dm = DataManager::new();
        dm.retain("p", DietValue::ScalarI32(1), Persistence::Persistent);
        dm.retain("s", DietValue::ScalarI32(2), Persistence::Sticky);
        assert_eq!(dm.take_for_migration("p").unwrap(), DietValue::ScalarI32(1));
        assert_eq!(dm.len(), 1);
        assert!(matches!(
            dm.take_for_migration("s"),
            Err(DietError::Rejected(_))
        ));
        assert_eq!(dm.get("s").unwrap(), DietValue::ScalarI32(2));
    }

    #[test]
    fn free_removes() {
        let dm = DataManager::new();
        dm.retain("x", DietValue::Str("abc".into()), Persistence::Persistent);
        dm.free("x").unwrap();
        assert!(dm.is_empty());
        assert!(dm.free("x").is_err());
    }

    #[test]
    fn stored_bytes_accounts_payloads() {
        let dm = DataManager::new();
        dm.retain(
            "v",
            DietValue::vec_f64(vec![0.0; 16]),
            Persistence::Persistent,
        );
        dm.retain("s", DietValue::Str("abcd".into()), Persistence::Sticky);
        assert_eq!(dm.stored_bytes(), 128 + 4);
        assert_eq!(dm.recounted_bytes(), dm.stored_bytes());
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        // 3 × 80-byte vectors in a 200-byte store: the coldest goes.
        let dm = DataManager::with_capacity(200);
        dm.retain(
            "a",
            DietValue::vec_f64(vec![0.0; 10]),
            Persistence::Persistent,
        );
        dm.retain(
            "b",
            DietValue::vec_f64(vec![1.0; 10]),
            Persistence::Persistent,
        );
        // Touch "a" so "b" becomes the LRU victim.
        dm.get("a").unwrap();
        dm.retain(
            "c",
            DietValue::vec_f64(vec![2.0; 10]),
            Persistence::Persistent,
        );
        assert_eq!(dm.ids(), vec!["a".to_string(), "c".to_string()]);
        assert_eq!(dm.evictions(), 1);
        assert!(dm.stored_bytes() <= 200);
    }

    #[test]
    fn sticky_is_pinned_under_pressure() {
        let dm = DataManager::with_capacity(100);
        dm.retain(
            "pin",
            DietValue::vec_f64(vec![0.0; 10]),
            Persistence::Sticky,
        );
        dm.retain(
            "p1",
            DietValue::vec_f64(vec![0.0; 10]),
            Persistence::Persistent,
        );
        // 160 > 100: the persistent item is evicted, the sticky one stays,
        // and the store remains (pinned + newest) over budget by design.
        dm.retain(
            "p2",
            DietValue::vec_f64(vec![0.0; 10]),
            Persistence::Persistent,
        );
        assert!(dm.contains("pin"), "sticky must survive pressure");
        assert!(!dm.contains("p1"));
        assert!(dm.contains("p2"), "fresh retain is never its own victim");
    }

    #[test]
    fn evict_hook_fires_for_every_departure() {
        let dm = DataManager::with_capacity(100);
        let gone: Arc<parking_lot::Mutex<Vec<String>>> = Arc::default();
        let sink = gone.clone();
        dm.set_evict_hook(move |id| sink.lock().push(id.to_string()));
        dm.retain(
            "a",
            DietValue::vec_f64(vec![0.0; 10]),
            Persistence::Persistent,
        );
        dm.retain(
            "b",
            DietValue::vec_f64(vec![0.0; 10]),
            Persistence::Persistent,
        );
        assert_eq!(gone.lock().as_slice(), ["a".to_string()]);
        dm.free("b").unwrap();
        assert_eq!(gone.lock().as_slice(), ["a".to_string(), "b".to_string()]);
        dm.retain("c", DietValue::ScalarI32(1), Persistence::Persistent);
        dm.take_for_migration("c").unwrap();
        assert_eq!(gone.lock().len(), 3);
    }

    #[test]
    fn concurrent_gets_only_need_the_read_lock() {
        // Smoke check that parallel readers all see the value and the hit
        // counter is exact.
        let dm = Arc::new(DataManager::new());
        dm.retain("x", DietValue::vec_i32(vec![7; 8]), Persistence::Persistent);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let dm = dm.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        dm.get("x").unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(dm.hits("x"), Some(800));
    }
}
